"""Tests for candidate-pair blocking."""

import pytest

from repro.blocking import (
    BlockingResult,
    EmbeddingBlocker,
    TokenBlocker,
    blocking_quality,
    blocking_tokens,
    recall_at_k,
    recall_curve,
)
from repro.datasets.schema import Record


def _records(descriptions):
    return [
        Record(record_id=f"r{i}", attributes={}, description=d)
        for i, d in enumerate(descriptions)
    ]


@pytest.fixture(scope="module")
def collections(product_split):
    """Left/right record collections with known true matches."""
    matches = [p for p in product_split if p.label][:30]
    left = [p.left for p in matches]
    right = [p.right for p in matches]
    # distractors on the right side
    right += [p.right for p in product_split if not p.label][:60]
    truth = {(i, i) for i in range(len(matches))}
    return left, right, truth


class TestBlockingTokens:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            # plain ASCII agrees with the LLM tokenizer
            ("Acme Widget Pro", ["acme", "widget", "pro"]),
            ("model XJ-900/64gb v2.1", ["model", "xj-900/64gb", "v2.1"]),
            # unicode casefold: ß casefolds to ss, so the German spelling
            # and the all-caps transliteration share a token
            ("Straße", ["strasse"]),
            ("STRASSE", ["strasse"]),
            ("Éclair CAFÉ", ["éclair", "café"]),
            ("ŉoodle", ["ʼnoodle"]),  # casefold, not lower
            # non-ASCII scripts are kept, not dropped
            ("ノート 128gb", ["ノート", "128gb"]),
            # degenerate inputs produce NO token — never a universal bucket
            ("", []),
            ("   ", []),
            ("!!! ... ---", []),
            ("___", []),  # underscore is not a word character here
            ("(+)", []),
            # joins require word characters on both sides
            ("a--b", ["a", "b"]),
            ("-lead trail-", ["lead", "trail"]),
        ],
    )
    def test_tokenization_table(self, text, expected):
        assert blocking_tokens(text) == expected

    def test_casefold_collides_equivalent_spellings(self):
        assert blocking_tokens("Straße") == blocking_tokens("strasse")

    def test_degenerate_records_never_pair(self):
        """Punctuation-only records share no bucket — with anything."""
        left = _records(["!!!", "..."])
        right = _records(["---", "???", "real widget"])
        result = TokenBlocker().block(left, right)
        assert result.candidates == frozenset()


class TestRecallMetrics:
    def _ranked(self):
        # a↔b ranked top by both sides; a→c only from one side at rank 1
        return {
            "a": ["b", "c"],
            "b": ["a"],
            "c": [],
        }

    def test_recall_at_k_counts_best_direction(self):
        point = recall_at_k(self._ranked(), [("a", "b"), ("a", "c")], k=1)
        assert point["k"] == 1
        assert point["recall"] == 0.5  # only (a, b) inside top-1
        assert point["candidates"] == 1

    def test_no_cutoff_counts_everything(self):
        point = recall_at_k(self._ranked(), [("a", "b"), ("a", "c")], k=None)
        assert point["k"] is None
        assert point["recall"] == 1.0
        assert point["candidates"] == 2
        assert point["candidates_per_record"] == pytest.approx(2 / 3)

    def test_missing_truth_pair_is_unrecalled(self):
        point = recall_at_k(self._ranked(), [("a", "z")], k=None)
        assert point["recall"] == 0.0

    def test_empty_truth_is_vacuously_perfect(self):
        assert recall_at_k(self._ranked(), [], k=5)["recall"] == 1.0

    def test_curve_is_monotone_in_k(self):
        truth = [("a", "b"), ("a", "c")]
        curve = recall_curve(self._ranked(), truth, [1, 2, None])
        recalls = [point["recall"] for point in curve]
        sizes = [point["candidates"] for point in curve]
        assert recalls == sorted(recalls)
        assert sizes == sorted(sizes)

    def test_pair_direction_and_duplicates_collapse(self):
        ranked = {"x": ["y"], "y": ["x"]}
        point = recall_at_k(ranked, [("y", "x"), ("x", "y")], k=1)
        assert point["recall"] == 1.0
        assert point["candidates"] == 1  # one unordered pair

    def test_self_pairs_ignored(self):
        point = recall_at_k({"x": ["x", "y"], "y": []}, [("x", "y")], k=1)
        # "x" ranking itself does not consume the cut-off... but rank is
        # positional: y sits at rank 1, outside top-1.
        assert point["recall"] == 0.0
        assert recall_at_k({"x": ["x", "y"], "y": []}, [("x", "y")], k=2)[
            "recall"
        ] == 1.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="k must be positive"):
            recall_at_k(self._ranked(), [], k=0)


class TestEmbeddingBlocker:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            EmbeddingBlocker(k=0)

    def test_empty_collections(self):
        result = EmbeddingBlocker().block([], _records(["a"]))
        assert result.candidates == frozenset()

    def test_finds_most_true_matches(self, collections):
        left, right, truth = collections
        result = EmbeddingBlocker(k=5).block(left, right)
        quality = blocking_quality(result, truth)
        assert quality["pair_completeness"] > 0.8
        assert quality["reduction_ratio"] > 0.5

    def test_larger_k_never_reduces_completeness(self, collections):
        left, right, truth = collections
        small = blocking_quality(EmbeddingBlocker(k=2).block(left, right), truth)
        large = blocking_quality(EmbeddingBlocker(k=10).block(left, right), truth)
        assert large["pair_completeness"] >= small["pair_completeness"]

    def test_min_similarity_prunes(self, collections):
        left, right, _ = collections
        loose = EmbeddingBlocker(k=5, min_similarity=0.0).block(left, right)
        strict = EmbeddingBlocker(k=5, min_similarity=0.9).block(left, right)
        assert len(strict.candidates) <= len(loose.candidates)


class TestTokenBlocker:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBlocker(min_shared=0)
        with pytest.raises(ValueError):
            TokenBlocker(max_token_frequency=0.0)

    def test_shared_token_required(self):
        left = _records(["alpha beta", "gamma delta"])
        right = _records(["beta epsilon", "zeta eta"])
        result = TokenBlocker().block(left, right)
        assert result.contains(0, 0)
        assert not result.contains(1, 1)

    def test_stop_tokens_excluded(self):
        left = _records(["widget one", "widget two"])
        right = _records(["widget three", "widget four"])
        # 'widget' appears in 100% of records -> stopword at threshold 0.5
        result = TokenBlocker(max_token_frequency=0.5).block(left, right)
        assert len(result.candidates) == 0

    def test_completeness_on_benchmark(self, collections):
        left, right, truth = collections
        result = TokenBlocker().block(left, right)
        quality = blocking_quality(result, truth)
        assert quality["pair_completeness"] > 0.8


class TestBlockingQuality:
    def test_empty_truth_is_complete(self):
        result = BlockingResult((), (), frozenset())
        assert blocking_quality(result, set())["pair_completeness"] == 1.0

    def test_reduction_ratio_bounds(self, collections):
        left, right, _ = collections
        result = EmbeddingBlocker(k=3).block(left, right)
        assert 0.0 <= result.reduction_ratio <= 1.0

    def test_everything_empty_is_vacuously_perfect(self):
        quality = blocking_quality(BlockingResult((), (), frozenset()), set())
        assert quality == {
            "pair_completeness": 1.0,
            "pair_quality": 1.0,
            "reduction_ratio": 1.0,
            "candidates": 0.0,
        }

    def test_zero_candidates_with_gold_lose_everything(self):
        left, right = _records(["a"]), _records(["b"])
        result = BlockingResult(tuple(left), tuple(right), frozenset())
        quality = blocking_quality(result, {(0, 0)})
        assert quality["pair_completeness"] == 0.0
        assert quality["pair_quality"] == 0.0
        assert quality["reduction_ratio"] == 1.0

    def test_candidates_without_gold_have_zero_quality(self):
        left, right = _records(["a"]), _records(["a"])
        result = BlockingResult(tuple(left), tuple(right), frozenset({(0, 0)}))
        quality = blocking_quality(result, set())
        assert quality["pair_completeness"] == 1.0
        assert quality["pair_quality"] == 0.0
        assert quality["reduction_ratio"] == 0.0

    def test_empty_comparison_space_reduces_to_one(self):
        assert BlockingResult((), tuple(_records(["a"])), frozenset()).reduction_ratio == 1.0
        assert BlockingResult(tuple(_records(["a"])), (), frozenset()).reduction_ratio == 1.0

    def test_pair_quality_counts_found_matches_per_candidate(self):
        left = _records(["a", "b"])
        right = _records(["a", "b"])
        result = BlockingResult(
            tuple(left), tuple(right), frozenset({(0, 0), (0, 1)})
        )
        quality = blocking_quality(result, {(0, 0), (1, 1)})
        assert quality["pair_completeness"] == 0.5
        assert quality["pair_quality"] == 0.5
