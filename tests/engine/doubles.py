"""Test doubles for the engine suite: fake clock, flaky/slow backends."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro._util import derive_rng, stable_hash
from repro.engine.backends import Backend, BackendError


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class RecordingSleep:
    """Sleep stand-in that records requested delays instead of waiting."""

    def __init__(self, clock: FakeClock | None = None) -> None:
        self.calls: list[float] = []
        self.clock = clock

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)
        if self.clock is not None:
            self.clock.advance(seconds)


@dataclass
class EchoBackend:
    """Healthy backend answering 'Yes.' to every prompt (no model needed)."""

    name: str = "echo"
    answer: str = "Yes."
    calls: int = 0

    def generate(self, prompts: list[str]) -> list[str]:
        self.calls += 1
        return [self.answer for _ in prompts]


@dataclass
class ParityBackend:
    """Thread-safe deterministic backend: the answer is a pure function of
    the prompt (stable-hash parity), so concurrent and sequential runs must
    agree bit-for-bit.  The call counter is locked — unlike EchoBackend,
    this double is made to be hammered from many threads."""

    name: str = "parity"
    calls: int = field(default=0, init=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def generate(self, prompts: list[str]) -> list[str]:
        with self._lock:
            self.calls += 1
        return [
            "Yes." if stable_hash(prompt) % 2 == 0 else "No."
            for prompt in prompts
        ]


@dataclass
class JaccardBackend:
    """Deterministic matcher double: Yes iff token Jaccard >= threshold.

    Parses the two descriptions back out of the rendered prompt
    (``Entity 1:`` / ``Entity 2:`` lines) and answers from their token
    overlap — a symmetric pure function of the pair, which makes it the
    right oracle for blocking-parity tests: any pair similar enough to
    match is similar enough for a similarity-based blocker to propose.
    """

    name: str = "jaccard"
    threshold: float = 0.5
    calls: int = field(default=0, init=False)

    def generate(self, prompts: list[str]) -> list[str]:
        from repro.blocking.token import blocking_tokens

        self.calls += 1
        answers = []
        for prompt in prompts:
            sides = {}
            for line in prompt.splitlines():
                for key in ("Entity 1:", "Entity 2:"):
                    if line.startswith(key):
                        sides[key] = set(blocking_tokens(line[len(key):]))
            left = sides.get("Entity 1:", set())
            right = sides.get("Entity 2:", set())
            union = len(left | right)
            similarity = len(left & right) / union if union else 1.0
            answers.append("Yes." if similarity >= self.threshold else "No.")
        return answers


@dataclass
class FlakyBackend:
    """Fault-injecting wrapper: fail-N-then-succeed and/or a failure rate.

    ``fail_first`` calls raise :class:`BackendError` unconditionally; after
    that each call fails with probability ``failure_rate`` (seeded, so runs
    are reproducible).  Counts every injected failure for assertions.
    """

    inner: Backend
    fail_first: int = 0
    failure_rate: float = 0.0
    seed: int = 0
    name: str = ""
    calls: int = field(default=0, init=False)
    failures_injected: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"flaky:{self.inner.name}"

    def generate(self, prompts: list[str]) -> list[str]:
        self.calls += 1
        if self.calls <= self.fail_first:
            self.failures_injected += 1
            raise BackendError(f"injected failure #{self.calls}")
        if self.failure_rate > 0.0:
            draw = derive_rng(self.seed, "flaky", self.calls).random()
            if draw < self.failure_rate:
                self.failures_injected += 1
                raise BackendError(f"injected random failure #{self.calls}")
        return self.inner.generate(prompts)


@dataclass
class SlowBackend:
    """Backend that consumes fake-clock time per call (for timeout tests)."""

    inner: Backend
    clock: FakeClock = None  # type: ignore[assignment]
    #: seconds consumed by each of the first ``slow_calls`` calls.
    delay: float = 1.0
    slow_calls: int = 1
    name: str = ""
    calls: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"slow:{self.inner.name}"

    def generate(self, prompts: list[str]) -> list[str]:
        self.calls += 1
        if self.calls <= self.slow_calls:
            self.clock.advance(self.delay)
        return self.inner.generate(prompts)
