"""Tests for the dynamic micro-batching scheduler."""

import pytest

from repro.engine.scheduler import Scheduler

from tests.engine.doubles import FakeClock


class TestSizeFlush:
    def test_flushes_at_max_batch_size(self):
        sched = Scheduler(max_batch_size=3)
        assert sched.submit("a") is None
        assert sched.submit("b") is None
        batch = sched.submit("c")
        assert batch is not None
        assert batch.items == ("a", "b", "c")
        assert batch.reason == "size"
        assert sched.pending == 0

    def test_batches_preserve_order_across_flushes(self):
        sched = Scheduler(max_batch_size=2)
        flushed = [sched.submit(i) for i in range(5)]
        batches = [b for b in flushed if b is not None]
        assert [b.items for b in batches] == [(0, 1), (2, 3)]
        assert sched.pending == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(max_batch_size=0)
        with pytest.raises(ValueError):
            Scheduler(max_wait=-1.0)


class TestDeadlineFlush:
    def test_poll_flushes_after_max_wait(self):
        clock = FakeClock()
        sched = Scheduler(max_batch_size=100, max_wait=0.5, clock=clock)
        sched.submit("a")
        clock.advance(0.4)
        assert sched.poll() is None
        clock.advance(0.2)
        batch = sched.poll()
        assert batch is not None and batch.reason == "deadline"
        assert batch.items == ("a",)

    def test_deadline_tracks_oldest_item(self):
        clock = FakeClock()
        sched = Scheduler(max_batch_size=100, max_wait=1.0, clock=clock)
        sched.submit("old")
        clock.advance(0.9)
        sched.submit("new")  # does not reset the oldest item's deadline
        clock.advance(0.2)
        batch = sched.poll()
        assert batch is not None and batch.items == ("old", "new")

    def test_empty_scheduler_never_due(self):
        clock = FakeClock()
        sched = Scheduler(max_wait=0.0, clock=clock)
        assert sched.poll() is None


class TestDrain:
    def test_drain_flushes_remainder(self):
        sched = Scheduler(max_batch_size=10)
        sched.submit("a")
        sched.submit("b")
        batch = sched.drain()
        assert batch is not None
        assert batch.items == ("a", "b") and batch.reason == "drain"
        assert sched.drain() is None
