"""Concurrency smoke test: N threads through one shared engine.

The ISSUE acceptance criterion: 8 threads x 200 pairs each through a
shared :class:`MatchingEngine` produce decisions identical to a
sequential run, and the stats counters conserve exactly (no lost or
double-counted updates).  A companion test runs the deep lock analysis
over ``src/repro`` so the ``@guarded_by`` declarations the engine relies
on are actually enforced, not just documented.
"""

import threading
from pathlib import Path

import pytest

from repro.engine import MatchingEngine, ResultCache

from .doubles import ParityBackend

REPO_ROOT = Path(__file__).resolve().parents[2]

THREADS = 8
PAIRS_PER_THREAD = 200
UNIQUE_PAIRS = 120


def workload() -> list[tuple[str, str]]:
    """200 pairs over 120 unique ones: exercises cache hits and dedup."""
    return [
        (f"widget number {i % UNIQUE_PAIRS} alpha edition",
         f"widget number {i % UNIQUE_PAIRS} beta edition")
        for i in range(PAIRS_PER_THREAD)
    ]


def make_engine() -> MatchingEngine:
    return MatchingEngine(backend=ParityBackend(), cache=ResultCache())


class TestConcurrentMatching:
    def test_threads_match_sequential_and_counters_conserve(self):
        pairs = workload()
        sequential = [r.decision for r in make_engine().match_pairs(pairs)]
        assert len(set(sequential)) == 2, "workload should mix yes and no"

        engine = make_engine()
        barrier = threading.Barrier(THREADS)
        decisions: list[list[bool]] = [[] for _ in range(THREADS)]
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                barrier.wait()
                results = engine.match_pairs(pairs)
                decisions[slot] = [r.decision for r in results]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,), name=f"matcher-{slot}")
            for slot in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "worker deadlocked"
        assert errors == []

        # Every thread saw exactly the sequential answers.
        for slot in range(THREADS):
            assert decisions[slot] == sequential

        # Counters conserve exactly — no lost updates under contention.
        stats = engine.stats
        assert stats.requests == THREADS * PAIRS_PER_THREAD
        assert stats.cache_hits + stats.cache_misses == stats.requests
        assert stats.deduped + stats.batched_requests == stats.cache_misses
        assert stats.failures == 0
        assert stats.fallbacks == 0
        assert len(stats.latencies) == stats.batched_requests

        # Dedup/caching really engaged: 1600 requests cannot all have
        # been dispatched when only 120 prompts are distinct.
        assert stats.batched_requests < stats.requests

    def test_in_flight_table_drains(self):
        engine = make_engine()
        engine.match_pairs(workload())
        assert engine._in_flight == {}


class TestGuardedByEnforced:
    """The analyzer, not convention, is what keeps the engine safe."""

    @pytest.fixture(scope="class")
    def lock_analysis(self):
        from repro.lint.callgraph import build_call_graph
        from repro.lint.locks import LockAnalysis
        from repro.lint.symbols import SymbolTable

        table = SymbolTable.build(REPO_ROOT, ("src/repro",))
        return table, LockAnalysis(table, build_call_graph(table))

    def test_engine_classes_declare_guards(self, lock_analysis):
        table, _ = lock_analysis
        assert table.guarded_fields_of("repro.engine.engine.MatchingEngine")
        assert table.guarded_fields_of("repro.engine.stats.EngineStats")
        assert table.guarded_fields_of("repro.engine.cache.ResultCache")

    def test_no_guard_violations_in_tree(self, lock_analysis):
        _, locks = lock_analysis
        assert locks.guard_violations == []
        assert locks.blocking_violations == []
        assert locks.order_cycles() == []
