"""Tests for the MatchingEngine: dedup, caching, stats, and agreement.

The agreement tests are the contract that lets experiments switch to the
engine path: on registered benchmarks, engine-backed evaluation must
produce predictions identical pair-for-pair to the sequential path.
"""

import numpy as np
import pytest

from repro.core.pipeline import TailorMatch
from repro.datasets.registry import load_dataset
from repro.engine import (
    BatchAPIBackend,
    LocalBackend,
    MatchingEngine,
    ModelBackend,
    make_backend,
)
from repro.engine.cache import ResultCache
from repro.engine.scheduler import Scheduler
from repro.eval.evaluator import evaluate_model
from repro.llm.model import build_model
from repro.prompts.templates import SIMPLE_FREE, get_prompt

from tests.engine.doubles import EchoBackend, FakeClock


@pytest.fixture(scope="module")
def model():
    return build_model("llama-3.1-8b")


class TestAgreementWithSequentialPath:
    """Acceptance: pair-for-pair identical predictions on ≥2 benchmarks."""

    @pytest.mark.parametrize("dataset_name", ["abt-buy", "dblp-acm"])
    def test_engine_predictions_match_sequential(self, model, dataset_name):
        split = load_dataset(dataset_name).test
        engine = MatchingEngine.for_model(model)
        engine_preds = engine.predict_split(split)
        sequential_preds = model.predict_pairs(split.pairs)
        assert np.array_equal(engine_preds, sequential_preds)

    @pytest.mark.parametrize("dataset_name", ["abt-buy", "dblp-acm"])
    def test_engine_backed_evaluation_identical(self, model, dataset_name):
        split = load_dataset(dataset_name).test
        engine = MatchingEngine.for_model(model)
        plain = evaluate_model(model, split)
        engined = evaluate_model(model, split, engine=engine)
        assert engined.scores == plain.scores
        assert engined.f1 == plain.f1

    def test_template_mismatch_rejected(self, model, product_split):
        engine = MatchingEngine.for_model(model, template=SIMPLE_FREE)
        with pytest.raises(ValueError, match="prompt"):
            evaluate_model(model, product_split, get_prompt("default"),
                           engine=engine)


class TestCachingAndDedup:
    def test_duplicate_workload_hits_cache(self):
        engine = MatchingEngine(backend=EchoBackend())
        workload = [("a1 widget", "a1 widget gadget"),
                    ("b2 gizmo", "c3 sprocket")]
        engine.match_pairs(workload)
        results = engine.match_pairs(workload)  # same pairs again
        assert all(r.source == "cache" for r in results)
        assert engine.stats.cache_hits == 2
        assert engine.stats.cache_hits > 0  # the acceptance criterion
        assert engine.backend.calls == 1    # second call was free

    def test_in_flight_dedup_within_one_call(self):
        backend = EchoBackend()
        engine = MatchingEngine(backend=backend)
        results = engine.match_pairs([("x", "y")] * 5)
        assert len(results) == 5
        assert engine.stats.deduped == 4
        assert engine.stats.batched_requests == 1  # one unique prompt sent
        assert len({r.decision for r in results}) == 1

    def test_normalization_folds_whitespace_variants(self):
        engine = MatchingEngine(backend=EchoBackend())
        engine.match_pairs([("acme  router", "acme router v2")])
        results = engine.match_pairs([(" acme router ", "acme   router v2")])
        assert results[0].source == "cache"

    def test_cache_respects_ttl(self):
        clock = FakeClock()
        engine = MatchingEngine(
            backend=EchoBackend(),
            cache=ResultCache(max_size=64, ttl=60.0, clock=clock),
            scheduler=Scheduler(clock=clock),
            clock=clock,
            sleep=lambda s: None,
        )
        engine.match_pairs([("p", "q")])
        clock.advance(61.0)
        results = engine.match_pairs([("p", "q")])
        assert results[0].source == "backend"  # expired → re-asked

    def test_entity_pair_descriptions_used_verbatim(self, product_split):
        engine = MatchingEngine(backend=EchoBackend())
        results = engine.match_pairs(product_split.pairs[:3])
        for result, pair in zip(results, product_split.pairs):
            assert result.left == pair.left.description
            assert result.right == pair.right.description


class TestSchedulingAndStats:
    def test_micro_batches_flush_on_size(self):
        engine = MatchingEngine(
            backend=EchoBackend(), scheduler=Scheduler(max_batch_size=4)
        )
        workload = [(f"left {i}", f"right {i}") for i in range(10)]
        engine.match_pairs(workload)
        assert engine.stats.batches == 3  # 4 + 4 + drain(2)
        assert engine.stats.flush_reasons == {"size": 2, "drain": 1}
        assert engine.stats.mean_batch_size == pytest.approx(10 / 3)

    def test_stats_snapshot_round_trips_to_dict(self):
        engine = MatchingEngine(backend=EchoBackend())
        engine.match_pairs([("a", "b"), ("a", "b")])
        snapshot = engine.stats.as_dict()
        assert snapshot["requests"] == 2
        assert snapshot["deduped"] == 1
        assert set(snapshot["latency"]) == {"p50", "p95", "p99"}
        rendered = engine.stats.render()
        assert "hit_rate" in rendered and "batches" in rendered

    def test_reset_stats(self):
        engine = MatchingEngine(backend=EchoBackend())
        engine.match_pairs([("a", "b")])
        engine.reset_stats()
        assert engine.stats.requests == 0


class TestMatchBlockingEquivalence:
    """``match_blocking`` is exactly ``match_pairs`` over the sorted
    candidate walk — the contract the resolve pipeline builds on."""

    def _blocking(self, product_split):
        from repro.blocking.token import TokenBlocker

        left = tuple(p.left for p in product_split.pairs[:20])
        right = tuple(p.right for p in product_split.pairs[:20])
        return TokenBlocker().block(left, right)

    def test_pair_for_pair_identical_decisions(self, product_split):
        from tests.engine.doubles import ParityBackend

        blocking = self._blocking(product_split)
        assert blocking.candidates  # the comparison must not be vacuous
        pairs = [
            (blocking.left[i].description, blocking.right[j].description)
            for i, j in sorted(blocking.candidates)
        ]
        via_blocking = MatchingEngine(backend=ParityBackend()).match_blocking(
            blocking
        )
        via_pairs = MatchingEngine(backend=ParityBackend()).match_pairs(pairs)
        assert len(via_blocking) == len(blocking.candidates)
        assert via_blocking == via_pairs

    def test_same_backend_request_stream(self, product_split):
        # Same prompts, same order, same number of backend calls: the two
        # entry points are indistinguishable from the backend's side.
        blocking = self._blocking(product_split)
        pairs = [
            (blocking.left[i].description, blocking.right[j].description)
            for i, j in sorted(blocking.candidates)
        ]
        one = MatchingEngine(backend=EchoBackend())
        two = MatchingEngine(backend=EchoBackend())
        one.match_blocking(blocking)
        two.match_pairs(pairs)
        assert one.backend.calls == two.backend.calls
        assert one.stats.requests == two.stats.requests
        assert one.stats.cache_misses == two.stats.cache_misses


class TestBackends:
    def test_make_backend_routes_open_source_locally(self):
        assert isinstance(make_backend("llama-3.1-8b"), LocalBackend)

    def test_make_backend_routes_hosted_through_batch_api(self):
        assert isinstance(make_backend("gpt-4o-mini"), BatchAPIBackend)

    def test_batch_api_backend_answers_in_order(self, product_split):
        engine = MatchingEngine.for_model("gpt-4o-mini")
        direct = MatchingEngine(backend=ModelBackend(build_model("gpt-4o-mini")))
        pairs = product_split.pairs[:12]
        via_batch = [r.decision for r in engine.match_pairs(pairs)]
        via_model = [r.decision for r in direct.match_pairs(pairs)]
        assert via_batch == via_model


class TestPipelineIntegration:
    def test_match_all_accepts_dataset_name(self):
        tm = TailorMatch("llama-3.1-8b")
        engine = MatchingEngine.for_model(tm.zero_shot)
        results = tm.match_all("abt-buy", engine=engine)
        split = load_dataset("abt-buy").test
        assert len(results) == len(split)
        sequential = tm.zero_shot.predict_pairs(split.pairs)
        assert [r.decision for r in results] == list(map(bool, sequential))
        assert engine.stats.requests == len(split)

    def test_match_all_accepts_pair_sequence(self, product_split):
        tm = TailorMatch("llama-3.1-8b")
        results = tm.match_all(product_split.pairs[:5])
        assert len(results) == 5

    def test_match_all_accepts_blocking_result(self, product_split):
        from repro.blocking.token import TokenBlocker

        left = tuple(p.left for p in product_split.pairs[:15])
        right = tuple(p.right for p in product_split.pairs[:15])
        blocking = TokenBlocker().block(left, right)
        tm = TailorMatch("llama-3.1-8b")
        engine = MatchingEngine.for_model(tm.zero_shot)
        results = tm.match_all(blocking, engine=engine)
        assert len(results) == len(blocking.candidates)
        assert engine.stats.requests == len(blocking.candidates)
