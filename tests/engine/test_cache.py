"""Tests for the bounded LRU + TTL result cache."""

import pytest

from repro.engine.cache import ResultCache

from tests.engine.doubles import FakeClock


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = ResultCache(max_size=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default="x") == "x"

    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")     # "b" is now the LRU entry
        cache.put("c", 3)  # evicts "b"
        assert "a" in cache and "b" not in cache

    def test_put_refreshes_recency_and_value(self):
        cache = ResultCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts "b", not the refreshed "a"
        assert cache.get("a") == 10 and "b" not in cache

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_size=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ResultCache(max_size=8, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_put_resets_age(self):
        clock = FakeClock()
        cache = ResultCache(max_size=8, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)
        clock.advance(8.0)
        assert cache.get("a") == 2

    def test_no_ttl_means_immortal(self):
        clock = FakeClock()
        cache = ResultCache(max_size=8, ttl=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1
