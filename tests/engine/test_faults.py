"""Fault injection: retries, timeouts, and circuit-breaker degradation.

Drives :class:`MatchingEngine` against flaky/slow backends built from the
doubles in :mod:`tests.engine.doubles` and asserts the documented failure
behaviour: transient faults are absorbed by retry, slow attempts count as
timeouts, persistent faults trip the circuit breaker and degrade to the
threshold baseline — all without raising to the caller.
"""

import pytest

from repro.engine import CircuitBreaker, MatchingEngine, RetryPolicy, Scheduler
from repro.engine.cache import ResultCache

from tests.engine.doubles import (
    EchoBackend,
    FakeClock,
    FlakyBackend,
    RecordingSleep,
    SlowBackend,
)

#: identical descriptions → the threshold fallback says "match";
#: unrelated descriptions → it says "no match".
SIMILAR = ("acme laser printer 4200", "acme laser printer 4200")
DISSIMILAR = ("acme laser printer 4200", "zebra wireless earbuds v2")


def make_engine(backend, clock=None, **overrides):
    clock = clock or FakeClock()
    defaults = dict(
        backend=backend,
        cache=ResultCache(clock=clock),
        scheduler=Scheduler(max_batch_size=8, max_wait=0.05, clock=clock),
        retry=RetryPolicy(max_attempts=3, backoff_base=0.01, jitter=0.0),
        breaker=CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=clock),
        clock=clock,
        sleep=RecordingSleep(clock),
    )
    defaults.update(overrides)
    return MatchingEngine(**defaults)


class TestRetryAbsorption:
    def test_transient_failure_absorbed(self):
        backend = FlakyBackend(inner=EchoBackend(), fail_first=1)
        engine = make_engine(backend)
        results = engine.match_pairs([SIMILAR, DISSIMILAR])
        assert all(r.source == "backend" for r in results)
        assert all(r.decision for r in results)  # echo says "Yes."
        assert backend.failures_injected == 1
        assert engine.stats.retries == 1
        assert engine.stats.failures == 0
        assert engine.stats.fallbacks == 0
        assert engine.breaker.state == "closed"

    def test_two_transient_failures_absorbed(self):
        backend = FlakyBackend(inner=EchoBackend(), fail_first=2)
        engine = make_engine(backend)
        results = engine.match_pairs([DISSIMILAR])
        assert results[0].source == "backend"
        assert engine.stats.retries == 2
        assert engine.stats.fallbacks == 0

    def test_backoff_sleeps_between_attempts(self):
        backend = FlakyBackend(inner=EchoBackend(), fail_first=2)
        sleep = RecordingSleep()
        engine = make_engine(backend, sleep=sleep)
        engine.match_pairs([SIMILAR])
        assert sleep.calls == pytest.approx([0.01, 0.02])


class TestTimeout:
    def test_slow_attempt_times_out_then_recovers(self):
        clock = FakeClock()
        backend = SlowBackend(inner=EchoBackend(), clock=clock,
                              delay=1.0, slow_calls=1)
        engine = make_engine(
            backend, clock=clock,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01,
                              jitter=0.0, timeout=0.5),
        )
        results = engine.match_pairs([SIMILAR])
        assert results[0].source == "backend"
        assert engine.stats.timeouts == 1
        assert engine.stats.retries == 1

    def test_persistently_slow_backend_falls_back(self):
        clock = FakeClock()
        backend = SlowBackend(inner=EchoBackend(), clock=clock,
                              delay=1.0, slow_calls=99)
        engine = make_engine(
            backend, clock=clock,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01,
                              jitter=0.0, timeout=0.5),
        )
        results = engine.match_pairs([SIMILAR])
        assert results[0].source == "fallback"
        assert engine.stats.timeouts >= 1
        assert engine.stats.failures == 1


class TestCircuitBreaker:
    def test_persistent_failures_open_circuit_and_degrade(self):
        backend = FlakyBackend(inner=EchoBackend(), failure_rate=1.0)
        engine = make_engine(backend)
        # First workload: every attempt fails → breaker trips → fallback.
        results = engine.match_pairs([SIMILAR, DISSIMILAR])
        assert [r.source for r in results] == ["fallback", "fallback"]
        # The threshold baseline still makes sensible calls.
        assert results[0].decision is True
        assert results[1].decision is False
        assert results[0].response is None
        assert engine.breaker.state == "open"
        assert engine.stats.circuit_opens == 1
        assert engine.stats.fallbacks == 2
        assert engine.stats.failures == 1

    def test_open_circuit_fails_fast_without_backend_calls(self):
        backend = FlakyBackend(inner=EchoBackend(), failure_rate=1.0)
        engine = make_engine(backend)
        engine.match_pairs([SIMILAR])  # trips the breaker (3 attempts fail)
        calls_when_open = backend.calls
        results = engine.match_pairs([DISSIMILAR])
        assert results[0].source == "fallback"
        assert backend.calls == calls_when_open  # not touched while open
        assert engine.stats.fallbacks == 2

    def test_fallback_results_are_not_cached(self):
        clock = FakeClock()
        backend = FlakyBackend(inner=EchoBackend(), fail_first=3)
        engine = make_engine(backend, clock=clock)
        first = engine.match_pairs([SIMILAR])
        assert first[0].source == "fallback"
        # Breaker is open now; wait out the cooldown. The backend has used
        # up its injected failures, so the same pair gets a real answer.
        clock.advance(11.0)
        second = engine.match_pairs([SIMILAR])
        assert second[0].source == "backend"
        assert second[0].response == "Yes."

    def test_recovery_closes_circuit_after_cooldown(self):
        clock = FakeClock()
        backend = FlakyBackend(inner=EchoBackend(), fail_first=3)
        engine = make_engine(backend, clock=clock)
        engine.match_pairs([SIMILAR])
        assert engine.breaker.state == "open"
        clock.advance(11.0)
        results = engine.match_pairs([DISSIMILAR])
        assert results[0].source == "backend"
        assert engine.breaker.state == "closed"

    def test_no_exception_escapes_on_total_outage(self):
        backend = FlakyBackend(inner=EchoBackend(), failure_rate=1.0)
        engine = make_engine(backend)
        workload = [(f"product {i}", f"product {i}") for i in range(20)]
        results = engine.match_pairs(workload)  # must not raise
        assert len(results) == 20
        assert all(r.source == "fallback" for r in results)
