"""Tests for retry policy, backoff, and the circuit breaker."""

import pytest

from repro.engine.retry import (
    BackendError,
    BackendTimeout,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    run_with_retry,
)

from tests.engine.doubles import FakeClock, RecordingSleep


class TestBackoff:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             max_backoff=0.3, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.3)  # capped
        assert policy.backoff(5) == pytest.approx(0.3)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=7)
        delays = [policy.backoff(i) for i in range(5)]
        assert delays == [policy.backoff(i) for i in range(5)]  # reproducible
        for attempt, delay in enumerate(delays):
            nominal = min(0.1 * 2.0**attempt, policy.max_backoff)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_at_least_one_attempt_required(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestPolicyValidation:
    """Every RetryPolicy field rejects its out-of-domain values eagerly."""

    @pytest.mark.parametrize(
        ("kwargs", "message"),
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"max_attempts": -3}, "max_attempts"),
            ({"backoff_base": -0.01}, "backoff_base"),
            ({"backoff_factor": 0.0}, "backoff_factor"),
            ({"backoff_factor": 0.99}, "non-decreasing"),
            ({"max_backoff": -1.0}, "max_backoff"),
            ({"jitter": -0.1}, "jitter"),
            ({"jitter": 1.01}, "jitter"),
            ({"timeout": 0.0}, "timeout"),
            ({"timeout": -2.0}, "timeout"),
        ],
    )
    def test_out_of_domain_values_rejected(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            RetryPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 1},
            {"backoff_base": 0.0},
            {"backoff_factor": 1.0},  # constant delays are allowed
            {"max_backoff": 0.0},
            {"jitter": 0.0},
            {"jitter": 1.0},
            {"timeout": None},
            {"timeout": 0.001},
        ],
    )
    def test_boundary_values_accepted(self, kwargs):
        RetryPolicy(**kwargs)  # must not raise


class TestRunWithRetry:
    def test_success_needs_no_retry(self):
        sleep = RecordingSleep()
        result = run_with_retry(lambda: 42, RetryPolicy(), sleep=sleep)
        assert result == 42 and sleep.calls == []

    def test_failures_absorbed_then_success(self):
        attempts = []

        def fn():
            attempts.append(1)
            if len(attempts) < 3:
                raise BackendError("transient")
            return "ok"

        sleep = RecordingSleep()
        retries = []
        result = run_with_retry(
            fn, RetryPolicy(max_attempts=3, jitter=0.0), sleep=sleep,
            on_retry=lambda attempt, exc: retries.append((attempt, str(exc))),
        )
        assert result == "ok"
        assert len(attempts) == 3 and len(sleep.calls) == 2
        assert [a for a, _ in retries] == [0, 1]

    def test_exhaustion_reraises_last_error(self):
        def fn():
            raise BackendError("permanent")

        with pytest.raises(BackendError, match="permanent"):
            run_with_retry(fn, RetryPolicy(max_attempts=2), sleep=lambda s: None)

    def test_slow_attempt_counts_as_timeout(self):
        clock = FakeClock()

        def slow():
            clock.advance(0.5)
            return "late"

        policy = RetryPolicy(max_attempts=2, timeout=0.1, jitter=0.0)
        with pytest.raises(BackendTimeout):
            run_with_retry(slow, policy, clock=clock, sleep=lambda s: None)

    def test_fast_attempt_passes_timeout(self):
        clock = FakeClock()

        def fast():
            clock.advance(0.05)
            return "in time"

        policy = RetryPolicy(max_attempts=1, timeout=0.1)
        assert run_with_retry(fast, policy, clock=clock) == "in time"


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.times_opened == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_cooldown_then_close_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.1)
        assert breaker.allow()  # half-open trial
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, cooldown=10.0, clock=clock)
        breaker.state = "open"
        breaker.opened_at = clock()
        breaker.times_opened = 1
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()  # trial failed → straight back to open
        assert breaker.state == "open" and breaker.times_opened == 2

    def test_flapping_sequence_walks_every_state(self):
        """closed → open → half-open → open → half-open → closed."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.times_opened == 1
        clock.advance(5.1)
        assert breaker.allow() and breaker.state == "half-open"
        breaker.record_failure()  # probe fails → straight back to open
        assert breaker.state == "open" and breaker.times_opened == 2
        assert not breaker.allow()  # new cooldown window restarts
        clock.advance(5.1)
        assert breaker.allow() and breaker.state == "half-open"
        breaker.record_success()  # probe succeeds → fully closed
        assert breaker.state == "closed"
        breaker.record_failure()  # streak was reset: one failure stays closed
        assert breaker.state == "closed" and breaker.allow()

    def test_run_with_retry_respects_open_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=100.0,
                                 clock=FakeClock())
        breaker.record_failure()
        calls = []
        with pytest.raises(CircuitOpenError):
            run_with_retry(lambda: calls.append(1), RetryPolicy(),
                           breaker=breaker, sleep=lambda s: None)
        assert calls == []  # failed fast, backend never touched
