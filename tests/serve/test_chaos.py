"""Serve chaos harness: transparency at rate 0, invariants under faults."""

import pytest

from repro.serve import GatewayStats, chaos_serve, serve_sweep


class TestRateZero:
    def test_clean_run_is_transparent_and_all_ok(self):
        report = chaos_serve(seed=0, fault_rate=0.0, requests=48)
        assert report.ok, report.violations
        assert report.fault_rate == 0.0
        assert report.injected == {}
        assert report.statuses == {"ok": 48}
        # Pairs are drawn with replacement, so repeats may hit the result
        # cache even with no faults — but nothing degrades or falls back.
        assert set(report.sources) <= {"backend", "cache"}
        assert sum(report.sources.values()) == 48

    def test_fingerprint_is_stable_across_runs(self):
        first = chaos_serve(seed=3, fault_rate=0.0, requests=48)
        second = chaos_serve(seed=3, fault_rate=0.0, requests=48)
        assert first.fingerprint == second.fingerprint
        assert first.as_dict() == second.as_dict()

    def test_different_seeds_change_the_session(self):
        a = chaos_serve(seed=0, fault_rate=0.0, requests=48)
        b = chaos_serve(seed=1, fault_rate=0.0, requests=48)
        assert a.fingerprint != b.fingerprint


class TestUnderFaults:
    def test_faulty_run_keeps_every_invariant(self):
        report = chaos_serve(seed=0, fault_rate=0.3, requests=96)
        assert report.ok, report.violations
        assert sum(report.injected.values()) > 0
        # Faults surface as cache/fallback/degraded answers, never failures.
        assert set(report.sources) <= {
            "backend", "cache", "fallback", "degraded"
        }
        assert report.statuses.get("ok", 0) == report.requests

    def test_report_dict_is_json_shaped(self):
        payload = chaos_serve(seed=1, fault_rate=0.3, requests=48).as_dict()
        assert payload["kind"] == "serve"
        assert payload["ok"] is True
        assert isinstance(payload["fingerprint"], str)
        assert payload["violations"] == []
        assert "gateway_stats" in payload and "engine_stats" in payload


class TestSweep:
    def test_sweep_covers_the_seed_rate_grid(self):
        reports = serve_sweep(seeds=(0, 1), rates=(0.0, 0.3), requests=48)
        assert len(reports) == 4
        assert [(r.seed, r.fault_rate) for r in reports] == [
            (0, 0.0), (0, 0.3), (1, 0.0), (1, 0.3)
        ]
        assert all(r.ok for r in reports)


class TestViolationDetection:
    def test_corrupted_counters_are_caught(self):
        stats = GatewayStats()
        stats.record_submitted("a", "p")
        stats.record_admitted("a", "p", depth=1)
        # Claim a completion that never happened alongside the real one.
        stats.record_outcome("a", "p", "completed")
        stats.total.completed += 1
        problems = stats.violations()
        assert problems and any("completed" in p for p in problems)

    @pytest.mark.parametrize("in_queue", [1, 5])
    def test_phantom_queue_depth_is_a_violation(self, in_queue):
        stats = GatewayStats()
        stats.record_submitted("a", "p")
        stats.record_admitted("a", "p", depth=1)
        stats.record_outcome("a", "p", "completed")
        assert stats.violations(in_queue=0) == []
        assert stats.violations(in_queue=in_queue) != []
