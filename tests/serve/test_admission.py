"""Admission control: token buckets, quotas, the global cap — edge cases."""

import asyncio
import math

import pytest

from repro.faults.clock import ManualClock
from repro.serve import (
    AdmissionController,
    Gateway,
    MatchRequest,
    PersonaRouter,
    TenantPolicy,
    TokenBucket,
)

from tests.serve.doubles import FakeEngine

PERSONA = "llama-3.1-8b"


def _controller(clock=None, **kwargs) -> AdmissionController:
    return AdmissionController(clock=clock or ManualClock(), **kwargs)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -1.0},
            {"burst": -0.5},
            {"quota": -1},
        ],
    )
    def test_negative_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantPolicy(**kwargs)

    def test_negative_max_concurrency_rejected(self):
        with pytest.raises(ValueError):
            _controller(max_concurrency=-1)


class TestTokenBucket:
    def test_infinite_capacity_always_admits(self):
        bucket = TokenBucket(rate=0.0, capacity=math.inf, clock=ManualClock())
        assert all(bucket.try_acquire() for _ in range(1000))

    def test_zero_capacity_never_admits(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=100.0, capacity=0.0, clock=clock)
        assert not bucket.try_acquire()
        clock.advance(3600.0)  # refill can never exceed zero capacity
        assert not bucket.try_acquire()

    def test_refills_continuously_up_to_capacity(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, capacity=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # one token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1000.0)  # refill clamps at capacity
        assert bucket.tokens == 4.0


# Table-driven edge cases: (policies/cap, admit script) -> expected reasons.
# Script entries are (op, tenant) where op is "admit" or "release"; expected
# lists the admit() result for each "admit" in order (None = admitted).
ADMISSION_CASES = [
    pytest.param(
        {"default_policy": TenantPolicy(burst=0.0)},
        [("admit", "a"), ("admit", "a")],
        ["rate_limited", "rate_limited"],
        id="zero-capacity-bucket-never-admits",
    ),
    pytest.param(
        {"default_policy": TenantPolicy(rate=1.0, burst=3.0)},
        [("admit", "a")] * 4,
        [None, None, None, "rate_limited"],
        id="burst-exactly-at-capacity",
    ),
    pytest.param(
        {"max_concurrency": 2},
        [("admit", "a"), ("admit", "a"), ("admit", "b"),
         ("release", "a"), ("admit", "b")],
        [None, None, "saturated", None],
        id="two-tenants-share-global-cap",
    ),
    pytest.param(
        {"default_policy": TenantPolicy(quota=2)},
        [("admit", "a"), ("admit", "a"), ("release", "a"),
         ("release", "a"), ("admit", "a"), ("admit", "b")],
        [None, None, "quota_exceeded", None],
        id="quota-is-lifetime-release-does-not-refill",
    ),
    pytest.param(
        {"default_policy": TenantPolicy(quota=0), "max_concurrency": 0},
        [("admit", "a")],
        ["saturated"],
        id="saturated-outranks-quota",
    ),
    pytest.param(
        {
            "default_policy": TenantPolicy(rate=1.0, burst=1.0),
            "tenant_policies": {"vip": TenantPolicy()},
        },
        [("admit", "a"), ("admit", "a"), ("admit", "vip"), ("admit", "vip")],
        [None, "rate_limited", None, None],
        id="per-tenant-policy-overrides-default",
    ),
]


class TestAdmissionTable:
    @pytest.mark.parametrize("kwargs, script, expected", ADMISSION_CASES)
    def test_admission_sequence(self, kwargs, script, expected):
        controller = _controller(**kwargs)
        outcomes = []
        for op, tenant in script:
            if op == "admit":
                outcomes.append(controller.admit(tenant))
            else:
                controller.release(tenant)
        assert outcomes == expected


class TestControllerBehaviour:
    def test_refusal_never_consumes_tokens(self):
        clock = ManualClock()
        controller = _controller(
            clock=clock, default_policy=TenantPolicy(rate=1.0, burst=1.0)
        )
        assert controller.admit("a") is None
        # Three refused attempts must not drain the refill accrued so far.
        clock.advance(0.9)
        for _ in range(3):
            assert controller.admit("a") == "rate_limited"
        clock.advance(0.1)  # exactly one token accrued over the full second
        assert controller.admit("a") is None

    def test_quota_checked_before_bucket(self):
        controller = _controller(
            default_policy=TenantPolicy(rate=0.0, burst=0.0, quota=0)
        )
        assert controller.admit("a") == "quota_exceeded"

    def test_release_without_admit_raises(self):
        controller = _controller()
        with pytest.raises(RuntimeError):
            controller.release("a")

    def test_in_flight_and_admitted_total_track_the_funnel(self):
        controller = _controller(max_concurrency=8)
        for _ in range(3):
            assert controller.admit("a") is None
        controller.release("a")
        assert controller.in_flight == 2
        assert controller.admitted_total("a") == 3
        assert controller.admitted_total("ghost") == 0


class TestDeadlineOnArrival:
    def test_already_expired_request_is_admitted_then_expired(self):
        # The satellite's edge case: a request whose absolute deadline has
        # already passed when it arrives is counted admitted -> expired
        # (so conservation holds) but never queued, never dispatched.
        clock = ManualClock(start=100.0)
        engine = FakeEngine()
        router = PersonaRouter(
            default=PERSONA, personas=(PERSONA,),
            engine_factory=lambda name: engine,
        )
        controller = _controller(clock=clock)
        gateway = Gateway(
            router, controller, workers=0, clock=clock, queue_capacity=4
        )
        request = MatchRequest(
            tenant="a", left="x", right="y", persona=PERSONA, deadline=99.0
        )

        response = asyncio.run(gateway.match(request))

        assert response.status == "expired" and response.code == 504
        assert response.reason == "deadline_expired"
        assert engine.chunks == []  # never dispatched
        assert gateway.queue_depth == 0
        assert controller.in_flight == 0  # slot released
        total = gateway.stats.as_dict()["total"]
        assert total["admitted"] == 1 and total["expired"] == 1
        assert gateway.stats.violations() == []
