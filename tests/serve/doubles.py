"""Test doubles for the serve suite: a controllable fake engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace

from repro._util import stable_hash


@dataclass
class FakeEngine:
    """Engine stand-in exposing exactly what the gateway touches.

    ``match_pairs`` answers with stable-hash parity (same rule as the
    engine suite's ParityBackend), records every dispatched chunk, and
    keeps ``stats.requests`` in sync so gateway reconciliation holds.
    The breaker is a plain namespace tests can flip open.
    """

    chunks: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.stats = SimpleNamespace(requests=0)
        self.breaker = SimpleNamespace(
            state="closed", opened_at=0.0, cooldown=2.0
        )

    def match_pairs(self, pairs):
        pairs = list(pairs)
        self.chunks.append(pairs)
        self.stats.requests += len(pairs)
        return [
            SimpleNamespace(
                decision=stable_hash(left, right) % 2 == 0,
                response="Yes.",
                source="backend",
            )
            for left, right in pairs
        ]
