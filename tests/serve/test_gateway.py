"""Gateway: queueing, backpressure, degradation, deadlines, both drive modes."""

import asyncio

import pytest

from repro.baselines.threshold import ThresholdMatcher
from repro.datasets.schema import EntityPair, Record, Split
from repro.faults.clock import ManualClock
from repro.serve import (
    AdmissionController,
    Gateway,
    MatchRequest,
    PersonaRouter,
    TenantPolicy,
    run_inline,
)

from tests.serve.doubles import FakeEngine

PERSONA = "llama-3.1-8b"
OTHER = "gpt-4o"


def _router(engines: dict | None = None, personas=(PERSONA, OTHER)):
    engines = engines if engines is not None else {}

    def factory(name):
        engine = engines.get(name)
        if engine is None:
            engine = engines[name] = FakeEngine()
        return engine

    return PersonaRouter(
        default=PERSONA, personas=personas, engine_factory=factory
    ), engines


def _requests(n, persona=PERSONA, tenant="a", deadline=None):
    return [
        MatchRequest(
            tenant=tenant,
            left=f"left item {i}",
            right=f"right item {i}",
            persona=persona,
            deadline=deadline,
            request_id=f"req-{i}",
        )
        for i in range(n)
    ]


def _threshold_decision(left: str, right: str) -> bool:
    split = Split(
        name="check",
        pairs=[EntityPair(
            pair_id="p",
            left=Record(record_id="l", attributes={}, description=left),
            right=Record(record_id="r", attributes={}, description=right),
            label=False,
        )],
    )
    return bool(ThresholdMatcher().predict(split)[0])


def _no_violations(gateway, router, engines):
    problems = gateway.stats.violations(in_queue=gateway.queue_depth)
    problems += gateway.stats.reconcile_engines(router.engines())
    assert problems == []


class TestInlineMode:
    def test_answers_in_submission_order_with_exact_accounting(self):
        clock = ManualClock()
        router, engines = _router()
        gateway = Gateway(router, workers=0, clock=clock, batch_size=4)
        requests = _requests(10)

        responses = asyncio.run(run_inline(gateway, requests))

        assert [r.request.request_id for r in responses] == [
            r.request_id for r in requests
        ]
        assert all(r.ok and r.source == "backend" for r in responses)
        assert all(r.persona == PERSONA for r in responses)
        total = gateway.stats.as_dict()["total"]
        assert total["submitted"] == total["admitted"] == 10
        assert total["completed"] == 10
        _no_violations(gateway, router, engines)

    def test_chunks_respect_batch_size_and_persona_contiguity(self):
        router, engines = _router()
        gateway = Gateway(router, workers=0, batch_size=4)
        # 3 for the default persona, then 2 for the other, then 6 back on
        # the default: chunks must never mix personas or exceed the batch.
        workload = (
            _requests(3) + _requests(2, persona=OTHER) + _requests(6)
        )
        asyncio.run(run_inline(gateway, workload))

        chunk_shapes = [
            (len(chunk)) for chunk in engines[PERSONA].chunks
        ] + [len(chunk) for chunk in engines[OTHER].chunks]
        assert len(engines[PERSONA].chunks[0]) <= 4
        assert engines[OTHER].stats.requests == 2
        assert engines[PERSONA].stats.requests == 9
        assert all(size <= 4 for size in chunk_shapes)

    def test_unknown_persona_is_a_structured_404_not_a_traceback(self):
        router, engines = _router()
        gateway = Gateway(router, workers=0)
        request = MatchRequest(
            tenant="a", left="x", right="y", persona="not-a-model"
        )
        response = asyncio.run(gateway.match(request))
        assert response.status == "error" and response.code == 404
        assert response.reason.startswith("unknown persona: not-a-model")
        assert response.persona == ""
        total = gateway.stats.as_dict()["total"]
        assert total["errors"] == 1 and total["admitted"] == 0
        _no_violations(gateway, router, engines)


class TestBackpressure:
    def _submit_overload(self, degrade: bool):
        router, engines = _router()
        gateway = Gateway(
            router, workers=0, queue_capacity=4,
            degrade_on_overload=degrade,
        )

        async def scenario():
            # Submit 6 without pumping: 4 queue, 2 overflow.
            tasks = [
                asyncio.ensure_future(gateway.match(r))
                for r in _requests(6)
            ]
            for _ in range(4):
                await asyncio.sleep(0)
            overflowed = [t for t in tasks if t.done()]
            gateway.pump_all()
            responses = await asyncio.gather(*tasks)
            return responses, len(overflowed)

        responses, overflowed = asyncio.run(scenario())
        return gateway, router, engines, responses, overflowed

    def test_overflow_degrades_to_threshold_answers(self):
        gateway, router, engines, responses, overflowed = (
            self._submit_overload(degrade=True)
        )
        assert overflowed == 2  # overflow settles immediately, no queueing
        degraded = [r for r in responses if r.source == "degraded"]
        assert len(degraded) == 2
        for response in degraded:
            assert response.ok and response.reason == "queue_full"
            assert response.decision == _threshold_decision(
                response.request.left, response.request.right
            )
        assert gateway.stats.as_dict()["total"]["degraded"] == 2
        assert gateway.stats.as_dict()["queue_high_water"] == 4
        _no_violations(gateway, router, engines)

    def test_overflow_sheds_with_503_when_degradation_disabled(self):
        gateway, router, engines, responses, _ = (
            self._submit_overload(degrade=False)
        )
        shed = [r for r in responses if r.status == "shed"]
        assert len(shed) == 2
        assert all(r.code == 503 and r.reason == "queue_full" for r in shed)
        assert all(r.decision is None for r in shed)
        assert gateway.stats.as_dict()["total"]["shed"] == 2
        _no_violations(gateway, router, engines)


class TestDeadlines:
    def test_expired_in_queue_is_never_dispatched(self):
        clock = ManualClock()
        router, engines = _router()
        gateway = Gateway(router, workers=0, clock=clock, batch_size=8)

        async def scenario():
            doomed = asyncio.ensure_future(gateway.match(
                MatchRequest(tenant="a", left="x", right="y",
                             persona=PERSONA, deadline=1.0,
                             request_id="doomed")
            ))
            healthy = asyncio.ensure_future(gateway.match(
                MatchRequest(tenant="a", left="p", right="q",
                             persona=PERSONA, request_id="healthy")
            ))
            await asyncio.sleep(0)
            clock.advance(2.0)  # the deadline passes while queued
            gateway.pump_all()
            return await asyncio.gather(doomed, healthy)

        doomed, healthy = asyncio.run(scenario())
        assert doomed.status == "expired" and doomed.code == 504
        assert healthy.ok
        # Only the healthy pair ever reached the engine.
        dispatched = [
            pair for chunk in engines[PERSONA].chunks for pair in chunk
        ]
        assert dispatched == [("p", "q")]
        _no_violations(gateway, router, engines)


class TestCircuitBreaker:
    def test_open_breaker_degrades_without_touching_the_engine(self):
        clock = ManualClock(start=10.0)
        router, engines = _router()
        gateway = Gateway(router, workers=0, clock=clock)
        engine = router.engine(PERSONA)
        engine.breaker.state = "open"
        engine.breaker.opened_at = 9.5
        engine.breaker.cooldown = 2.0

        responses = asyncio.run(run_inline(gateway, _requests(3)))

        assert all(
            r.ok and r.source == "degraded" and r.reason == "circuit_open"
            for r in responses
        )
        assert engines[PERSONA].chunks == []
        _no_violations(gateway, router, engines)

    def test_breaker_past_cooldown_dispatches_normally(self):
        clock = ManualClock(start=10.0)
        router, engines = _router()
        gateway = Gateway(router, workers=0, clock=clock)
        engine = router.engine(PERSONA)
        engine.breaker.state = "open"
        engine.breaker.opened_at = 5.0  # cooldown of 2.0 long since over
        responses = asyncio.run(run_inline(gateway, _requests(2)))
        assert all(r.source == "backend" for r in responses)


class TestAdmissionIntegration:
    def test_rejected_requests_get_429_and_consume_nothing(self):
        clock = ManualClock()
        router, engines = _router()
        admission = AdmissionController(
            clock=clock, default_policy=TenantPolicy(rate=0.0, burst=2.0)
        )
        gateway = Gateway(router, admission, workers=0, clock=clock)

        responses = asyncio.run(run_inline(gateway, _requests(5)))

        statuses = [r.status for r in responses]
        assert statuses == ["ok", "ok", "rejected", "rejected", "rejected"]
        rejected = responses[2]
        assert rejected.code == 429 and rejected.reason == "rate_limited"
        assert admission.in_flight == 0  # completions released their slots
        stats = gateway.stats.as_dict()
        assert stats["total"]["rejected"] == 3
        assert stats["rejected_reasons"] == {"rate_limited": 3}
        _no_violations(gateway, router, engines)


class TestThreadedMode:
    def test_threaded_workers_answer_everything_with_exact_accounting(self):
        router, engines = _router()
        gateway = Gateway(
            router, workers=3, queue_capacity=256, batch_size=8
        )
        workload = _requests(40) + _requests(24, persona=OTHER, tenant="b")

        async def scenario():
            async with gateway:
                return await gateway.match_many(workload)

        responses = asyncio.run(scenario())

        assert len(responses) == 64
        assert all(r.ok and r.source == "backend" for r in responses)
        assert [r.request.request_id for r in responses] == [
            r.request_id for r in workload
        ]
        assert engines[PERSONA].stats.requests == 40
        assert engines[OTHER].stats.requests == 24
        _no_violations(gateway, router, engines)

    def test_close_drains_the_queue_before_workers_exit(self):
        router, engines = _router()
        gateway = Gateway(router, workers=1, batch_size=4)

        async def scenario():
            await gateway.start()
            responses = await gateway.match_many(_requests(12))
            await gateway.close()
            return responses

        responses = asyncio.run(scenario())
        assert len(responses) == 12 and all(r.ok for r in responses)
        assert gateway.queue_depth == 0


class TestConstructionValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"batch_size": 0},
            {"workers": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        router, _ = _router()
        with pytest.raises(ValueError):
            Gateway(router, **kwargs)
