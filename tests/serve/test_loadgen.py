"""Load generation and replay: determinism, schedules, roll-up math."""

import asyncio

import pytest

from repro.faults.clock import ManualClock
from repro.serve import (
    Gateway,
    LoadProfile,
    PersonaRouter,
    generate_arrivals,
    replay_simulated,
    summarize,
)

from tests.serve.doubles import FakeEngine

PERSONA = "llama-3.1-8b"
PAIRS = [(f"left item {i}", f"right item {i}") for i in range(8)]


def _profile(**overrides) -> LoadProfile:
    defaults = dict(
        offered_load=100.0, requests=24, tenants=3, persona=PERSONA, seed=0
    )
    defaults.update(overrides)
    return LoadProfile(**defaults)


class TestProfileValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"offered_load": 0.0},
            {"offered_load": -5.0},
            {"requests": 0},
            {"tenants": 0},
        ],
    )
    def test_bad_profiles_rejected(self, overrides):
        with pytest.raises(ValueError):
            _profile(**overrides)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            generate_arrivals(_profile(), [])


class TestGenerateArrivals:
    def test_schedule_is_deterministic_across_calls(self):
        first = generate_arrivals(_profile(), PAIRS)
        second = generate_arrivals(_profile(), PAIRS)
        assert first == second

    def test_different_seeds_give_different_schedules(self):
        base = generate_arrivals(_profile(), PAIRS)
        other = generate_arrivals(_profile(seed=1), PAIRS)
        assert [a.at for a in base] != [a.at for a in other]

    def test_arrival_times_strictly_increase(self):
        times = [a.at for a in generate_arrivals(_profile(), PAIRS)]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert times[0] > 0.0

    def test_tenants_cycle_round_robin(self):
        arrivals = generate_arrivals(_profile(tenants=3, requests=7), PAIRS)
        assert [a.request.tenant for a in arrivals] == [
            "tenant-0", "tenant-1", "tenant-2",
            "tenant-0", "tenant-1", "tenant-2", "tenant-0",
        ]

    def test_relative_deadline_becomes_absolute_per_arrival(self):
        arrivals = generate_arrivals(_profile(deadline=0.25), PAIRS)
        for arrival in arrivals:
            assert arrival.request.deadline == pytest.approx(
                arrival.at + 0.25
            )

    def test_no_deadline_by_default(self):
        arrivals = generate_arrivals(_profile(), PAIRS)
        assert all(a.request.deadline is None for a in arrivals)

    def test_pairs_drawn_from_the_given_workload(self):
        arrivals = generate_arrivals(_profile(requests=64), PAIRS)
        drawn = {(a.request.left, a.request.right) for a in arrivals}
        assert drawn <= set(PAIRS)
        assert len(drawn) > 1  # actually sampling, not repeating one pair

    def test_request_ids_are_unique_and_ordered(self):
        arrivals = generate_arrivals(_profile(), PAIRS)
        ids = [a.request.request_id for a in arrivals]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)


class TestReplaySimulated:
    def _session(self, **profile_overrides):
        clock = ManualClock()
        engine = FakeEngine()
        router = PersonaRouter(
            default=PERSONA, personas=(PERSONA,),
            engine_factory=lambda name: engine,
        )
        gateway = Gateway(
            router, workers=0, clock=clock, queue_capacity=64, batch_size=4
        )
        arrivals = generate_arrivals(_profile(**profile_overrides), PAIRS)
        outcomes = asyncio.run(replay_simulated(gateway, arrivals, clock))
        return gateway, engine, arrivals, outcomes

    def test_every_arrival_is_answered_in_order(self):
        gateway, engine, arrivals, outcomes = self._session()
        assert len(outcomes) == len(arrivals)
        assert [o.arrival for o in outcomes] == arrivals
        assert all(o.response.ok for o in outcomes)
        assert gateway.stats.violations(in_queue=gateway.queue_depth) == []

    def test_simulated_session_is_fully_deterministic(self):
        _, _, _, first = self._session()
        _, _, _, second = self._session()
        assert [
            (o.response.status, o.response.decision, o.latency)
            for o in first
        ] == [
            (o.response.status, o.response.decision, o.latency)
            for o in second
        ]

    def test_latency_is_schedule_to_completion(self):
        _, _, _, outcomes = self._session()
        for outcome in outcomes:
            assert outcome.completed_at >= outcome.arrival.at
            assert outcome.latency == pytest.approx(
                outcome.completed_at - outcome.arrival.at
            )

    def test_pump_every_must_be_positive(self):
        clock = ManualClock()
        router = PersonaRouter(
            default=PERSONA, personas=(PERSONA,),
            engine_factory=lambda name: FakeEngine(),
        )
        gateway = Gateway(router, workers=0, clock=clock)
        with pytest.raises(ValueError):
            asyncio.run(
                replay_simulated(gateway, [], clock, pump_every=0)
            )


class TestSummarize:
    def test_rollup_counts_statuses_sources_and_goodput(self):
        _, _, _, outcomes = (
            TestReplaySimulated()._session(requests=24)
        )
        summary = summarize(outcomes)
        assert summary["requests"] == 24
        assert summary["answered"] == 24
        assert summary["statuses"] == {"ok": 24}
        assert summary["sources"] == {"backend": 24}
        assert set(summary["latency"]) == {"p50", "p95", "p99"}
        assert summary["latency"]["p50"] <= summary["latency"]["p99"]
        assert summary["duration"] > 0
        assert summary["goodput"] == pytest.approx(
            24 / summary["duration"], rel=1e-3
        )

    def test_empty_outcome_list_rolls_up_to_zeroes(self):
        summary = summarize([])
        assert summary == {
            "requests": 0,
            "answered": 0,
            "statuses": {},
            "sources": {},
            "latency": {},
            "duration": 0.0,
            "goodput": 0.0,
        }
