"""Persona routing: aliases, lazy engines, structured unknown-persona errors."""

import pytest

from repro.llm.registry import MODEL_NAMES
from repro.serve import PersonaRouter, UnknownPersonaError

from tests.serve.doubles import FakeEngine


class TestResolve:
    def test_default_and_empty_route_to_the_default_persona(self):
        router = PersonaRouter(default="llama-3.1-8b")
        assert router.resolve("default") == "llama-3.1-8b"
        assert router.resolve("") == "llama-3.1-8b"
        assert router.default == "llama-3.1-8b"

    def test_paper_aliases_resolve_to_canonical_names(self):
        router = PersonaRouter()
        assert router.resolve("llama-8b") == "llama-3.1-8b"
        assert router.resolve("gpt-4o-mini-2024-07-18") == "gpt-4o-mini"

    def test_default_may_itself_be_an_alias(self):
        router = PersonaRouter(default="llama-8b")
        assert router.default == "llama-3.1-8b"

    def test_serves_every_registered_persona_by_default(self):
        assert PersonaRouter().personas == MODEL_NAMES

    def test_unknown_persona_raises_structured_error(self):
        router = PersonaRouter()
        with pytest.raises(UnknownPersonaError) as exc_info:
            router.resolve("not-a-model")
        error = exc_info.value
        assert error.persona == "not-a-model"
        assert error.choices[0] == "default"
        assert set(MODEL_NAMES) <= set(error.choices)
        assert str(error).startswith("unknown persona: not-a-model (choose from ")

    def test_known_persona_outside_served_set_is_unknown_here(self):
        router = PersonaRouter(
            default="llama-3.1-8b", personas=("llama-3.1-8b",)
        )
        with pytest.raises(UnknownPersonaError) as exc_info:
            router.resolve("gpt-4o")
        assert exc_info.value.choices == ("default", "llama-3.1-8b")

    def test_default_must_be_among_served_personas(self):
        with pytest.raises(ValueError):
            PersonaRouter(default="gpt-4o", personas=("llama-3.1-8b",))


class TestEngines:
    def test_engine_built_lazily_and_exactly_once_per_persona(self):
        built = []

        def factory(name):
            built.append(name)
            return FakeEngine()

        router = PersonaRouter(engine_factory=factory)
        assert built == []
        first = router.engine("llama-3.1-8b")
        again = router.engine("llama-8b")  # alias: same persona, same engine
        other = router.engine("gpt-4o")
        assert first is again and first is not other
        assert built == ["llama-3.1-8b", "gpt-4o"]

    def test_engines_snapshot_maps_canonical_names(self):
        router = PersonaRouter(engine_factory=lambda name: FakeEngine())
        assert router.engines() == {}
        router.engine("default")
        assert list(router.engines()) == [router.default]
