"""The resource-lifecycle analysis (resources) over the respkg fixtures."""

import textwrap

import pytest

from repro.lint.deep import build_context, run_deep
from repro.lint.resources import ResourceAnalysis
from repro.lint.symbols import SymbolTable

from .conftest import REPO_ROOT

FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


@pytest.fixture(scope="module")
def fixture_run():
    context = build_context(FIXTURES, ("respkg",))
    findings, summary = run_deep(context=context)
    return context, findings, summary


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def analyze(source: str, module: str = "pkg.mod") -> ResourceAnalysis:
    """Run just the resource analysis over one in-memory module."""
    from repro.lint.callgraph import build_call_graph

    table = SymbolTable.from_sources({module: textwrap.dedent(source)})
    return ResourceAnalysis(table, build_call_graph(table))


class TestLeakRule:
    def test_every_leak_shape_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        lines = sorted(
            f.line
            for f in by_rule(findings, "deep-resource-leak")
            if f.path == "respkg/bad_leak.py"
        )
        # return, exception edge, discard, thread exit, unowned self store.
        assert lines == [10, 17, 23, 30, 37]

    def test_messages_carry_provenance(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-resource-leak")
            if f.path == "respkg/bad_leak.py" and f.line == 10
        )
        assert "file acquired at respkg/bad_leak.py:8" in hit.message
        assert "via return" in hit.message

    def test_good_module_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(f.path == "respkg/good_leak.py" for f in findings)

    def test_factory_chain_provenance(self):
        analysis = analyze(
            """
            def make(path):
                return open(path)


            def use(path):
                handle = make(path)
                return handle.read()
            """
        )
        (leak,) = analysis.leaks
        assert leak.fn == "pkg.mod.use"
        assert "make(...)" in leak.prov.describe()
        assert "file acquired" in leak.prov.describe()


class TestDoubleCloseRule:
    def test_second_close_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        (hit,) = by_rule(findings, "deep-resource-double-close")
        assert hit.path == "respkg/bad_double_close.py"
        assert hit.line == 21
        assert "first at line 20" in hit.message

    def test_idempotent_and_builtin_releases_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(
            f.path == "respkg/good_double_close.py" for f in findings
        )


class TestShutdownOrderRule:
    def test_wrong_sequence_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-shutdown-order")
            if f.line == 22
        )
        assert "JoinBeforeWake" in hit.message
        assert "_cv" in hit.message and "_threads" in hit.message

    def test_declared_but_never_released_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        assert any(
            "no release method ever releases it" in f.message
            for f in by_rule(findings, "deep-shutdown-order")
        )

    def test_unknown_attribute_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        assert any(
            "unknown attribute '_missing'" in f.message
            for f in by_rule(findings, "deep-shutdown-order")
        )

    def test_good_module_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(
            f.path == "respkg/good_shutdown_order.py" for f in findings
        )


class TestRegressionModule:
    """The real-tree leaks, pinned in distilled form."""

    def test_unowned_journal_store_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-resource-leak")
            if f.path == "respkg/regression_store.py" and f.line == 28
        )
        assert "self._journal" in hit.message

    def test_crash_loop_rebind_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-resource-leak")
            if f.path == "respkg/regression_store.py" and f.line == 38
        )
        assert "via rebound" in hit.message
        assert "MiniStore acquired" in hit.message


class TestRunSummary:
    def test_exact_finding_set(self, fixture_run):
        """The fixture package's full expected output, pinned."""
        _, findings, _ = fixture_run
        got = sorted((f.rule, f.path, f.line) for f in findings)
        assert got == [
            ("deep-resource-double-close", "respkg/bad_double_close.py", 21),
            ("deep-resource-leak", "respkg/bad_leak.py", 10),
            ("deep-resource-leak", "respkg/bad_leak.py", 17),
            ("deep-resource-leak", "respkg/bad_leak.py", 23),
            ("deep-resource-leak", "respkg/bad_leak.py", 30),
            ("deep-resource-leak", "respkg/bad_leak.py", 37),
            ("deep-resource-leak", "respkg/regression_store.py", 28),
            ("deep-resource-leak", "respkg/regression_store.py", 38),
            ("deep-shutdown-order", "respkg/bad_shutdown_order.py", 22),
            ("deep-shutdown-order", "respkg/bad_shutdown_order.py", 25),
            ("deep-shutdown-order", "respkg/bad_shutdown_order.py", 39),
        ]

    def test_resolution_rate_floor(self, fixture_run):
        """ISSUE acceptance: callgraph resolution >= 0.90 on respkg."""
        _, _, summary = fixture_run
        assert summary["callgraph"]["resolution_rate"] >= 0.90

    def test_resource_census(self, fixture_run):
        _, _, summary = fixture_run
        census = summary["resources"]
        assert census["leaks"] == 7
        assert census["double_closes"] == 1
        assert census["order_violations"] == 3
        assert census["declared_orders"] == 4
        assert census["resource_classes"] >= 5
        assert census["managed_sites"] >= 1


class TestAnalysisInternals:
    def test_with_managed_binding_counts_as_release(self):
        """`h = open(...)` later owned by `with h:` is not a leak."""
        analysis = analyze(
            """
            def load(path, mode):
                handle = open(path, mode)
                with handle:
                    return handle.read()
            """
        )
        assert analysis.leaks == []

    def test_daemon_threads_exempt(self):
        analysis = analyze(
            """
            import threading


            def fire_and_forget(job):
                worker = threading.Thread(target=job, daemon=True)
                worker.start()
            """
        )
        assert analysis.leaks == []

    def test_transfer_to_sinking_callee(self):
        """Passing to a close-taking callee transfers ownership."""
        analysis = analyze(
            """
            def consume(handle):
                try:
                    return handle.read()
                finally:
                    handle.close()


            def produce(path):
                handle = open(path)
                return consume(handle)
            """
        )
        assert analysis.leaks == []

    def test_resolved_non_sinking_callee_keeps_ownership(self):
        """A callee that only reads the resource does not release it."""
        analysis = analyze(
            """
            def peek(handle):
                return handle.read()


            def produce(path):
                handle = open(path)
                return peek(handle)
            """
        )
        assert [leak.how for leak in analysis.leaks] == ["return"]

    def test_shutdown_order_inherited_lookup(self):
        table = SymbolTable.from_sources(
            {
                "pkg.mod": textwrap.dedent(
                    """
                    class Base:
                        __shutdown_order__ = shutdown_order("_a", "_b")


                    class Child(Base):
                        pass
                    """
                )
            }
        )
        assert table.shutdown_order_of("pkg.mod.Child") == ("_a", "_b")
        assert table.shutdown_order_of("pkg.mod.Base") == ("_a", "_b")


class TestContainerElementStores:
    """``self.attr[i] = resource`` transfers ownership to the attribute."""

    POOL = """
        from repro.concurrency import shutdown_order


        class Pool:
            __shutdown_order__ = shutdown_order("_handles")

            def __init__(self):
                self._handles = [None]

            def swap(self, path):
                handle = open(path)
                self._handles[0] = handle

            def close(self):
                for handle in self._handles:
                    handle.close()
        """

    def test_element_store_into_owned_attr_is_clean(self):
        analysis = analyze(self.POOL)
        assert analysis.leaks == []

    def test_element_store_into_undeclared_attr_flagged(self):
        analysis = analyze(
            """
            class Pool:
                def __init__(self):
                    self._handles = [None]

                def swap(self, path):
                    handle = open(path)
                    self._handles[0] = handle
            """
        )
        assert any(
            leak.how == "unowned self store"
            and leak.name == "self._handles"
            for leak in analysis.leaks
        )

    def test_direct_element_store_of_fresh_resource_is_clean(self):
        # No intermediate binding: the acquisition lands straight in the
        # owned container.
        analysis = analyze(
            """
            from repro.concurrency import shutdown_order


            class Pool:
                __shutdown_order__ = shutdown_order("_handles")

                def __init__(self):
                    self._handles = [None]

                def swap(self, path):
                    self._handles[0] = open(path)

                def close(self):
                    for handle in self._handles:
                        handle.close()
            """
        )
        assert analysis.leaks == []
