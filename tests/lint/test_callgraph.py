"""Call graph: resolution of direct calls, methods, aliases, dispatch."""

from repro.lint.callgraph import build_call_graph
from repro.lint.symbols import SymbolTable

from .conftest import REPO_ROOT


def graph_for(sources: dict) -> tuple:
    table = SymbolTable.from_sources(sources)
    return table, build_call_graph(table)


def sites_of(graph, qualname: str) -> dict:
    """{callee_text: CallSite} for one caller, for easy assertions."""
    return {site.callee_text: site for site in graph.sites.get(qualname, [])}


class TestDirectCalls:
    def test_same_module_function_call(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "def helper():\n"
                    "    return 1\n"
                    "def caller():\n"
                    "    return helper()\n"
                )
            }
        )
        site = sites_of(graph, "pkg.mod.caller")["helper"]
        assert site.status == "resolved"
        assert site.targets == ["pkg.mod.helper"]

    def test_cross_module_imported_function(self):
        _, graph = graph_for(
            {
                "pkg.a": "def work():\n    return 1\n",
                "pkg.b": (
                    "from pkg.a import work\n"
                    "def caller():\n"
                    "    return work()\n"
                ),
            }
        )
        site = sites_of(graph, "pkg.b.caller")["work"]
        assert site.status == "resolved" and site.targets == ["pkg.a.work"]

    def test_builtin_and_external_calls(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "import json\n"
                    "def caller(x, out: list):\n"
                    "    out.append(len(x))\n"
                    "    return json.dumps(out)\n"
                )
            }
        )
        sites = sites_of(graph, "pkg.mod.caller")
        assert sites["len"].status == "external"
        assert sites["json.dumps"].status == "external"
        assert sites["out.append"].status == "builtin"


class TestMethodCalls:
    def test_self_dispatch(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "class Widget:\n"
                    "    def render(self):\n"
                    "        return self.size()\n"
                    "    def size(self):\n"
                    "        return 3\n"
                )
            }
        )
        site = sites_of(graph, "pkg.mod.Widget.render")["self.size"]
        assert site.status == "resolved"
        assert site.targets == ["pkg.mod.Widget.size"]

    def test_typed_local_receiver(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "class Widget:\n"
                    "    def size(self):\n"
                    "        return 3\n"
                    "def caller():\n"
                    "    w = Widget()\n"
                    "    return w.size()\n"
                )
            }
        )
        site = sites_of(graph, "pkg.mod.caller")["w.size"]
        assert site.status == "resolved"
        assert site.targets == ["pkg.mod.Widget.size"]

    def test_annotated_param_receiver(self):
        _, graph = graph_for(
            {
                "pkg.a": "class Widget:\n    def size(self):\n        return 3\n",
                "pkg.b": (
                    "from pkg.a import Widget\n"
                    "def caller(w: Widget):\n"
                    "    return w.size()\n"
                ),
            }
        )
        site = sites_of(graph, "pkg.b.caller")["w.size"]
        assert site.status == "resolved" and site.targets == ["pkg.a.Widget.size"]

    def test_inherited_method_resolves_to_base(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "class Base:\n"
                    "    def ping(self):\n"
                    "        return 1\n"
                    "class Child(Base):\n"
                    "    def caller(self):\n"
                    "        return self.ping()\n"
                )
            }
        )
        site = sites_of(graph, "pkg.mod.Child.caller")["self.ping"]
        assert site.status == "resolved" and site.targets == ["pkg.mod.Base.ping"]


class TestAliasedImports:
    def test_aliased_function_import(self):
        _, graph = graph_for(
            {
                "pkg.a": "def work():\n    return 1\n",
                "pkg.b": (
                    "from pkg.a import work as w\n"
                    "def caller():\n"
                    "    return w()\n"
                ),
            }
        )
        site = sites_of(graph, "pkg.b.caller")["w"]
        assert site.status == "resolved" and site.targets == ["pkg.a.work"]

    def test_module_alias_attribute_call(self):
        _, graph = graph_for(
            {
                "pkg.a": "def work():\n    return 1\n",
                "pkg.b": (
                    "import pkg.a as helpers\n"
                    "def caller():\n"
                    "    return helpers.work()\n"
                ),
            }
        )
        site = sites_of(graph, "pkg.b.caller")["helpers.work"]
        assert site.status == "resolved" and site.targets == ["pkg.a.work"]

    def test_reexported_name_resolves_through_package(self):
        _, graph = graph_for(
            {
                "pkg": "from pkg.impl import api\n",
                "pkg.impl": "def api():\n    return 1\n",
                "pkg.user": (
                    "from pkg import api\n"
                    "def caller():\n"
                    "    return api()\n"
                ),
            }
        )
        site = sites_of(graph, "pkg.user.caller")["api"]
        assert site.status == "resolved" and site.targets == ["pkg.impl.api"]


class TestProtocolDispatch:
    def test_protocol_receiver_fans_out_to_impls(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "from typing import Protocol\n"
                    "class Backend(Protocol):\n"
                    "    def generate(self, prompts: list) -> list: ...\n"
                    "class A:\n"
                    "    def generate(self, prompts: list) -> list:\n"
                    "        return prompts\n"
                    "class B:\n"
                    "    def generate(self, prompts: list) -> list:\n"
                    "        return list(prompts)\n"
                    "def caller(backend: Backend):\n"
                    "    return backend.generate([])\n"
                )
            }
        )
        site = sites_of(graph, "pkg.mod.caller")["backend.generate"]
        assert site.status == "resolved"
        assert sorted(site.targets) == ["pkg.mod.A.generate", "pkg.mod.B.generate"]


class TestDynamicCalls:
    def test_callable_param_is_dynamic(self):
        _, graph = graph_for(
            {"pkg.mod": "def caller(fn):\n    return fn()\n"}
        )
        assert sites_of(graph, "pkg.mod.caller")["fn"].status == "dynamic"

    def test_stored_callable_attr_is_dynamic(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "class Timer:\n"
                    "    def __init__(self, clock):\n"
                    "        self._clock = clock\n"
                    "    def now(self):\n"
                    "        return self._clock()\n"
                )
            }
        )
        assert sites_of(graph, "pkg.mod.Timer.now")["self._clock"].status == "dynamic"


class TestSummary:
    def test_summary_accounting(self):
        _, graph = graph_for(
            {
                "pkg.mod": (
                    "def helper():\n"
                    "    return len([])\n"
                    "def caller():\n"
                    "    return helper()\n"
                )
            }
        )
        summary = graph.summary()
        assert summary["resolved"] == 1
        assert summary["unresolved"] == 0
        assert summary["resolution_rate"] == 1.0
        assert summary["call_sites"] == 2

    def test_real_tree_resolution_rate_meets_floor(self):
        """ISSUE acceptance: >= 90% of intra-package call sites resolve."""
        table = SymbolTable.build(REPO_ROOT, ("src/repro",))
        graph = build_call_graph(table)
        summary = graph.summary()
        assert summary["resolution_rate"] >= 0.90
