"""Table-driven bad/good snippet pairs for every file-scoped lint rule.

Each rule gets at least one known-bad snippet (must produce a finding)
and one known-good snippet (must stay silent); scoped rules additionally
prove they ignore files outside their scope.
"""

import pytest

from repro.lint.registry import RULES

from tests.lint.conftest import run_rule

ENGINE = "src/repro/engine/example.py"
EVAL = "src/repro/eval/example.py"
LLM = "src/repro/llm/example.py"
FAULTS = "src/repro/faults/example.py"
SERVING = "src/repro/serving/example.py"
SERVE = "src/repro/serve/example.py"

#: (rule, snippet, relpath) triples that MUST produce at least one finding.
BAD = [
    ("unseeded-rng", "import random\nx = random.random()\n", None),
    ("unseeded-rng", "import random\nrandom.shuffle(items)\n", None),
    ("unseeded-rng", "import random\nr = random.Random()\n", None),
    ("unseeded-rng", "import numpy as np\nrng = np.random.default_rng()\n", None),
    ("unseeded-rng", "import numpy as np\nnp.random.seed(0)\n", None),
    ("ambient-clock", "import time\nstamp = time.time()\n", None),
    (
        "ambient-clock",
        "from datetime import datetime\nnow = datetime.now()\n",
        None,
    ),
    ("ambient-clock", "import datetime\nd = datetime.date.today()\n", None),
    ("salted-hash", "key = hash(('left', 'right'))\n", None),
    ("set-iteration", "items = [t for t in set(tokens)]\n", None),
    ("set-iteration", "for t in {1, 2, 3}:\n    emit(t)\n", None),
    ("set-iteration", "for t in frozenset(tokens):\n    emit(t)\n", None),
    ("environ-read", "import os\nmode = os.environ['MODE']\n", None),
    ("environ-read", "import os\nmode = os.getenv('MODE')\n", None),
    ("untyped-except", "try:\n    work()\nexcept:\n    pass\n", None),
    (
        "broad-except",
        "try:\n    work()\nexcept Exception:\n    pass\n",
        ENGINE,
    ),
    (
        "broad-except",
        "try:\n    work()\nexcept (ValueError, BaseException):\n    pass\n",
        ENGINE,
    ),
    (
        "fallback-cache",
        """
        class Engine:
            def _fallback_batch(self, batch):
                self.cache.put("key", "value")
        """,
        ENGINE,
    ),
    ("float-eq", "exact = f1 == 100.0\n", EVAL),
    ("float-eq", "exact = 0.0 != precision\n", EVAL),
    ("injectable-sleep", "import time\ntime.sleep(0.5)\n", ENGINE),
    ("injectable-sleep", "import time\ntime.sleep(backoff)\n", FAULTS),
    ("injectable-sleep", "import time\nstamp = time.time()\n", SERVING),
    (
        "injectable-sleep",
        "import asyncio\nasync def f():\n    await asyncio.sleep(0.5)\n",
        SERVE,
    ),
    (
        "injectable-sleep",
        "import asyncio\nasync def f():\n    await asyncio.sleep(delay)\n",
        SERVE,
    ),
    (
        "injectable-sleep",
        "import asyncio\nloop = asyncio.get_running_loop()\nt = loop.time()\n",
        SERVE,
    ),
    (
        "marker-safety",
        '_HEDGES = ("They are likely the same entity.",)\n',
        LLM,
    ),
    (
        "marker-safety",
        '_VERBOSE_YES = ("Hard to say either way.",)\n',
        LLM,
    ),
    (
        "marker-safety",
        '_VERBOSE_NO = ("Yes, they match.",)\n',
        LLM,
    ),
]

#: (rule, snippet, relpath) triples that MUST stay silent.
GOOD = [
    ("unseeded-rng", "import random\nr = random.Random(7)\n", None),
    (
        "unseeded-rng",
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        None,
    ),
    (
        "unseeded-rng",
        "rng = derive_rng(seed, 'namespace')\nx = rng.random()\n",
        None,
    ),
    (
        "ambient-clock",
        "import time\nt0 = time.perf_counter()\nt1 = time.monotonic()\n",
        None,
    ),
    ("salted-hash", "key = stable_hash('left', 'right')\n", None),
    ("set-iteration", "for t in sorted(set(tokens)):\n    emit(t)\n", None),
    ("set-iteration", "ok = x in set(tokens)\n", None),
    (
        "environ-read",
        "import os\nmode = os.environ['MODE']\n",
        "src/repro/training/config.py",
    ),
    ("untyped-except", "try:\n    work()\nexcept ValueError:\n    pass\n", None),
    (
        "broad-except",
        "try:\n    work()\nexcept BackendError:\n    pass\n",
        ENGINE,
    ),
    # broad except outside the engine is out of scope for this rule
    (
        "broad-except",
        "try:\n    work()\nexcept Exception:\n    pass\n",
        "src/repro/datasets/example.py",
    ),
    (
        "fallback-cache",
        """
        class Engine:
            def _dispatch(self, batch):
                self.cache.put("key", "value")

            def _fallback_batch(self, batch):
                return [False for _ in batch]
        """,
        ENGINE,
    ),
    ("float-eq", "close = abs(f1 - 100.0) < 1e-9\n", EVAL),
    ("float-eq", "exact = count == 0\n", EVAL),
    # referencing time.sleep as an injectable default is the approved seam
    (
        "injectable-sleep",
        "import time\n"
        "def run(sleep=time.sleep, clock=time.monotonic):\n"
        "    sleep(1.0)\n"
        "    return clock()\n",
        ENGINE,
    ),
    # direct sleeps outside the clock-injectable packages are out of scope
    ("injectable-sleep", "import time\ntime.sleep(0.5)\n", "scripts/example.py"),
    # asyncio.sleep(0) is a pure scheduler yield, not a timed wait
    (
        "injectable-sleep",
        "import asyncio\nasync def f():\n    await asyncio.sleep(0)\n",
        SERVE,
    ),
    # taking the sleeper as an injectable parameter is the approved seam
    (
        "injectable-sleep",
        "import asyncio\n"
        "async def run(sleep_async=asyncio.sleep):\n"
        "    await sleep_async(0.5)\n",
        SERVE,
    ),
    # ambient asyncio sleeps outside the clock-injectable packages pass
    (
        "injectable-sleep",
        "import asyncio\nasync def f():\n    await asyncio.sleep(0.5)\n",
        "scripts/example.py",
    ),
    # float == outside eval code is out of scope for this rule
    ("float-eq", "exact = f1 == 100.0\n", "src/repro/analysis/example.py"),
    (
        "marker-safety",
        '_HEDGES = ("Hard to tell from the descriptions alone.",)\n',
        LLM,
    ),
    (
        "marker-safety",
        '_VERBOSE_YES = ("Yes, these records line up.",)\n',
        LLM,
    ),
    # answer tables outside repro/llm & repro/prompts are out of scope
    (
        "marker-safety",
        '_HEDGES = ("They are likely the same entity.",)\n',
        "src/repro/datasets/example.py",
    ),
]


@pytest.mark.parametrize(("rule", "source", "relpath"), BAD)
def test_bad_snippet_trips_rule(rule, source, relpath):
    findings = run_rule(rule, source, **({"relpath": relpath} if relpath else {}))
    assert findings, f"{rule} missed a known-bad snippet"
    assert all(f.rule == rule for f in findings)
    assert all(f.line >= 1 and f.message for f in findings)


@pytest.mark.parametrize(("rule", "source", "relpath"), GOOD)
def test_good_snippet_stays_clean(rule, source, relpath):
    findings = run_rule(rule, source, **({"relpath": relpath} if relpath else {}))
    assert findings == [], f"{rule} false-positived on a known-good snippet"


def test_every_file_rule_is_covered():
    file_rules = {r.id for r in RULES.values() if r.scope == "file"}
    covered_bad = {rule for rule, _, _ in BAD}
    covered_good = {rule for rule, _, _ in GOOD}
    assert file_rules == covered_bad, "every file rule needs a bad snippet"
    assert file_rules == covered_good, "every file rule needs a good snippet"


def test_findings_carry_hints():
    findings = run_rule("unseeded-rng", "import random\nx = random.random()\n")
    assert findings[0].hint
