"""Walker behaviour, the `repro-em lint` CLI, and the self-lint gate."""

import json
import subprocess

import pytest

from repro.cli import main
from repro.lint import DEFAULT_ROOTS, run_lint
from repro.lint.findings import Finding, format_json, format_text
from repro.lint.walker import changed_files

BAD_FIXTURE = "tests/lint/fixtures/bad_determinism.py"
CLEAN_FIXTURE = "tests/lint/fixtures/clean_module.py"


@pytest.fixture(autouse=True)
def in_repo_root(repo_root, monkeypatch):
    monkeypatch.chdir(repo_root)


class TestRunLint:
    def test_bad_fixture_produces_expected_rules(self, repo_root):
        findings = run_lint(repo_root, paths=[BAD_FIXTURE])
        rules = {f.rule for f in findings}
        assert {
            "ambient-clock",
            "unseeded-rng",
            "set-iteration",
            "salted-hash",
            "untyped-except",
        } <= rules
        assert all(f.path.endswith("bad_determinism.py") for f in findings)

    def test_clean_fixture_is_clean(self, repo_root):
        assert run_lint(repo_root, paths=[CLEAN_FIXTURE]) == []

    def test_rule_filter(self, repo_root):
        findings = run_lint(
            repo_root, paths=[BAD_FIXTURE], rules=["salted-hash"]
        )
        assert findings and {f.rule for f in findings} == {"salted-hash"}

    def test_unknown_rule_raises(self, repo_root):
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint(repo_root, paths=[BAD_FIXTURE], rules=["nope"])

    def test_missing_explicit_path_raises(self, repo_root):
        with pytest.raises(FileNotFoundError):
            run_lint(repo_root, paths=["does/not/exist.py"])

    def test_syntax_error_becomes_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n")
        findings = run_lint(tmp_path, paths=[str(broken)])
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_self_lint_whole_tree_is_clean(self, repo_root):
        """Acceptance criterion: zero unsuppressed findings on the tree."""
        findings = run_lint(repo_root, paths=list(DEFAULT_ROOTS))
        assert findings == [], format_text(findings)


class TestCli:
    def test_exit_zero_on_clean_target(self, capsys):
        assert main(["lint", CLEAN_FIXTURE]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_bad_fixture(self, capsys):
        assert main(["lint", BAD_FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "bad_determinism.py" in out

    def test_exit_two_on_unknown_rule(self, capsys):
        assert main(["lint", "--rule", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json", BAD_FIXTURE]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) > 0
        first = payload["findings"][0]
        assert {"rule", "severity", "path", "line", "message", "hint"} <= set(first)

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "prompt-roundtrip" in out

    def test_rule_filter_on_clean_rule(self):
        # the bad fixture has no engine-hygiene fallback violation
        assert main(["lint", "--rule", "fallback-cache", BAD_FIXTURE]) == 0


class TestParallel:
    def test_threaded_run_matches_serial_byte_for_byte(self, repo_root):
        serial = run_lint(repo_root, paths=[BAD_FIXTURE, CLEAN_FIXTURE], jobs=1)
        threaded = run_lint(repo_root, paths=[BAD_FIXTURE, CLEAN_FIXTURE], jobs=4)
        assert serial  # the comparison must not pass vacuously
        assert format_json(serial) == format_json(threaded)

    def test_threaded_whole_tree_matches_serial(self, repo_root):
        serial = run_lint(repo_root, paths=list(DEFAULT_ROOTS))
        threaded = run_lint(repo_root, paths=list(DEFAULT_ROOTS), jobs=8)
        assert format_json(serial) == format_json(threaded)

    def test_jobs_one_and_none_are_equivalent(self, repo_root):
        assert run_lint(repo_root, paths=[BAD_FIXTURE], jobs=None) == run_lint(
            repo_root, paths=[BAD_FIXTURE], jobs=1
        )


class TestChangedFiles:
    @staticmethod
    def _git(repo, *argv):
        subprocess.run(
            ["git", "-C", str(repo), *argv], check=True, capture_output=True
        )

    @pytest.fixture()
    def scratch_repo(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "config", "user.email", "lint@test")
        self._git(tmp_path, "config", "user.name", "lint")
        (tmp_path / "src" / "repro" / "a.py").write_text("x = 1\n")
        (tmp_path / "src" / "repro" / "gone.py").write_text("g = 1\n")
        (tmp_path / "notes.txt").write_text("hi\n")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        return tmp_path

    def test_modified_and_untracked_python_under_roots(self, scratch_repo):
        (scratch_repo / "src" / "repro" / "a.py").write_text("x = 2\n")
        (scratch_repo / "src" / "repro" / "b.py").write_text("y = 1\n")
        (scratch_repo / "top.py").write_text("z = 1\n")  # outside roots
        (scratch_repo / "notes.txt").write_text("changed\n")  # not python
        got = changed_files(scratch_repo)
        assert got == ["src/repro/a.py", "src/repro/b.py"]

    def test_clean_tree_yields_nothing(self, scratch_repo):
        assert changed_files(scratch_repo) == []

    def test_deleted_files_are_dropped(self, scratch_repo):
        (scratch_repo / "src" / "repro" / "gone.py").unlink()
        assert changed_files(scratch_repo) == []

    def test_outside_a_checkout_raises(self, tmp_path):
        with pytest.raises(ValueError, match="changed-files lookup failed"):
            changed_files(tmp_path)

    def test_bad_base_raises(self, scratch_repo):
        with pytest.raises(ValueError, match="changed-files lookup failed"):
            changed_files(scratch_repo, base="no-such-ref")


class TestCliScoping:
    def test_changed_only_conflicts_with_explicit_paths(self, capsys):
        assert main(["lint", "--changed-only", BAD_FIXTURE]) == 2
        assert "--changed-only" in capsys.readouterr().err

    def test_changed_only_on_the_repo_exits_cleanly(self, capsys):
        # Whatever is in flight vs HEAD must satisfy the self-lint gate,
        # so the scoped run agrees with the whole-tree run above.
        assert main(["lint", "--changed-only"]) == 0
        assert "findings" in capsys.readouterr().out

    def test_jobs_flag_smoke(self, capsys):
        assert main(["lint", "--jobs", "2", BAD_FIXTURE]) == 1
        assert "bad_determinism.py" in capsys.readouterr().out


class TestFindingRendering:
    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding(rule="r", severity="fatal", path="p", line=1, message="m")

    def test_json_is_sorted_and_stable(self):
        findings = [
            Finding(rule="b", severity="error", path="z.py", line=9, message="m2"),
            Finding(rule="a", severity="error", path="a.py", line=1, message="m1"),
        ]
        payload = json.loads(format_json(findings))
        assert [f["path"] for f in payload["findings"]] == ["a.py", "z.py"]
