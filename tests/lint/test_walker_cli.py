"""Walker behaviour, the `repro-em lint` CLI, and the self-lint gate."""

import json

import pytest

from repro.cli import main
from repro.lint import DEFAULT_ROOTS, run_lint
from repro.lint.findings import Finding, format_json, format_text

BAD_FIXTURE = "tests/lint/fixtures/bad_determinism.py"
CLEAN_FIXTURE = "tests/lint/fixtures/clean_module.py"


@pytest.fixture(autouse=True)
def in_repo_root(repo_root, monkeypatch):
    monkeypatch.chdir(repo_root)


class TestRunLint:
    def test_bad_fixture_produces_expected_rules(self, repo_root):
        findings = run_lint(repo_root, paths=[BAD_FIXTURE])
        rules = {f.rule for f in findings}
        assert {
            "ambient-clock",
            "unseeded-rng",
            "set-iteration",
            "salted-hash",
            "untyped-except",
        } <= rules
        assert all(f.path.endswith("bad_determinism.py") for f in findings)

    def test_clean_fixture_is_clean(self, repo_root):
        assert run_lint(repo_root, paths=[CLEAN_FIXTURE]) == []

    def test_rule_filter(self, repo_root):
        findings = run_lint(
            repo_root, paths=[BAD_FIXTURE], rules=["salted-hash"]
        )
        assert findings and {f.rule for f in findings} == {"salted-hash"}

    def test_unknown_rule_raises(self, repo_root):
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint(repo_root, paths=[BAD_FIXTURE], rules=["nope"])

    def test_missing_explicit_path_raises(self, repo_root):
        with pytest.raises(FileNotFoundError):
            run_lint(repo_root, paths=["does/not/exist.py"])

    def test_syntax_error_becomes_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n")
        findings = run_lint(tmp_path, paths=[str(broken)])
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_self_lint_whole_tree_is_clean(self, repo_root):
        """Acceptance criterion: zero unsuppressed findings on the tree."""
        findings = run_lint(repo_root, paths=list(DEFAULT_ROOTS))
        assert findings == [], format_text(findings)


class TestCli:
    def test_exit_zero_on_clean_target(self, capsys):
        assert main(["lint", CLEAN_FIXTURE]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_bad_fixture(self, capsys):
        assert main(["lint", BAD_FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "bad_determinism.py" in out

    def test_exit_two_on_unknown_rule(self, capsys):
        assert main(["lint", "--rule", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json", BAD_FIXTURE]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) > 0
        first = payload["findings"][0]
        assert {"rule", "severity", "path", "line", "message", "hint"} <= set(first)

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "prompt-roundtrip" in out

    def test_rule_filter_on_clean_rule(self):
        # the bad fixture has no engine-hygiene fallback violation
        assert main(["lint", "--rule", "fallback-cache", BAD_FIXTURE]) == 0


class TestFindingRendering:
    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding(rule="r", severity="fatal", path="p", line=1, message="m")

    def test_json_is_sorted_and_stable(self):
        findings = [
            Finding(rule="b", severity="error", path="z.py", line=9, message="m2"),
            Finding(rule="a", severity="error", path="a.py", line=1, message="m1"),
        ]
        payload = json.loads(format_json(findings))
        assert [f["path"] for f in payload["findings"]] == ["a.py", "z.py"]
