"""The deep async analyses (asyncflow) over the asyncpkg fixture package."""

import pytest

from repro.lint.asyncflow import LOOP, THREAD
from repro.lint.deep import build_context, run_deep
from repro.lint.findings import SCHEMA_VERSION, format_json

from .conftest import REPO_ROOT

FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


@pytest.fixture(scope="module")
def fixture_run():
    context = build_context(FIXTURES, ("asyncpkg",))
    findings, summary = run_deep(context=context)
    return context, findings, summary


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestContextClassification:
    def test_coroutines_are_loop(self, fixture_run):
        context, _, _ = fixture_run
        flow = context.asyncflow
        assert flow.context["asyncpkg.bad_blocking.slow_sleep"] == LOOP
        assert flow.context["asyncpkg.regression_gateway.MiniGateway.close"] == LOOP

    def test_thread_targets_are_thread(self, fixture_run):
        context, _, _ = fixture_run
        flow = context.asyncflow
        assert flow.context["asyncpkg.bad_race.Shared._worker"] == THREAD
        assert flow.context["asyncpkg.bad_future.Completer._finish"] == THREAD

    def test_cst_callback_is_loop(self, fixture_run):
        context, _, _ = fixture_run
        flow = context.asyncflow
        assert "asyncpkg.good_future.LoopCompleter._publish" in flow.cst_callbacks
        assert flow.context["asyncpkg.good_future.LoopCompleter._publish"] == LOOP

    def test_executor_callable_is_thread(self, fixture_run):
        context, _, _ = fixture_run
        flow = context.asyncflow
        assert "asyncpkg.good_blocking.burn" in flow.thread_roots
        assert flow.context["asyncpkg.good_blocking.burn"] == THREAD


class TestBlockingRule:
    def test_each_primitive_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hits = by_rule(findings, "deep-async-blocking")
        bad = [(f.line, f.message) for f in hits if f.path == "asyncpkg/bad_blocking.py"]
        assert [line for line, _ in bad] == [9, 13, 18, 24, 28]
        reasons = "\n".join(msg for _, msg in bad)
        assert "time.sleep(...)" in reasons
        assert "open(...)" in reasons
        assert "lock.acquire(...)" in reasons
        assert "queue.get(...)" in reasons

    def test_transitive_finding_carries_provenance(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-async-blocking")
            if f.path == "asyncpkg/bad_blocking.py" and f.line == 28
        )
        # The chain walks coroutine -> helper -> helper -> primitive.
        assert "asyncpkg.bad_blocking.crunch" in hit.message
        assert "asyncpkg.bad_blocking.burn" in hit.message
        assert "time.sleep(...) at asyncpkg/bad_blocking.py:36" in hit.message

    def test_good_module_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(f.path == "asyncpkg/good_blocking.py" for f in findings)


class TestFutureRule:
    def test_off_loop_completion_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-async-future")
            if f.path == "asyncpkg/bad_future.py" and f.line == 18
        )
        assert "set_result" in hit.message
        assert "thread-classified" in hit.message

    def test_discarded_and_never_awaited_coroutines_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hows = {
            f.line: f.message
            for f in by_rule(findings, "deep-async-future")
            if f.path == "asyncpkg/bad_future.py" and f.line != 18
        }
        assert set(hows) == {26, 27}
        assert "discarded" in hows[26]
        assert "never-awaited" in hows[27]

    def test_good_module_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(f.path == "asyncpkg/good_future.py" for f in findings)


class TestRaceRule:
    def test_thread_write_loop_read_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-async-race")
            if f.path == "asyncpkg/bad_race.py"
        )
        assert "Shared.items" in hit.message
        assert "thread context" in hit.message
        assert "loop context" in hit.message

    def test_guarded_and_cst_handoff_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(f.path == "asyncpkg/good_race.py" for f in findings)


class TestRegressionFixture:
    """Shapes distilled from the violations surfaced in repro.serve."""

    def test_async_close_joining_threads_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        assert any(
            f.path == "asyncpkg/regression_gateway.py"
            and f.line == 35
            and "thread.join" in f.message
            for f in by_rule(findings, "deep-async-blocking")
        )

    def test_unguarded_queue_and_closed_flag_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        fields = {
            f.message.split(" is written", 1)[0]
            for f in by_rule(findings, "deep-async-race")
            if f.path == "asyncpkg/regression_gateway.py"
        }
        assert fields == {"MiniGateway._queue", "MiniGateway._closed"}


class TestRunSummary:
    def test_exact_finding_set(self, fixture_run):
        """The fixture package's full expected output, pinned."""
        _, findings, _ = fixture_run
        got = sorted((f.rule, f.path, f.line) for f in findings)
        assert got == [
            ("deep-async-blocking", "asyncpkg/bad_blocking.py", 9),
            ("deep-async-blocking", "asyncpkg/bad_blocking.py", 13),
            ("deep-async-blocking", "asyncpkg/bad_blocking.py", 18),
            ("deep-async-blocking", "asyncpkg/bad_blocking.py", 24),
            ("deep-async-blocking", "asyncpkg/bad_blocking.py", 28),
            ("deep-async-blocking", "asyncpkg/regression_gateway.py", 35),
            ("deep-async-future", "asyncpkg/bad_future.py", 18),
            ("deep-async-future", "asyncpkg/bad_future.py", 26),
            ("deep-async-future", "asyncpkg/bad_future.py", 27),
            ("deep-async-race", "asyncpkg/bad_race.py", 16),
            ("deep-async-race", "asyncpkg/regression_gateway.py", 25),
            ("deep-async-race", "asyncpkg/regression_gateway.py", 33),
        ]

    def test_async_summary_accounting(self, fixture_run):
        _, _, summary = fixture_run
        flow = summary["async"]
        assert flow["resolution_rate"] == 1.0
        assert flow["coroutines"] == 16
        assert flow["thread_roots"] == 6
        assert flow["cst_callbacks"] == 2
        assert flow["executor_hops"] == 1

    def test_timings_gated_behind_flag(self):
        _, with_timings = run_deep(FIXTURES, ("asyncpkg",), timings=True)
        assert set(with_timings["timings"]) == {
            "symbols", "callgraph", "taint", "exceptions", "locks",
            "asyncflow", "resources",
        }
        _, plain = run_deep(FIXTURES, ("asyncpkg",))
        assert "timings" not in plain

    def test_schema_version_bumped_for_async_summary(self):
        import json

        payload = json.loads(format_json([], summary={"async": {}}))
        assert payload["schema_version"] == SCHEMA_VERSION == 3


class TestRealTree:
    def test_real_tree_clean_with_async_floor(self):
        """ISSUE acceptance: async analyses pass on src/repro itself, with
        await/call-site classification at or above the 0.90 floor."""
        findings, summary = run_deep(REPO_ROOT)
        assert findings == []
        flow = summary["async"]
        assert flow["resolution_rate"] >= 0.90
        assert flow["coroutines"] >= 10
        assert flow["contexts"]["thread"] >= 1
        assert flow["cst_callbacks"] >= 2
        assert flow["executor_hops"] >= 1

    def test_deep_json_byte_identical_across_runs(self):
        first = run_deep(REPO_ROOT)
        second = run_deep(REPO_ROOT)
        assert format_json(first[0], summary=first[1]) == format_json(
            second[0], summary=second[1]
        )

    def test_async_def_header_suppression_reaches_body(self, tmp_path):
        pkg = tmp_path / "tpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            "import time\n"
            "\n"
            "\n"
            "async def pump():  # repro-lint: disable=deep-async-blocking — t\n"
            "    time.sleep(0.1)\n"
        )
        findings, _ = run_deep(tmp_path, ("tpkg",))
        assert findings == []
