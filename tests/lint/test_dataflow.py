"""Inter-procedural taint and exception-escape analyses."""

import ast

from repro.lint.callgraph import build_call_graph
from repro.lint.dataflow import DYNAMIC_RAISE, ExceptionAnalysis, TaintAnalysis
from repro.lint.symbols import SymbolTable


def analyses_for(sources: dict):
    table = SymbolTable.from_sources(sources)
    graph = build_call_graph(table)
    return table, TaintAnalysis(table, graph), ExceptionAnalysis(table, graph)


def return_sources(taint: TaintAnalysis, qualname: str):
    return list(taint.summaries[qualname].return_sources.values())


class TestTaintSources:
    def test_direct_rng_return_is_tainted(self):
        _, taint, _ = analyses_for(
            {"pkg.mod": "import random\ndef roll():\n    return random.random()\n"}
        )
        labels = return_sources(taint, "pkg.mod.roll")
        assert len(labels) == 1
        assert "random.random()" in labels[0].detail

    def test_seeded_local_rng_is_not_a_source(self):
        _, taint, _ = analyses_for(
            {
                "pkg.mod": (
                    "import random\n"
                    "def draw(seed):\n"
                    "    rng = random.Random(seed)\n"
                    "    return rng.random()\n"
                )
            }
        )
        assert return_sources(taint, "pkg.mod.draw") == []

    def test_clock_and_environ_sources(self):
        _, taint, _ = analyses_for(
            {
                "pkg.mod": (
                    "import os\n"
                    "import time\n"
                    "def when():\n"
                    "    return time.time()\n"
                    "def who():\n"
                    "    return os.environ.get('USER')\n"
                )
            }
        )
        assert "time.time()" in return_sources(taint, "pkg.mod.when")[0].detail
        assert return_sources(taint, "pkg.mod.who")


class TestTaintPropagation:
    TWO_HOP = {
        "pkg.util": (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
            "def stamp(value):\n"
            "    return f'{value}@{now()}'\n"
        ),
        "pkg.app": (
            "from pkg.util import stamp\n"
            "def describe(key):\n"
            "    return stamp(key)\n"
        ),
    }

    def test_two_hop_taint_reaches_caller_return(self):
        _, taint, _ = analyses_for(self.TWO_HOP)
        labels = return_sources(taint, "pkg.app.describe")
        assert len(labels) == 1
        label = labels[0]
        assert "time.time()" in label.detail
        # Provenance records the full two-hop chain to the original source.
        assert label.via == ("pkg.util.now", "pkg.util.stamp")
        assert "pkg/util.py:3" in label.origin

    def test_param_to_return_does_not_taint_clean_args(self):
        _, taint, _ = analyses_for(
            {
                "pkg.mod": (
                    "def identity(x):\n"
                    "    return x\n"
                    "def clean(key):\n"
                    "    return identity(key)\n"
                )
            }
        )
        assert return_sources(taint, "pkg.mod.clean") == []
        summary = taint.summaries["pkg.mod.identity"]
        assert summary.param_to_return == {0}

    def test_labels_of_resolves_expression_taint(self):
        _, taint, _ = analyses_for(self.TWO_HOP)
        fn_node = taint.table.functions["pkg.app.describe"].node
        ret = fn_node.body[0]
        assert isinstance(ret, ast.Return)
        labels = list(taint.labels_of("pkg.app.describe", ret.value).values())
        assert labels and "time.time()" in labels[0].detail


class TestExceptionEscapes:
    def test_direct_raise_escapes(self):
        _, _, escapes = analyses_for(
            {"pkg.mod": "def boom():\n    raise ValueError('x')\n"}
        )
        assert set(escapes.escapes_of("pkg.mod.boom")) == {"ValueError"}

    def test_caught_exception_does_not_escape(self):
        _, _, escapes = analyses_for(
            {
                "pkg.mod": (
                    "def safe():\n"
                    "    try:\n"
                    "        raise ValueError('x')\n"
                    "    except ValueError:\n"
                    "        return None\n"
                )
            }
        )
        assert escapes.escapes_of("pkg.mod.safe") == {}

    def test_handler_subclass_filtering_uses_hierarchy(self):
        _, _, escapes = analyses_for(
            {
                "pkg.mod": (
                    "def partial():\n"
                    "    try:\n"
                    "        raise KeyError('x')\n"
                    "    except LookupError:\n"
                    "        return None\n"
                )
            }
        )
        # KeyError is a LookupError, so the handler catches it.
        assert escapes.escapes_of("pkg.mod.partial") == {}

    def test_escape_propagates_through_call_chain(self):
        _, _, escapes = analyses_for(
            {
                "pkg.mod": (
                    "def inner():\n"
                    "    raise TimeoutError('late')\n"
                    "def outer():\n"
                    "    return inner()\n"
                )
            }
        )
        assert set(escapes.escapes_of("pkg.mod.outer")) == {"TimeoutError"}

    def test_bare_raise_reraises_swallowed_types(self):
        _, _, escapes = analyses_for(
            {
                "pkg.mod": (
                    "def rethrow():\n"
                    "    try:\n"
                    "        raise ValueError('x')\n"
                    "    except ValueError:\n"
                    "        raise\n"
                )
            }
        )
        assert set(escapes.escapes_of("pkg.mod.rethrow")) == {"ValueError"}

    def test_dict_subscript_implies_keyerror(self):
        _, _, escapes = analyses_for(
            {
                "pkg.mod": (
                    "def pick(key):\n"
                    "    table = {'a': 1}\n"
                    "    return table[key]\n"
                )
            }
        )
        assert "KeyError" in escapes.escapes_of("pkg.mod.pick")

    def test_project_exception_hierarchy(self):
        _, _, escapes = analyses_for(
            {
                "pkg.mod": (
                    "class BackendError(RuntimeError):\n"
                    "    pass\n"
                    "def wrapped():\n"
                    "    try:\n"
                    "        raise BackendError('x')\n"
                    "    except RuntimeError:\n"
                    "        return None\n"
                )
            }
        )
        assert escapes.escapes_of("pkg.mod.wrapped") == {}
        assert escapes.is_subclass("BackendError", "RuntimeError")
        assert not escapes.is_subclass("BackendError", "ValueError")

    def test_unknown_name_raise_is_dynamic(self):
        _, _, escapes = analyses_for(
            {
                "pkg.mod": (
                    "def relay(err):\n"
                    "    raise err\n"
                )
            }
        )
        assert DYNAMIC_RAISE in escapes.escapes_of("pkg.mod.relay")
