"""Regression fixtures: the two PR 1 bug classes must each trip a rule.

PR 1 shipped (and later fixed, while chasing engine/sequential
disagreement) two latent bugs:

* a hedge template containing "...the same entity...", which
  ``parse_yes_no`` happily classified as "yes" — the hedge silently
  counted as an affirmative answer;
* ``_ENTITY_RE`` swallowing trailing whitespace of the captured entity
  descriptions, so the chat path keyed behaviour on different strings
  than the vectorized path.

These tests pin each bug's *pre-fix form* and assert the corresponding
lint rule catches it mechanically.
"""

import re

from repro.lint.rules_contracts import ADVERSARIAL_PAIRS, roundtrip_failure
from repro.prompts.templates import DEFAULT_PROMPT

from tests.lint.conftest import run_rule


class TestHedgeMarkerBug:
    #: the PR 1 hedge wording: hedged (unparseable) by intent, yet it
    #: contains the affirmative marker "the same entity".
    PRE_FIX_HEDGE = (
        "The descriptions are ambiguous — they could plausibly denote "
        "the same entity or two closely related variants."
    )

    def test_pre_fix_hedge_trips_marker_rule(self):
        findings = run_rule(
            "marker-safety",
            f"_HEDGES = ({self.PRE_FIX_HEDGE!r},)\n",
            relpath="src/repro/llm/decoding.py",
        )
        assert len(findings) == 1
        assert "'yes'" in findings[0].message

    def test_current_hedges_are_clean(self):
        import repro.llm.decoding as decoding
        from repro.llm.parsing import parse_yes_no

        for hedge in decoding._HEDGES:
            assert parse_yes_no(hedge) is None, hedge


class TestEntityWhitespaceBug:
    #: the PR 1 extractor: ``\s*`` before the separator and anchor strips
    #: trailing whitespace off both captured descriptions.
    PRE_FIX_RE = re.compile(
        r"Entity 1: ?(?P<left>.*?)\s*\nEntity 2: ?(?P<right>.*?)\s*$",
        re.DOTALL,
    )

    def lossy_extract(self, prompt):
        match = self.PRE_FIX_RE.search(prompt)
        assert match is not None
        return match.group("left"), match.group("right")

    def test_pre_fix_extractor_fails_roundtrip_contract(self):
        failures = [
            (left, right)
            for left, right in ADVERSARIAL_PAIRS
            if roundtrip_failure(
                DEFAULT_PROMPT.render, self.lossy_extract, left, right
            )
        ]
        assert ("trailing space ", "plain") in failures
        assert ("plain", "trailing space ") in failures

    def test_current_extractor_passes_all_adversarial_pairs(self):
        from repro.prompts.builder import extract_entities

        for left, right in ADVERSARIAL_PAIRS:
            failure = roundtrip_failure(
                DEFAULT_PROMPT.render, extract_entities, left, right
            )
            assert failure is None, f"{(left, right)}: {failure}"
