"""Shared helpers for the lint test suite."""

import textwrap
from pathlib import Path

import pytest

from repro.lint.registry import RULES, FileContext
from repro.lint.suppress import SuppressionIndex

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_rule(rule_id: str, source: str, relpath: str = "src/repro/example.py"):
    """Compile *source* (dedented) and run one file-scoped rule over it,
    honouring suppression comments — the same path the walker takes."""
    rule = RULES[rule_id]
    assert rule.scope == "file", f"{rule_id} is not file-scoped"
    source = textwrap.dedent(source)
    ctx = FileContext.from_source(source, relpath)
    index = SuppressionIndex.from_source(source, ctx.tree)
    return [
        finding
        for finding in rule.check(ctx)
        if not index.is_suppressed(finding.rule, finding.line)
    ]


@pytest.fixture()
def repo_root():
    return REPO_ROOT
