"""Suppression-comment semantics."""

import textwrap

import pytest

from repro.lint.suppress import SuppressionIndex

from tests.lint.conftest import run_rule


def index_of(source: str) -> SuppressionIndex:
    return SuppressionIndex.from_source(textwrap.dedent(source))


class TestSameLine:
    def test_suppresses_named_rule_on_that_line(self):
        findings = run_rule(
            "ambient-clock",
            "import time\n"
            "t = time.time()  # repro-lint: disable=ambient-clock — display only\n",
        )
        assert findings == []

    def test_other_lines_unaffected(self):
        findings = run_rule(
            "ambient-clock",
            "import time\n"
            "a = time.time()  # repro-lint: disable=ambient-clock — display only\n"
            "b = time.time()\n",
        )
        assert [f.line for f in findings] == [3]

    def test_wrong_rule_name_does_not_suppress(self):
        findings = run_rule(
            "ambient-clock",
            "import time\nt = time.time()  # repro-lint: disable=unseeded-rng\n",
        )
        assert len(findings) == 1

    def test_disable_all(self):
        findings = run_rule(
            "ambient-clock",
            "import time\nt = time.time()  # repro-lint: disable=all\n",
        )
        assert findings == []

    def test_comma_separated_rules(self):
        source = (
            "import time, random\n"
            "t = time.time() + random.random()"
            "  # repro-lint: disable=ambient-clock,unseeded-rng\n"
        )
        assert run_rule("ambient-clock", source) == []
        assert run_rule("unseeded-rng", source) == []


class TestBlock:
    def test_standalone_comment_covers_next_statement(self):
        findings = run_rule(
            "set-iteration",
            """
            # repro-lint: disable=set-iteration — order-insensitive aggregation
            for token in set(tokens):
                counts[token] += 1
            """,
        )
        assert findings == []

    def test_covers_whole_multiline_statement(self):
        findings = run_rule(
            "set-iteration",
            """
            # repro-lint: disable=set-iteration — order-insensitive aggregation
            for record in records:
                for token in set(tokens):
                    counts[token] += 1
            """,
        )
        assert findings == []

    def test_covers_except_handler(self):
        # ExceptHandler is not an ast.stmt; the directive above an
        # `except` line must still cover it.
        findings = run_rule(
            "broad-except",
            """
            try:
                work()
            # repro-lint: disable=broad-except — translation boundary
            except Exception:
                pass
            """,
            relpath="src/repro/engine/example.py",
        )
        assert findings == []

    def test_does_not_leak_past_the_statement(self):
        findings = run_rule(
            "set-iteration",
            """
            # repro-lint: disable=set-iteration — justified here
            for token in set(tokens):
                counts[token] += 1
            for token in set(tokens):
                emit(token)
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 5


class TestAsyncHeaders:
    """A same-line directive on an ``async`` block header covers its span,
    mirroring the standalone-comment treatment of ``except`` blocks."""

    TABLE = [
        (
            "async_def_header_covers_body",
            "import time\n"
            "\n"
            "\n"
            "async def handler():  # repro-lint: disable=ambient-clock — t\n"
            "    return time.time()\n",
            [],
        ),
        (
            "async_with_header_covers_block_only",
            "import time\n"
            "\n"
            "\n"
            "async def handler(cm):\n"
            "    async with cm:  # repro-lint: disable=ambient-clock — scoped\n"
            "        t = time.time()\n"
            "    return time.time()\n",
            [7],
        ),
        (
            "async_for_header_covers_block",
            "import time\n"
            "\n"
            "\n"
            "async def handler(items, out):\n"
            "    async for item in items:  # repro-lint: disable=ambient-clock — t\n"
            "        out.append((item, time.time()))\n",
            [],
        ),
        (
            "directive_does_not_leak_past_span",
            "import time\n"
            "\n"
            "\n"
            "async def covered():  # repro-lint: disable=ambient-clock — t\n"
            "    return time.time()\n"
            "\n"
            "\n"
            "async def uncovered():\n"
            "    return time.time()\n",
            [9],
        ),
        (
            "wrong_rule_name_does_not_suppress",
            "import time\n"
            "\n"
            "\n"
            "async def handler():  # repro-lint: disable=unseeded-rng\n"
            "    return time.time()\n",
            [5],
        ),
        (
            "sync_def_header_stays_line_scoped",
            "import time\n"
            "\n"
            "\n"
            "def handler():  # repro-lint: disable=ambient-clock — t\n"
            "    return time.time()\n",
            [5],
        ),
    ]

    @pytest.mark.parametrize(
        "source, expected_lines",
        [case[1:] for case in TABLE],
        ids=[case[0] for case in TABLE],
    )
    def test_table(self, source, expected_lines):
        findings = run_rule("ambient-clock", source)
        assert [f.line for f in findings] == expected_lines


class TestFileWide:
    """``disable-file=<rule>`` suppresses the rule on every line."""

    TABLE = [
        (
            "covers_every_line",
            "# repro-lint: disable-file=ambient-clock — fixture module\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n",
            [],
        ),
        (
            "placement_anywhere_in_file",
            "import time\n"
            "a = time.time()\n"
            "# repro-lint: disable-file=ambient-clock — late but file-wide\n"
            "b = time.time()\n",
            [],
        ),
        (
            "wrong_rule_name_does_not_suppress",
            "# repro-lint: disable-file=unseeded-rng\n"
            "import time\n"
            "a = time.time()\n",
            [3],
        ),
        (
            "comma_separated_rules",
            "# repro-lint: disable-file=ambient-clock,unseeded-rng\n"
            "import time\n"
            "a = time.time()\n",
            [],
        ),
        (
            "disable_file_all",
            "# repro-lint: disable-file=all\n"
            "import time\n"
            "a = time.time()\n",
            [],
        ),
        (
            "plain_disable_stays_line_scoped",
            "# repro-lint: disable=ambient-clock — block form, first stmt only\n"
            "import time\n"
            "a = time.time()\n",
            [3],
        ),
    ]

    @pytest.mark.parametrize(
        "source, expected_lines",
        [case[1:] for case in TABLE],
        ids=[case[0] for case in TABLE],
    )
    def test_table(self, source, expected_lines):
        findings = run_rule("ambient-clock", source)
        assert [f.line for f in findings] == expected_lines

    def test_index_reports_every_line(self):
        index = index_of(
            "# repro-lint: disable-file=ambient-clock\nx = 1\ny = 2\n"
        )
        assert index.is_suppressed("ambient-clock", 1)
        assert index.is_suppressed("ambient-clock", 3)
        assert not index.is_suppressed("unseeded-rng", 3)


class TestParsing:
    def test_non_directive_comments_ignored(self):
        index = index_of("x = 1  # a plain comment\n")
        assert not index.is_suppressed("ambient-clock", 1)

    def test_justification_text_after_rule_list_is_allowed(self):
        index = index_of(
            "x = 1  # repro-lint: disable=ambient-clock — why: display only\n"
        )
        assert index.is_suppressed("ambient-clock", 1)
        assert not index.is_suppressed("unseeded-rng", 1)
