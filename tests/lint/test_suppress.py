"""Suppression-comment semantics."""

import textwrap

from repro.lint.suppress import SuppressionIndex

from tests.lint.conftest import run_rule


def index_of(source: str) -> SuppressionIndex:
    return SuppressionIndex.from_source(textwrap.dedent(source))


class TestSameLine:
    def test_suppresses_named_rule_on_that_line(self):
        findings = run_rule(
            "ambient-clock",
            "import time\n"
            "t = time.time()  # repro-lint: disable=ambient-clock — display only\n",
        )
        assert findings == []

    def test_other_lines_unaffected(self):
        findings = run_rule(
            "ambient-clock",
            "import time\n"
            "a = time.time()  # repro-lint: disable=ambient-clock — display only\n"
            "b = time.time()\n",
        )
        assert [f.line for f in findings] == [3]

    def test_wrong_rule_name_does_not_suppress(self):
        findings = run_rule(
            "ambient-clock",
            "import time\nt = time.time()  # repro-lint: disable=unseeded-rng\n",
        )
        assert len(findings) == 1

    def test_disable_all(self):
        findings = run_rule(
            "ambient-clock",
            "import time\nt = time.time()  # repro-lint: disable=all\n",
        )
        assert findings == []

    def test_comma_separated_rules(self):
        source = (
            "import time, random\n"
            "t = time.time() + random.random()"
            "  # repro-lint: disable=ambient-clock,unseeded-rng\n"
        )
        assert run_rule("ambient-clock", source) == []
        assert run_rule("unseeded-rng", source) == []


class TestBlock:
    def test_standalone_comment_covers_next_statement(self):
        findings = run_rule(
            "set-iteration",
            """
            # repro-lint: disable=set-iteration — order-insensitive aggregation
            for token in set(tokens):
                counts[token] += 1
            """,
        )
        assert findings == []

    def test_covers_whole_multiline_statement(self):
        findings = run_rule(
            "set-iteration",
            """
            # repro-lint: disable=set-iteration — order-insensitive aggregation
            for record in records:
                for token in set(tokens):
                    counts[token] += 1
            """,
        )
        assert findings == []

    def test_covers_except_handler(self):
        # ExceptHandler is not an ast.stmt; the directive above an
        # `except` line must still cover it.
        findings = run_rule(
            "broad-except",
            """
            try:
                work()
            # repro-lint: disable=broad-except — translation boundary
            except Exception:
                pass
            """,
            relpath="src/repro/engine/example.py",
        )
        assert findings == []

    def test_does_not_leak_past_the_statement(self):
        findings = run_rule(
            "set-iteration",
            """
            # repro-lint: disable=set-iteration — justified here
            for token in set(tokens):
                counts[token] += 1
            for token in set(tokens):
                emit(token)
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 5


class TestParsing:
    def test_non_directive_comments_ignored(self):
        index = index_of("x = 1  # a plain comment\n")
        assert not index.is_suppressed("ambient-clock", 1)

    def test_justification_text_after_rule_list_is_allowed(self):
        index = index_of(
            "x = 1  # repro-lint: disable=ambient-clock — why: display only\n"
        )
        assert index.is_suppressed("ambient-clock", 1)
        assert not index.is_suppressed("unseeded-rng", 1)
