"""Future discipline kept: loop-routed completion, tracked coroutines."""  # repro-lint: disable-file=deep-resource-leak — scaffolding thread

import asyncio
import threading


class LoopCompleter:
    """Thread-side completion routed through the owning event loop."""

    def __init__(self) -> None:
        self.thread = None

    def start(self, loop, fut: "asyncio.Future") -> None:
        self.thread = threading.Thread(target=self._finish, args=(loop, fut))
        self.thread.start()

    def _finish(self, loop, fut: "asyncio.Future") -> None:
        loop.call_soon_threadsafe(self._publish, fut)

    @staticmethod
    def _publish(fut: "asyncio.Future") -> None:
        if not fut.done():
            fut.set_result(42)


async def work() -> int:
    return 1


async def awaited_work() -> int:
    value = await work()
    task = asyncio.ensure_future(work())
    return value + await task
