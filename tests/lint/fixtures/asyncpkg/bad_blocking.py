"""Coroutines that block the event loop, one primitive per function."""

import queue
import threading
import time


async def slow_sleep() -> None:
    time.sleep(0.1)


async def slow_io(path) -> str:
    with open(path) as fh:
        return fh.read()


async def slow_lock(lock: threading.Lock) -> None:
    lock.acquire()
    lock.release()


async def slow_queue() -> object:
    inbox = queue.Queue()
    return inbox.get()


async def slow_transitively() -> int:
    return crunch()


def crunch() -> int:
    return burn()


def burn() -> int:
    time.sleep(0.5)
    return 1
