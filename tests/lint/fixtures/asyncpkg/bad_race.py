"""A field mutated by a worker thread and read by a coroutine, unguarded."""  # repro-lint: disable-file=deep-resource-leak — scaffolding thread

import threading


class Shared:
    def __init__(self) -> None:
        self.items = []
        self.thread = None

    def start(self) -> None:
        self.thread = threading.Thread(target=self._worker)
        self.thread.start()

    def _worker(self) -> None:
        self.items.append(1)

    async def drain(self) -> list:
        return list(self.items)
