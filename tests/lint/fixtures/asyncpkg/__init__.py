"""Fixture package for the deep async analyses (asyncflow).

``bad_*`` modules each violate exactly one async rule;  the matching
``good_*`` module does the same job the sanctioned way and must produce
zero findings.  ``regression_gateway.py`` is distilled from the real
violations the analyzer surfaced in ``repro.serve`` when the rules first
ran.
"""
