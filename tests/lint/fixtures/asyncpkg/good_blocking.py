"""The same jobs as bad_blocking, done without stalling the loop."""

import asyncio
import time


async def polite_sleep() -> None:
    await asyncio.sleep(0.1)


async def hopped_crunch(loop) -> int:
    # The CPU burn runs on an executor thread; the coroutine suspends.
    return await loop.run_in_executor(None, burn)


def burn() -> int:
    time.sleep(0.5)
    return 1
