"""Future discipline broken both ways: off-loop completion, dead coroutines."""  # repro-lint: disable-file=deep-resource-leak — scaffolding thread

import asyncio
import threading


class Completer:
    """Resolves a loop-owned future directly from its worker thread."""

    def __init__(self) -> None:
        self.thread = None

    def start(self, fut: "asyncio.Future") -> None:
        self.thread = threading.Thread(target=self._finish, args=(fut,))
        self.thread.start()

    def _finish(self, fut: "asyncio.Future") -> None:
        fut.set_result(42)


async def work() -> int:
    return 1


async def fire_and_forget() -> int:
    work()
    pending = work()
    return 0
