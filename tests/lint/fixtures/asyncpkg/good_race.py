"""The same sharing shape, ordered both sanctioned ways."""  # repro-lint: disable-file=deep-resource-leak — scaffolding thread

import threading
from typing import Annotated

from asyncpkg.concurrency import guarded_by


class GuardedShared:
    """Declared guard: every access holds the lock (deep-lock-field checks)."""

    items: Annotated[list, guarded_by("_lock")]

    def __init__(self) -> None:
        self.items = []
        self._lock = threading.Lock()
        self.thread = None

    def start(self) -> None:
        self.thread = threading.Thread(target=self._worker)
        self.thread.start()

    def _worker(self) -> None:
        with self._lock:
            self.items.append(1)

    async def drain(self) -> list:
        with self._lock:
            return list(self.items)


class Handoff:
    """call_soon_threadsafe hand-off: the edge is the happens-before."""

    def __init__(self) -> None:
        self.result = None

    def publish_from_thread(self, loop, value) -> None:
        loop.call_soon_threadsafe(self._publish, value)

    def _publish(self, value) -> None:
        self.result = value

    async def read(self):
        return self.result
