"""Regression: the exact shapes the analyzer surfaced in repro.serve.

When the async rules first ran over the real tree they flagged the
gateway's ``async close()`` joining its dispatch threads on the event
loop, and the queue/closed flag shared between the loop (submission) and
the workers (dequeue) with no declared guard.  This module preserves
those shapes in miniature so the rules keep catching them.
"""

import threading


class MiniGateway:
    def __init__(self) -> None:
        self._queue = []
        self._closed = False
        self._threads = []

    def start(self) -> None:
        thread = threading.Thread(target=self._worker_loop)
        thread.start()
        self._threads.append(thread)

    async def submit(self, item) -> None:
        self._queue.append(item)

    def _worker_loop(self) -> None:
        while not self._closed:
            if self._queue:
                self._queue.pop()

    async def close(self) -> None:
        self._closed = True
        for thread in self._threads:
            thread.join()
