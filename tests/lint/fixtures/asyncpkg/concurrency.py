"""guarded_by marker, mirroring repro.concurrency for the fixture tree."""


class GuardedBy:
    def __init__(self, lock_attr: str) -> None:
        self.lock_attr = lock_attr


def guarded_by(lock_attr: str) -> GuardedBy:
    return GuardedBy(lock_attr)
