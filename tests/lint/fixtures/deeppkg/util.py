"""Helpers: one launders wall-clock time through two hops, one is clean."""

import time


def _now() -> float:
    return time.time()


def stamp(value: str) -> str:
    """Laundering hop: the wall-clock read is one call away."""
    return f"{value}@{_now()}"


def clean_tag(value: str, seed: int) -> str:
    """Deterministic: derived only from the arguments."""
    return f"{value}#{seed}"
