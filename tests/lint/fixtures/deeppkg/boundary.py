"""The fixture package's backend boundary: protocol + typed error."""

from typing import Protocol


class BackendError(RuntimeError):
    pass


class Backend(Protocol):
    name: str

    def generate(self, prompts: list) -> list:
        ...
