"""GOOD: every guarded access holds the lock, blocking happens outside
locks, and both cross-class paths acquire locks in the same order."""

import threading
import time
from typing import Annotated

from deeppkg.concurrency import guarded_by


class Left:
    counter: Annotated[int, guarded_by("_lock")]

    def __init__(self, peer: "Right") -> None:
        self._lock = threading.RLock()
        self.peer: "Right" = peer
        self.counter = 0

    def peek(self) -> int:
        with self._lock:
            return self.counter

    def slow_bump(self) -> None:
        time.sleep(0.01)  # blocking before the lock, not under it
        with self._lock:
            self.counter += 1

    def tick(self) -> None:
        with self._lock:
            with self.peer._lock:  # Left._lock -> Right._lock everywhere
                self.counter += 1


class Queue:
    items: Annotated[list, guarded_by("_cv")]

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self.items: list = []

    def take(self):
        with self._cv:
            while not self.items:
                # waiting on the held condition releases it for the
                # whole wait — the canonical consumer idiom, not
                # blocking-under-lock
                self._cv.wait()
            return self.items.pop(0)


class Right:
    total: Annotated[int, guarded_by("_lock")]

    def __init__(self, peer: Left) -> None:
        self._lock = threading.RLock()
        self.peer: Left = peer
        self.total = 0

    def tock(self) -> None:
        with self.peer._lock:  # same global order: Left then Right
            with self._lock:
                self.total += 1
