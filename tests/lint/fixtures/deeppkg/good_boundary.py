"""GOOD: every failure crosses Backend.generate as a BackendError."""

from deeppkg.boundary import BackendError


class CheckedBackend:
    name: str = "checked"

    def generate(self, prompts: list) -> list:
        try:
            by_id = {f"req-{i}": p for i, p in enumerate(prompts)}
            out = []
            for i in range(len(prompts)):
                item = by_id.get(f"req-{i}")
                if item is None:
                    raise BackendError(f"missing req-{i}")
                out.append(item)
            return out
        except BackendError:
            raise
        except Exception as exc:
            raise BackendError(f"{self.name}: {exc}") from exc
