"""BAD: nondeterministic values reach the cache through helper hops."""

import random

from deeppkg.cache import ResultCache
from deeppkg.util import stamp


class Answering:
    def __init__(self) -> None:
        self.cache = ResultCache()

    def answer(self, key: str) -> None:
        salted = stamp(key)  # wall-clock read two hops away
        self.cache.put(key, salted)

    def roll(self, key: str) -> None:
        draw = random.random()  # unseeded global RNG, cached directly
        self.cache.put(key, str(draw))
