"""BAD: guarded access without the lock, blocking under a lock, and a
lock-ordering cycle between two classes."""

import threading
import time
from typing import Annotated

from deeppkg.concurrency import guarded_by


class Left:
    counter: Annotated[int, guarded_by("_lock")]

    def __init__(self, peer: "Right") -> None:
        self._lock = threading.RLock()
        self.peer: "Right" = peer
        self.counter = 0

    def peek(self) -> int:
        return self.counter  # guarded field read without the lock

    def slow_bump(self) -> None:
        with self._lock:
            time.sleep(0.01)  # blocking while holding _lock
            self.counter += 1

    def tick(self) -> None:
        with self._lock:
            with self.peer._lock:  # Left._lock -> Right._lock
                self.counter += 1


class Right:
    total: Annotated[int, guarded_by("_lock")]

    def __init__(self, peer: Left) -> None:
        self._lock = threading.RLock()
        self.peer: Left = peer
        self.total = 0

    def tock(self) -> None:
        with self._lock:
            with self.peer._lock:  # Right._lock -> Left._lock: cycle
                self.total += 1
