"""Fixture package for the deep (whole-program) lint rules.

``bad_*`` modules each contain exactly the violations their test expects;
``good_*`` modules do the same job correctly and must stay finding-free.
This package is parsed by the analyzer in tests — never imported.
"""
