"""GOOD: only argument-derived values reach the cache."""

from deeppkg.cache import ResultCache
from deeppkg.util import clean_tag


class Answering:
    def __init__(self) -> None:
        self.cache = ResultCache()

    def answer(self, key: str, seed: int) -> None:
        tagged = clean_tag(key, seed)
        self.cache.put(key, tagged)
