"""Fixture copy of the guarded_by convention (matched by name)."""


def guarded_by(lock_attr: str) -> str:
    return lock_attr
