"""BAD: untyped exceptions escape the Backend.generate boundary."""


class ReorderingBackend:
    """Re-orders responses by id with a bare dict subscript (KeyError)
    and parses through a helper that raises ValueError — both leak."""

    name: str = "reordering"

    def generate(self, prompts: list) -> list:
        by_id = {f"req-{i}": p for i, p in enumerate(prompts)}
        return [self._parse(by_id[f"req-{i}"]) for i in range(len(prompts))]

    def _parse(self, text: str) -> str:
        if not text:
            raise ValueError("empty response")
        return text
