"""Simulation module: results must be deterministic (``.llm`` sink)."""

import random


def bad_sample(prompt: str) -> float:
    noisy = random.random()  # unseeded draw returned from a .llm module
    return noisy


def good_sample(prompt: str, seed: int) -> int:
    rng = random.Random(seed)  # locally seeded: replayable
    return rng.randint(0, 10)
