"""A minimal guarded cache the taint and lock fixtures share."""

import threading
from typing import Annotated

from deeppkg.concurrency import guarded_by


class ResultCache:
    _entries: Annotated[dict, guarded_by("_lock")]

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries = {}

    def put(self, key: str, value: str) -> None:
        with self._lock:
            self._entries[key] = value

    def get(self, key: str) -> str | None:
        with self._lock:
            return self._entries.get(key)
