"""Known-good lint fixture: the same shape as the bad one, kept clean."""

import time

import numpy as np


def stable_pipeline(tokens, seed=7):
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    tokens = list(tokens)
    rng.shuffle(tokens)
    order = sorted(set(tokens))
    try:
        key = len(order)
    except TypeError:
        key = 0
    return key, time.perf_counter() - started
