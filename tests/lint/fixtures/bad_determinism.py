"""Known-bad lint fixture: deliberately violates several invariants.

Never imported — ``repro-em lint`` must exit non-zero on this file.
Kept out of the default lint roots (tests/ is not linted).
"""

import random
import time


def unstable_pipeline(tokens):
    started = time.time()
    random.shuffle(tokens)
    order = [t for t in set(tokens)]
    try:
        key = hash(tuple(order))
    except:
        key = 0
    return key, time.time() - started
