"""Teardown that matches its shutdown_order declaration exactly."""

import threading

from respkg.concurrency import shutdown_order


class OrderedService:
    """Wake the condition first, then join, then drop the references —
    precisely the declared sequence."""

    __shutdown_order__ = shutdown_order("_cv", "_threads")

    def __init__(self):
        self._cv = threading.Condition()
        self._threads = []

    def start(self):
        worker = threading.Thread(target=self._run)
        worker.start()
        self._threads.append(worker)

    def _run(self):
        with self._cv:
            self._cv.wait_for(lambda: True)

    def close(self):
        with self._cv:
            self._cv.notify_all()
        for worker in self._threads:
            worker.join()
        self._threads.clear()
