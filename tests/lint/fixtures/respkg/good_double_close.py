"""Repeated releases that are declared (or inherently) idempotent."""

from respkg.concurrency import idempotent


class IdempotentPipe:
    """close() checks its own flag, and says so with @idempotent."""

    def __init__(self, path):
        self._handle = open(path)
        self._closed = False

    def write(self, line):
        self._handle.write(line)

    @idempotent
    def close(self):
        if not self._closed:
            self._handle.close()
            self._closed = True


def close_twice_idempotently(path):
    pipe = IdempotentPipe(path)
    pipe.write("x")
    pipe.close()
    pipe.close()


def builtin_releases_are_idempotent(path):
    """file.close() is idempotent by contract — no annotation needed."""
    handle = open(path)
    handle.write("x")
    handle.close()
    handle.close()
