"""The same jobs as bad_leak, with every path covered."""

import threading


def managed_by_with(path):
    """`with` releases on all paths by construction."""
    with open(path) as handle:
        return handle.read()


def released_in_finally(path):
    """Explicit handle, but the finally covers return and raise alike."""
    handle = open(path)
    try:
        if not path:
            raise ValueError("empty path")
        return handle.read()
    finally:
        handle.close()


def make_handle(path):
    """A factory: ownership transfers to the caller via return."""
    return open(path)


def caller_closes(path):
    """The factory's resource, released where it is consumed."""
    handle = make_handle(path)
    try:
        return handle.read()
    finally:
        handle.close()


def joined_thread(records):
    """Spawn, then wait: the thread is released by join."""
    worker = threading.Thread(target=records.sort)
    worker.start()
    worker.join()
    return len(records)


class OwnedHandleHolder:
    """Stores the handle on self — and close() tears it down."""

    def __init__(self, path):
        self._handle = open(path)

    def read(self):
        return self._handle.read()

    def close(self):
        self._handle.close()
