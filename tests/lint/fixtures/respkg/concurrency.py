"""shutdown_order / idempotent markers, mirroring repro.concurrency."""


class ShutdownOrder:
    def __init__(self, attrs: tuple) -> None:
        self.attrs = attrs


def shutdown_order(*attrs: str) -> ShutdownOrder:
    return ShutdownOrder(tuple(attrs))


def idempotent(fn):
    return fn
