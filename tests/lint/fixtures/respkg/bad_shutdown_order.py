"""Teardown sequences that contradict their shutdown_order declaration."""

import threading

from respkg.concurrency import shutdown_order


class JoinBeforeWake:
    """Declares wake-then-join but joins first — the workers never see
    the wake and the join deadlocks."""

    __shutdown_order__ = shutdown_order("_cv", "_threads")

    def __init__(self):
        self._cv = threading.Condition()
        self._threads = []

    def close(self):
        for worker in self._threads:
            worker.join()
        with self._cv:
            self._cv.notify_all()


class ForgetsDeclaredAttr:
    """Declares `_handle` in the order but never releases it."""

    __shutdown_order__ = shutdown_order("_cv", "_handle")

    def __init__(self):
        self._cv = threading.Condition()
        self._handle = None

    def close(self):
        with self._cv:
            self._cv.notify_all()


class NamesUnknownAttr:
    """Declares an attribute the class does not even have."""

    __shutdown_order__ = shutdown_order("_missing")

    def __init__(self):
        self._cv = threading.Condition()

    def close(self):
        with self._cv:
            self._cv.notify_all()
