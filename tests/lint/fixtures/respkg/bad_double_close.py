"""One path reaches the same release twice, without idempotence."""


class Pipe:
    """Owns its handle; close() is NOT declared @idempotent."""

    def __init__(self, path):
        self._handle = open(path)

    def write(self, line):
        self._handle.write(line)

    def close(self):
        self._handle.close()


def close_twice(path):
    pipe = Pipe(path)
    pipe.write("x")
    pipe.close()
    pipe.close()
