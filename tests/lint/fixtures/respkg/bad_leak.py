"""Acquisitions that escape every owner — one leak shape per function."""

import threading


def leak_on_return(path):
    """The handle is live when the function hands control back."""
    handle = open(path)
    data = handle.read()
    return data


def leak_on_exception_edge(path):
    """Closed on the happy path only; the raise abandons it."""
    handle = open(path)
    if not path:
        raise ValueError("empty path")
    handle.close()


def leak_by_discard(path):
    """Acquired and immediately dropped — nothing can ever close it."""
    open(path)


def leak_a_thread(records):
    """A non-daemon worker that nobody will ever join."""
    worker = threading.Thread(target=records.sort)
    worker.start()
    return len(records)


class HandleHolder:
    """Stores the handle on self, but no release method covers it."""

    def __init__(self, path):
        self._handle = open(path)

    def read(self):
        return self._handle.read()
