"""Distilled from the real findings the resource rules first surfaced.

Each shape reproduces, minimally, a leak found in the tree when
``deep-resource-leak`` first ran (and since fixed): the resolution
store's journal handle stored with no release method covering it
(``repro.resolve.incremental``), and the kill/resume crash loop
rebinding and abandoning live stores (``repro.faults.harness``).
"""


class MiniJournal:
    """The journal itself is clean: it owns its handle and closes it."""

    def __init__(self, path):
        self._handle = open(path)

    def append(self, line):
        self._handle.write(line)

    def close(self):
        self._handle.close()


class MiniStore:
    """ResolutionStore as it was: journal stored, never released."""

    def __init__(self, path):
        self._journal = MiniJournal(path)

    def ingest(self, line):
        self._journal.append(line)


def crash_retry(paths):
    """kill_resume_roundtrip as it was: each retry rebinds a live store."""
    store = None
    for path in paths:
        store = MiniStore(path)
        store.ingest("x")
    return store
