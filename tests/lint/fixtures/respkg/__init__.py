"""Fixture package for the resource-lifecycle analysis (resources).

``bad_*`` modules each violate exactly one resource rule; the matching
``good_*`` module does the same job the sanctioned way and must produce
zero findings.  ``regression_store.py`` is distilled from the real
leaks the analyzer surfaced in ``repro.resolve`` / ``repro.faults``
when the rules first ran (since fixed there).
"""
