"""Baseline ratchet, CLI --deep flags, and JSON output stability."""

import json

import pytest

from repro.cli import main
from repro.lint.baseline import (
    BASELINE_SCHEMA_VERSION,
    filter_baselined,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import SCHEMA_VERSION, Finding, format_json

F1 = Finding(rule="deep-taint", severity="error", path="a.py", line=3, message="rng cached")
F2 = Finding(rule="deep-lock-field", severity="error", path="b.py", line=7, message="unlocked read")


@pytest.fixture()
def in_repo_root(monkeypatch, repo_root):
    monkeypatch.chdir(repo_root)


class TestBaselineFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = write_baseline([F1, F2], path)
        assert payload["schema_version"] == BASELINE_SCHEMA_VERSION
        assert payload["count"] == 2
        accepted = load_baseline(path)
        assert accepted == {
            ("deep-taint", "a.py", "rng cached"),
            ("deep-lock-field", "b.py", "unlocked read"),
        }

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_filter_drops_accepted_keeps_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([F1], path)
        kept = filter_baselined([F1, F2], load_baseline(path))
        assert kept == [F2]

    def test_fingerprint_ignores_line_numbers(self):
        moved = Finding(
            rule=F1.rule, severity=F1.severity, path=F1.path, line=99, message=F1.message
        )
        assert fingerprint(moved) == fingerprint(F1)

    def test_written_file_is_byte_stable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline([F2, F1], a)
        write_baseline([F1, F2], b)
        assert a.read_bytes() == b.read_bytes()


class TestJsonOutput:
    def test_schema_fields(self):
        payload = json.loads(format_json([F1], summary={"modules": 3}))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["count"] == 1
        assert payload["summary"] == {"modules": 3}
        assert payload["findings"][0]["rule"] == "deep-taint"

    def test_summary_omitted_when_absent(self):
        payload = json.loads(format_json([]))
        assert "summary" not in payload

    def test_byte_identical_across_runs_and_input_order(self):
        first = format_json([F1, F2], summary={"modules": 3})
        second = format_json([F2, F1], summary={"modules": 3})
        assert first.encode() == second.encode()


@pytest.mark.usefixtures("in_repo_root")
class TestCliDeep:
    def test_deep_repo_is_clean_with_summary(self, capsys):
        code = main(["lint", "--deep", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["count"] == 0
        assert payload["summary"]["callgraph"]["resolution_rate"] >= 0.90

    def test_update_baseline_requires_deep(self, capsys):
        assert main(["lint", "--update-baseline"]) == 2
        assert "--deep" in capsys.readouterr().err

    def test_project_rule_requires_deep(self, capsys):
        assert main(["lint", "--rule", "deep-taint"]) == 2
        assert "--deep" in capsys.readouterr().err

    def test_update_baseline_writes_file(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        code = main(
            ["lint", "--deep", "--baseline", str(path), "--update-baseline"]
        )
        assert code == 0
        assert "baseline updated" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == BASELINE_SCHEMA_VERSION
        # src/repro is clean, so the committed ratchet file stays empty.
        assert payload["count"] == 0

    def test_committed_baseline_is_empty(self, repo_root):
        payload = json.loads((repo_root / "lint-baseline.json").read_text())
        assert payload["count"] == 0 and payload["findings"] == []
