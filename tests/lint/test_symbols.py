"""Symbol table: module naming, imports, classes, guarded_by, protocols."""

import ast

from repro.lint.symbols import SymbolTable

from .conftest import REPO_ROOT

FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


def build_fixture_table() -> SymbolTable:
    return SymbolTable.build(FIXTURES, ("deeppkg",))


class TestBuild:
    def test_modules_named_relative_to_package_parent(self):
        table = build_fixture_table()
        assert "deeppkg.cache" in table.modules
        assert "deeppkg.llm.sim" in table.modules
        assert table.packages == {"deeppkg"}

    def test_real_tree_indexes(self):
        table = SymbolTable.build(REPO_ROOT, ("src/repro",))
        assert "repro.engine.cache" in table.modules
        assert "repro.engine.cache.ResultCache" in table.classes
        assert "repro.engine.cache.ResultCache.put" in table.functions

    def test_functions_and_methods_indexed(self):
        table = build_fixture_table()
        fn = table.functions["deeppkg.util.stamp"]
        assert fn.cls is None and fn.params == ["value"]
        method = table.functions["deeppkg.cache.ResultCache.put"]
        assert method.is_method and method.params == ["self", "key", "value"]


class TestImports:
    def test_plain_and_aliased_imports(self):
        table = SymbolTable.from_sources(
            {
                "pkg.mod": (
                    "import numpy as np\n"
                    "import time\n"
                    "from pkg.other import helper as h\n"
                )
            }
        )
        imports = table.modules["pkg.mod"].imports
        assert imports["np"] == "numpy"
        assert imports["time"] == "time"
        assert imports["h"] == "pkg.other.helper"

    def test_relative_import_resolution(self):
        table = SymbolTable.from_sources(
            {
                "pkg.sub.mod": "from ..other import thing\n",
                "pkg.other": "def thing():\n    return 1\n",
            }
        )
        assert table.modules["pkg.sub.mod"].imports["thing"] == "pkg.other.thing"

    def test_function_local_imports_are_indexed(self):
        table = SymbolTable.from_sources(
            {
                "pkg.mod": (
                    "def late():\n"
                    "    from pkg.other import helper\n"
                    "    return helper()\n"
                ),
                "pkg.other": "def helper():\n    return 1\n",
            }
        )
        assert table.modules["pkg.mod"].imports["helper"] == "pkg.other.helper"

    def test_reexport_chasing(self):
        table = SymbolTable.from_sources(
            {
                "pkg": "from pkg.impl import api\n",
                "pkg.impl": "def api():\n    return 1\n",
                "pkg.user": "from pkg import api\n",
            }
        )
        mod = table.modules["pkg.user"]
        assert table.resolve_dotted(mod, "api") == "pkg.impl.api"


class TestGuardedBy:
    def test_guarded_fields_extracted(self):
        table = build_fixture_table()
        cache = table.classes["deeppkg.cache.ResultCache"]
        assert cache.guarded_fields == {"_entries": "_lock"}
        assert "_lock" in cache.lock_attrs

    def test_lock_attr_found_from_init_assignment(self):
        table = build_fixture_table()
        left = table.classes["deeppkg.bad_locks.Left"]
        assert "_lock" in left.lock_attrs

    def test_real_engine_declarations(self):
        table = SymbolTable.build(REPO_ROOT, ("src/repro",))
        stats = table.classes["repro.engine.stats.EngineStats"]
        assert stats.guarded_fields["requests"] == "_lock"
        assert stats.guarded_fields["latencies"] == "_lock"
        engine = table.classes["repro.engine.engine.MatchingEngine"]
        assert engine.guarded_fields == {
            "_in_flight": "_lock",
            "scheduler": "_lock",
        }


class TestInstanceAttrs:
    def test_annotated_self_assignment_wins(self):
        table = build_fixture_table()
        left = table.classes["deeppkg.bad_locks.Left"]
        ann = left.attr_types["peer"]
        assert isinstance(ann, ast.Constant) and ann.value == "Right"


class TestProtocols:
    def test_protocol_detection_and_structural_impls(self):
        table = build_fixture_table()
        protocol = table.classes["deeppkg.boundary.Backend"]
        assert protocol.is_protocol
        impls = {c.name for c in table.protocol_implementations(protocol)}
        assert impls == {"ReorderingBackend", "CheckedBackend"}

    def test_attr_requirement_excludes_partial_matches(self):
        table = SymbolTable.from_sources(
            {
                "pkg.mod": (
                    "from typing import Protocol\n"
                    "class Backend(Protocol):\n"
                    "    name: str\n"
                    "    def generate(self, prompts: list) -> list: ...\n"
                    "class NoName:\n"
                    "    def generate(self, prompts: list) -> list:\n"
                    "        return prompts\n"
                )
            }
        )
        protocol = table.classes["pkg.mod.Backend"]
        assert table.protocol_implementations(protocol) == []

    def test_real_backend_impls(self):
        table = SymbolTable.build(REPO_ROOT, ("src/repro",))
        protocol = table.classes["repro.engine.backends.Backend"]
        impls = {c.name for c in table.protocol_implementations(protocol)}
        assert impls == {
            "ModelBackend",
            "LocalBackend",
            "BatchAPIBackend",
            "FaultyBackend",
            "CrashingBackend",
        }


class TestMethodLookup:
    def test_inherited_method_found_through_project_base(self):
        table = SymbolTable.from_sources(
            {
                "pkg.mod": (
                    "class Base:\n"
                    "    def ping(self):\n"
                    "        return 1\n"
                    "class Child(Base):\n"
                    "    pass\n"
                )
            }
        )
        found = table.lookup_method("pkg.mod.Child", "ping")
        assert found is not None and found.qualname == "pkg.mod.Base.ping"
