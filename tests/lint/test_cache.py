"""The incremental analysis cache: hits, invalidation, and honesty.

These tests run the deep analyzer over the respkg fixture tree (small,
so cold runs stay fast) through a real on-disk cache directory, then
edit files and corrupt the cache to prove the degradation story.
"""

import shutil
import subprocess
import sys

import pytest

from repro.lint.cache import AnalysisCache, take_snapshot
from repro.lint.deep import run_deep

from .conftest import REPO_ROOT

FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


@pytest.fixture()
def respkg_copy(tmp_path):
    """A private, editable copy of the respkg fixture tree."""
    shutil.copytree(FIXTURES / "respkg", tmp_path / "respkg")
    return tmp_path


def run_cached(root, cache, changed=None):
    return run_deep(root, ("respkg",), cache=cache, changed=changed)


def strip_volatile(summary):
    """Everything the warm/cold byte-identity contract covers."""
    return {
        k: v for k, v in summary.items() if k not in ("cache", "timings")
    }


class TestColdWarm:
    def test_warm_hit_is_byte_identical(self, respkg_copy, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        cold_findings, cold_summary = run_cached(respkg_copy, cache)
        assert cache.stats["deep_hit"] is False
        assert cold_summary["cache"]["deep_hit"] is False

        warm_cache = AnalysisCache(tmp_path / "cache")
        warm_findings, warm_summary = run_cached(respkg_copy, warm_cache)
        assert warm_cache.stats["deep_hit"] is True
        assert warm_summary["cache"]["deep_hit"] is True
        assert [vars(f) for f in warm_findings] == [
            vars(f) for f in cold_findings
        ]
        assert strip_volatile(warm_summary) == strip_volatile(cold_summary)

    def test_cold_run_populates_tree_store(self, respkg_copy, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        run_cached(respkg_copy, cache)
        assert cache.stats["tree_misses"] > 0
        assert cache.manifest_path.exists()
        assert list(cache.trees_dir.glob("*.pkl"))


class TestInvalidation:
    def test_edit_misses_deep_but_reuses_trees(self, respkg_copy, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        run_cached(respkg_copy, cache)
        total = len(take_snapshot(respkg_copy, ("respkg",)).files)

        target = respkg_copy / "respkg" / "good_leak.py"
        target.write_text(target.read_text() + "\n\nEXTRA = 1\n")

        warm = AnalysisCache(tmp_path / "cache")
        run_cached(respkg_copy, warm)
        assert warm.stats["deep_hit"] is False
        # Every unchanged file re-loads its pickled tree; only the
        # edited one re-parses.
        assert warm.stats["tree_misses"] == 1
        assert warm.stats["tree_hits"] == total - 1

    def test_edit_invalidates_importers_fingerprints(self, respkg_copy):
        before = take_snapshot(respkg_copy, ("respkg",))
        target = respkg_copy / "respkg" / "concurrency.py"
        target.write_text(target.read_text() + "\n\nEXTRA = 1\n")
        after = take_snapshot(respkg_copy, ("respkg",))

        flipped = {
            rel
            for rel in before.files
            if before.files[rel].dep_fingerprint
            != after.files[rel].dep_fingerprint
        }
        # concurrency.py and every module importing it (the shutdown
        # fixtures and good_double_close), but not e.g. bad_leak.py.
        assert "respkg/concurrency.py" in flipped
        assert "respkg/bad_shutdown_order.py" in flipped
        assert "respkg/bad_leak.py" not in flipped
        assert flipped == before.dependents_of(["respkg/concurrency.py"])

    def test_stale_files_is_the_dependent_closure(self, respkg_copy):
        snap = take_snapshot(respkg_copy, ("respkg",))
        cache = AnalysisCache(respkg_copy / "unused")
        stale = cache.stale_files(snap, ["respkg/concurrency.py"])
        assert "respkg/concurrency.py" in stale
        assert "respkg/good_shutdown_order.py" in stale
        assert "respkg/bad_leak.py" not in stale
        # Out-of-tree paths are ignored, not crashed on.
        assert cache.stale_files(snap, ["no/such/file.py"]) == []


class TestCorruptionGrace:
    def test_garbage_manifest_degrades_to_miss(self, respkg_copy, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        cold_findings, _ = run_cached(respkg_copy, cache)
        cache.manifest_path.write_text("{not json")

        warm = AnalysisCache(tmp_path / "cache")
        warm_findings, summary = run_cached(respkg_copy, warm)
        assert warm.stats["deep_hit"] is False
        assert [vars(f) for f in warm_findings] == [
            vars(f) for f in cold_findings
        ]

    def test_garbage_pickles_degrade_to_reparse(self, respkg_copy, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        cold_findings, _ = run_cached(respkg_copy, cache)
        for pkl in cache.trees_dir.glob("*.pkl"):
            pkl.write_bytes(b"\x80garbage")
        cache.manifest_path.unlink()  # force the full analysis path too

        warm = AnalysisCache(tmp_path / "cache")
        warm_findings, _ = run_cached(respkg_copy, warm)
        assert warm.stats["tree_hits"] == 0
        assert [vars(f) for f in warm_findings] == [
            vars(f) for f in cold_findings
        ]

    def test_wrong_format_version_is_a_miss(self, respkg_copy, tmp_path):
        import json

        cache = AnalysisCache(tmp_path / "cache")
        run_cached(respkg_copy, cache)
        manifest = json.loads(cache.manifest_path.read_text())
        manifest["format"] = -1
        cache.manifest_path.write_text(json.dumps(manifest))

        warm = AnalysisCache(tmp_path / "cache")
        run_cached(respkg_copy, warm)
        assert warm.stats["deep_hit"] is False


class TestChangedOnlyScope:
    def test_scope_block_with_cache(self, respkg_copy, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        _, summary = run_cached(
            respkg_copy, cache, changed=["respkg/concurrency.py"]
        )
        scope = summary["scope"]
        assert scope["changed_only"] is True
        assert scope["analysis"] == "full"
        assert scope["changed_in_tree"] == 1
        assert scope["stale_files"] >= 4  # concurrency + its importers

    def test_scope_block_warm_says_cached(self, respkg_copy, tmp_path):
        cache = AnalysisCache(tmp_path / "cache")
        run_cached(respkg_copy, cache)
        warm = AnalysisCache(tmp_path / "cache")
        _, summary = run_cached(
            respkg_copy, warm, changed=["respkg/concurrency.py"]
        )
        assert summary["scope"]["analysis"] == "cached"

    def test_scope_block_without_cache_is_honest(self, respkg_copy):
        _, summary = run_deep(
            respkg_copy, ("respkg",), changed=["respkg/concurrency.py"]
        )
        scope = summary["scope"]
        assert scope["analysis"] == "full"
        assert "whole-program" in scope["note"]
        assert "--cache" in scope["note"]


class TestCli:
    def test_cache_requires_deep(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--cache", "/tmp/x"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 2
        assert "--cache requires --deep" in proc.stderr
