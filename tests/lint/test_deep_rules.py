"""Project-scoped (--deep) rules over the deeppkg fixture package."""

import textwrap

import pytest

from repro.lint.deep import build_context, run_deep

from .conftest import REPO_ROOT

FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


@pytest.fixture(scope="module")
def fixture_run():
    context = build_context(FIXTURES, ("deeppkg",))
    findings, summary = run_deep(context=context)
    return context, findings, summary


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestTaintRule:
    def test_direct_rng_cache_put_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hits = by_rule(findings, "deep-taint")
        assert any(
            f.path == "deeppkg/bad_taint.py" and f.line == 19 for f in hits
        )

    def test_two_hop_laundered_clock_flagged_with_provenance(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(
            f
            for f in by_rule(findings, "deep-taint")
            if f.path == "deeppkg/bad_taint.py" and f.line == 15
        )
        # The message prints the source site and the helper chain it
        # travelled through — the whole point of the deep analysis.
        assert "deeppkg/util.py:7" in hit.message
        assert "deeppkg.util._now" in hit.message
        assert "deeppkg.util.stamp" in hit.message

    def test_llm_module_return_sink_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        assert any(
            f.path == "deeppkg/llm/sim.py" and f.line == 8
            for f in by_rule(findings, "deep-taint")
        )

    def test_good_taint_module_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(f.path == "deeppkg/good_taint.py" for f in findings)


class TestLockRules:
    def test_unguarded_read_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(iter(by_rule(findings, "deep-lock-field")))
        assert hit.path == "deeppkg/bad_locks.py" and hit.line == 20
        assert "counter" in hit.message and "_lock" in hit.message

    def test_blocking_call_under_lock_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(iter(by_rule(findings, "deep-lock-blocking")))
        assert hit.path == "deeppkg/bad_locks.py" and hit.line == 24

    def test_lock_order_cycle_flagged(self, fixture_run):
        _, findings, _ = fixture_run
        hit = next(iter(by_rule(findings, "deep-lock-order")))
        assert hit.path == "deeppkg/bad_locks.py"
        assert "Left" in hit.message and "Right" in hit.message

    def test_good_locks_module_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(f.path == "deeppkg/good_locks.py" for f in findings)


class TestBoundaryRule:
    def test_untyped_escapes_flagged_per_exception(self, fixture_run):
        _, findings, _ = fixture_run
        hits = by_rule(findings, "deep-exception-boundary")
        assert all(f.path == "deeppkg/bad_boundary.py" for f in hits)
        leaked = {m for f in hits for m in ("KeyError", "ValueError") if m in f.message}
        assert leaked == {"KeyError", "ValueError"}

    def test_wrapping_impl_clean(self, fixture_run):
        _, findings, _ = fixture_run
        assert not any(f.path == "deeppkg/good_boundary.py" for f in findings)


class TestRunDeep:
    def test_exact_finding_set(self, fixture_run):
        """The fixture package's full expected output, pinned."""
        _, findings, _ = fixture_run
        got = sorted((f.rule, f.path, f.line) for f in findings)
        assert got == [
            ("deep-exception-boundary", "deeppkg/bad_boundary.py", 10),
            ("deep-exception-boundary", "deeppkg/bad_boundary.py", 10),
            ("deep-lock-blocking", "deeppkg/bad_locks.py", 24),
            ("deep-lock-field", "deeppkg/bad_locks.py", 20),
            ("deep-lock-order", "deeppkg/bad_locks.py", 29),
            ("deep-taint", "deeppkg/bad_taint.py", 15),
            ("deep-taint", "deeppkg/bad_taint.py", 19),
            ("deep-taint", "deeppkg/llm/sim.py", 8),
        ]

    def test_summary_reports_callgraph_accounting(self, fixture_run):
        _, _, summary = fixture_run
        callgraph = summary["callgraph"]
        assert callgraph["resolution_rate"] == 1.0
        assert callgraph["unresolved"] == 0
        assert summary["modules"] >= 10

    def test_rule_filter_restricts_output(self, fixture_run):
        context, _, _ = fixture_run
        findings, _ = run_deep(rules=["deep-taint"], context=context)
        assert findings and all(f.rule == "deep-taint" for f in findings)

    def test_real_tree_is_clean(self):
        """ISSUE acceptance: --deep exits 0 on src/repro itself."""
        findings, summary = run_deep(REPO_ROOT)
        assert findings == []
        assert summary["callgraph"]["resolution_rate"] >= 0.90

    @pytest.mark.parametrize("suppress", [False, True])
    def test_suppression_directive_honoured(self, tmp_path, suppress):
        directive = "  # repro-lint: disable=deep-taint" if suppress else ""
        pkg = tmp_path / "tinypkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "llm.py").write_text(
            textwrap.dedent(
                f"""\
                import random


                def sample():
                    return random.random(){directive}
                """
            )
        )
        findings, _ = run_deep(tmp_path, ("tinypkg",))
        if suppress:
            assert findings == []
        else:
            assert [f.rule for f in findings] == ["deep-taint"]
