"""Tests for prompt building and entity extraction."""

import pytest

from repro.prompts.builder import build_matching_prompt, extract_entities, identify_prompt
from repro.prompts.templates import DEFAULT_PROMPT, SIMPLE_FORCE


class TestExtractEntities:
    def test_roundtrip(self):
        prompt = DEFAULT_PROMPT.render("Jabra Evolve 80", "jabra evolve-80 stereo")
        left, right = extract_entities(prompt)
        assert left == "Jabra Evolve 80"
        assert right == "jabra evolve-80 stereo"

    def test_multiline_right_description(self):
        prompt = 'q\nEntity 1: alpha\nEntity 2: beta gamma'
        assert extract_entities(prompt) == ("alpha", "beta gamma")

    def test_missing_block_raises(self):
        with pytest.raises(ValueError):
            extract_entities("no entities here")


class TestIdentifyPrompt:
    def test_known_templates_identified(self):
        prompt = SIMPLE_FORCE.render("a", "b")
        assert identify_prompt(prompt) is SIMPLE_FORCE

    def test_unknown_returns_none(self):
        assert identify_prompt('"Some custom question?"\nEntity 1: a\nEntity 2: b') is None


class TestBuildMatchingPrompt:
    def test_uses_pair_descriptions(self, product_split):
        pair = product_split.pairs[0]
        prompt = build_matching_prompt(pair)
        assert pair.left.description in prompt
        assert pair.right.description in prompt
