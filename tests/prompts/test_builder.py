"""Tests for prompt building and entity extraction."""

import pytest

from repro.prompts.builder import build_matching_prompt, extract_entities, identify_prompt
from repro.prompts.templates import (
    DEFAULT_PROMPT,
    PROMPTS,
    SIMPLE_FORCE,
    escape_description,
    unescape_description,
)


class TestExtractEntities:
    def test_roundtrip(self):
        prompt = DEFAULT_PROMPT.render("Jabra Evolve 80", "jabra evolve-80 stereo")
        left, right = extract_entities(prompt)
        assert left == "Jabra Evolve 80"
        assert right == "jabra evolve-80 stereo"

    def test_multiline_right_description(self):
        prompt = 'q\nEntity 1: alpha\nEntity 2: beta gamma'
        assert extract_entities(prompt) == ("alpha", "beta gamma")

    def test_missing_block_raises(self):
        with pytest.raises(ValueError):
            extract_entities("no entities here")

    @pytest.mark.parametrize(
        ("left", "right"),
        [
            ("trailing space ", "plain"),
            (" leading", "  double lead"),
            ("line one\nline two", "plain"),
            ("plain", "ends with newline\n"),
            ("left\nEntity 2: decoy", "real right"),
            ("Entity 1: payload", "Entity 2: payload"),
            ("back\\slash", "literal \\n sequence"),
            ("", ""),
        ],
    )
    def test_adversarial_roundtrip_is_exact(self, left, right):
        """render → extract must be lossless for every template (the
        prompt-roundtrip lint rule checks the same contract)."""
        for template in PROMPTS.values():
            assert extract_entities(template.render(left, right)) == (left, right)


class TestEscapeDescription:
    @pytest.mark.parametrize(
        "text",
        ["plain", "a\nb", "a\\nb", "a\\\\nb", "ends\\", "\n", "", "a\\\nb"],
    )
    def test_unescape_inverts_escape(self, text):
        assert unescape_description(escape_description(text)) == text

    def test_plain_text_renders_unchanged(self):
        assert escape_description("Jabra Evolve 80 ") == "Jabra Evolve 80 "

    def test_newline_becomes_two_characters(self):
        assert escape_description("a\nb") == "a\\nb"


class TestIdentifyPrompt:
    def test_known_templates_identified(self):
        prompt = SIMPLE_FORCE.render("a", "b")
        assert identify_prompt(prompt) is SIMPLE_FORCE

    def test_unknown_returns_none(self):
        assert identify_prompt('"Some custom question?"\nEntity 1: a\nEntity 2: b') is None


class TestBuildMatchingPrompt:
    def test_uses_pair_descriptions(self, product_split):
        pair = product_split.pairs[0]
        prompt = build_matching_prompt(pair)
        assert pair.left.description in prompt
        assert pair.right.description in prompt
