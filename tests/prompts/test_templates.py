"""Tests for prompt templates."""

import pytest

from repro.prompts.templates import (
    ALTERNATIVE_PROMPTS,
    DEFAULT_PROMPT,
    PROMPTS,
    get_prompt,
)


class TestTemplates:
    def test_four_matching_prompts(self):
        assert set(PROMPTS) == {
            "default", "simple-free", "complex-force", "simple-force"
        }

    def test_paper_wordings(self):
        assert PROMPTS["simple-free"].question == "Do the two product descriptions match?"
        assert "Answer with 'Yes'" in PROMPTS["complex-force"].question
        assert "Answer with 'Yes'" in PROMPTS["simple-force"].question
        assert DEFAULT_PROMPT.question.startswith("Do the two entity descriptions")

    def test_forced_flags(self):
        assert not PROMPTS["default"].forced
        assert not PROMPTS["simple-free"].forced
        assert PROMPTS["complex-force"].forced
        assert PROMPTS["simple-force"].forced

    def test_alternatives_exclude_default(self):
        assert DEFAULT_PROMPT not in ALTERNATIVE_PROMPTS
        assert len(ALTERNATIVE_PROMPTS) == 3

    def test_render_contains_entities(self):
        text = DEFAULT_PROMPT.render("left desc", "right desc")
        assert "Entity 1: left desc" in text
        assert "Entity 2: right desc" in text

    def test_get_prompt(self):
        assert get_prompt("default") is DEFAULT_PROMPT
        with pytest.raises(ValueError, match="unknown prompt"):
            get_prompt("fancy")
