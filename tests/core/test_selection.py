"""Tests for training-set filtration (Dimension 2a)."""

from repro.core.selection import error_based_filter, relevancy_filter
from repro.llm.model import build_model


class TestErrorBasedFilter:
    def test_removes_some_keeps_most(self, product_split):
        filtered = error_based_filter(product_split)
        assert 0 < len(filtered) < len(product_split)
        assert len(filtered) > 0.5 * len(product_split)

    def test_kept_pairs_agree_with_filter_model(self, product_split):
        from repro.prompts.templates import COMPLEX_FORCE

        model = build_model("gpt-4o-mini")
        filtered = error_based_filter(product_split, model)
        preds = model.predict_pairs(filtered.pairs, COMPLEX_FORCE)
        assert all(bool(pred) == pair.label for pred, pair in zip(preds, filtered))

    def test_filter_name(self, product_split):
        assert error_based_filter(product_split).name.endswith("-filtered")

    def test_accepts_model_instance(self, product_split):
        model = build_model("gpt-4o")
        filtered = error_based_filter(product_split, model)
        assert len(filtered) > 0


class TestRelevancyFilter:
    def test_smaller_than_error_filter(self, product_split):
        """Relevancy keeps only corner-like pairs — far fewer (paper: 608 of 2500)."""
        relevancy = relevancy_filter(product_split)
        assert len(relevancy) < len(error_based_filter(product_split))

    def test_keeps_similar_pairs(self, product_split):
        filtered = relevancy_filter(product_split)
        # kept pairs should be enriched in positives + corner negatives
        pos_rate_kept = sum(p.label for p in filtered) / max(len(filtered), 1)
        pos_rate_all = sum(p.label for p in product_split) / len(product_split)
        assert pos_rate_kept > pos_rate_all

    def test_threshold_extremes(self, product_split):
        everything = relevancy_filter(
            product_split, match_threshold=0.0, nonmatch_threshold=0.0
        )
        assert len(everything) == len(product_split)
        nothing = relevancy_filter(
            product_split, match_threshold=1.01, nonmatch_threshold=1.01
        )
        assert len(nothing) == 0

    def test_nonmatches_held_to_higher_bar(self, product_split):
        filtered = relevancy_filter(product_split)
        kept_neg = sum(1 for p in filtered if not p.label)
        total_neg = sum(1 for p in product_split if not p.label)
        kept_pos = sum(1 for p in filtered if p.label)
        total_pos = sum(1 for p in product_split if p.label)
        assert kept_neg / total_neg < kept_pos / total_pos
