"""Tests for transfer-gain computation."""

import pytest

from repro.core.transfer import domain_targets, transfer_gain


class TestDomainTargets:
    def test_product_targets(self):
        targets = domain_targets("product", exclude="abt-buy")
        assert "abt-buy" not in targets
        assert "wdc-small" in targets

    def test_wdc_variants_all_excluded(self):
        targets = domain_targets("product", exclude="wdc-medium")
        assert all(not t.startswith("wdc") for t in targets)

    def test_scholar(self):
        assert set(domain_targets("scholar")) == {"dblp-acm", "dblp-scholar"}


class TestTransferGain:
    def test_paper_example(self):
        """WDC model: 10.52 avg gain / 18.41 specialized gain ≈ 72% (paper §3.2)."""
        zero = {"a": 50.0, "b": 50.0}
        model = {"a": 60.52, "b": 60.52}
        specialized = {"a": 68.41, "b": 68.41}
        gain = transfer_gain(model, zero, specialized, ["a", "b"])
        assert gain == pytest.approx(10.52 / 18.41)

    def test_negative_gain(self):
        zero = {"a": 50.0}
        model = {"a": 45.0}
        specialized = {"a": 60.0}
        assert transfer_gain(model, zero, specialized, ["a"]) == pytest.approx(-0.5)

    def test_undefined_when_specialized_flat(self):
        zero = {"a": 50.0}
        assert transfer_gain({"a": 55.0}, zero, {"a": 50.0}, ["a"]) is None

    def test_empty_targets(self):
        assert transfer_gain({}, {}, {}, []) is None
