"""Tests for the TailorMatch facade."""

import pytest

from repro.core.pipeline import TailorMatch


@pytest.fixture(scope="module")
def tm():
    return TailorMatch("llama-3.1-8b")


class TestTailorMatch:
    def test_match_returns_bool(self, tm):
        verdict = tm.match("Jabra Evolve 80 stereo", "jabra evolve-80 stereo headset")
        assert isinstance(verdict, bool)

    def test_identical_descriptions_match(self, tm):
        assert TailorMatch("gpt-4o").match(
            "Sonavik Vault 9a ssd 1tb", "Sonavik Vault 9a ssd 1tb"
        )

    def test_evaluate_zero_shot(self, tm):
        result = tm.evaluate(None, "abt-buy")
        assert 0 < result.f1 < 100

    def test_unknown_selection_raises(self, tm):
        with pytest.raises(ValueError, match="unknown selection"):
            tm.fine_tune("wdc-small", selection="astrology")

    def test_training_examples_exposed(self, tm):
        examples = tm.training_examples("wdc-small")
        assert len(examples) == 2500
