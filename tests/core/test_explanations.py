"""Tests for explanation generation (Dimension 1)."""

import numpy as np
import pytest

from repro.core.explanations import (
    AUX_DIM,
    EXPLANATION_STYLES,
    ExplanationGenerator,
    render_completion_explanation,
)


@pytest.fixture(scope="module")
def generator():
    return ExplanationGenerator()


@pytest.fixture(scope="module")
def match_pair(product_split):
    return next(p for p in product_split.pairs if p.label)


@pytest.fixture(scope="module")
def nonmatch_pair(product_split):
    return next(p for p in product_split.pairs if not p.label)


class TestAttributeAssessments:
    def test_returns_every_attribute(self, generator, match_pair):
        assessments = generator.attribute_assessments(match_pair)
        keys = {key for key, *_ in assessments}
        assert "brand" in keys and "model" in keys

    def test_values_in_unit_range(self, generator, match_pair):
        for _, _, _, imp, sim in generator.attribute_assessments(match_pair):
            assert 0.0 <= imp <= 1.0
            assert 0.0 <= sim <= 1.0

    def test_match_more_similar_than_nonmatch(self, generator, product_split):
        def mean_sim(pair):
            a = generator.attribute_assessments(pair)
            return np.mean([sim for *_, sim in a])

        matches = [p for p in product_split.pairs if p.label][:20]
        nonmatches = [p for p in product_split.pairs if not p.label][:20]
        assert np.mean([mean_sim(p) for p in matches]) > np.mean(
            [mean_sim(p) for p in nonmatches]
        )

    def test_deterministic(self, generator, match_pair):
        a = generator.attribute_assessments(match_pair)
        b = generator.attribute_assessments(match_pair)
        assert a == b


class TestExplain:
    @pytest.mark.parametrize("style", EXPLANATION_STYLES)
    def test_all_styles_produce_text_and_targets(self, generator, match_pair, style):
        explanation = generator.explain(match_pair, style)
        assert explanation.text
        assert explanation.aux_targets.shape == (AUX_DIM,)

    def test_unknown_style_raises(self, generator, match_pair):
        with pytest.raises(ValueError, match="unknown explanation style"):
            generator.explain(match_pair, "interpretive-dance")

    def test_structured_format_matches_figure4(self, generator, match_pair):
        text = generator.explain(match_pair, "structured").text
        for line in text.splitlines():
            assert line.startswith("attribute=")
            assert "importance=" in line
            assert "###" in line
            assert "similarity=" in line

    def test_no_importance_drops_importance(self, generator, match_pair):
        text = generator.explain(match_pair, "no-importance").text
        assert "importance=" not in text
        assert "similarity=" in text

    def test_no_imp_sim_drops_both(self, generator, match_pair):
        text = generator.explain(match_pair, "no-imp-sim").text
        assert "importance=" not in text
        assert "similarity=" not in text
        assert "values=" in text

    def test_token_lengths_ordered_like_paper(self, generator, match_pair):
        """Long textual ≈ 293 tokens, Wadhwa ≈ 90 in the paper."""
        long_exp = generator.explain(match_pair, "long-textual")
        wadhwa = generator.explain(match_pair, "wadhwa")
        assert long_exp.token_count > wadhwa.token_count
        assert long_exp.token_count > 120
        assert 30 < wadhwa.token_count < 160

    def test_structured_targets_track_attribute_evidence(
        self, generator, product_split
    ):
        """Structured targets are precise functions of attribute similarity;
        textual targets carry bag-of-words noise on top of the label."""
        pairs = product_split.pairs[:60]
        structured = np.stack(
            [generator.explain(p, "structured").aux_targets for p in pairs]
        )
        mean_sims = np.array(
            [
                np.mean([s for *_, s in generator.attribute_assessments(p)])
                for p in pairs
            ]
        )
        # slot 0 of the structured targets IS the mean attribute similarity
        assert np.allclose(structured[:, 0], mean_sims, atol=1e-9)

        # textual targets deviate from their noise-free signal
        textual = np.stack(
            [generator.explain(p, "long-textual").aux_targets for p in pairs]
        )
        labels = np.array([p.label for p in pairs], dtype=float)
        residual = np.abs(textual[:, 0] - labels)
        assert residual.mean() > 0.03  # genuinely noisy


class TestRenderCompletionExplanation:
    def test_structured_inference_format(self):
        text = render_completion_explanation("structured", "a", "b", True)
        assert text.startswith("attribute=description")
        assert "similarity=" in text

    def test_textual_inference(self):
        text = render_completion_explanation("wadhwa", "a", "a", True)
        assert "match" in text
