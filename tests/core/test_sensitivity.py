"""Tests for the prompt-sensitivity study."""

import pytest

from repro.core.sensitivity import PromptSensitivity, prompt_sensitivity
from repro.llm.model import build_model


class TestPromptSensitivityDataclass:
    def test_std_and_best(self):
        sens = PromptSensitivity(
            model_name="m", training_set="t", dataset="d",
            f1_by_prompt={"default": 50.0, "simple-free": 60.0,
                          "complex-force": 55.0, "simple-force": 55.0},
        )
        assert sens.best_prompt == "simple-free"
        assert not sens.finetuning_prompt_is_best
        assert sens.std == pytest.approx(3.5355, abs=1e-3)

    def test_finetuning_prompt_best(self):
        sens = PromptSensitivity(
            model_name="m", training_set="t", dataset="d",
            f1_by_prompt={"default": 70.0, "simple-free": 60.0,
                          "complex-force": 55.0, "simple-force": 55.0},
        )
        assert sens.finetuning_prompt_is_best


class TestPromptSensitivityMeasurement:
    def test_covers_four_prompts(self):
        model = build_model("gpt-4o-mini")
        sens = prompt_sensitivity(model, "abt-buy")
        assert set(sens.f1_by_prompt) == {
            "default", "simple-free", "complex-force", "simple-force"
        }

    def test_weak_zero_shot_model_is_more_sensitive(self):
        weak = prompt_sensitivity(build_model("llama-3.1-8b"), "abt-buy")
        strong = prompt_sensitivity(build_model("gpt-4o"), "abt-buy")
        assert weak.std > strong.std
