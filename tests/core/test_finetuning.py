"""Tests for fine-tuning orchestration."""

import pytest

from repro.core.finetuning import (
    clear_finetune_cache,
    evaluate_on,
    finetune_model,
    make_training_examples,
    zero_shot_model,
)


class TestMakeTrainingExamples:
    def test_plain_examples(self, product_split):
        examples = make_training_examples(product_split)
        assert len(examples) == len(product_split)
        assert all(ex.aux is None for ex in examples)
        assert [ex.label for ex in examples] == product_split.labels()

    def test_with_explanations(self, product_split):
        examples = make_training_examples(
            product_split.subset(range(10)), explanation_style="structured"
        )
        assert all(ex.aux is not None for ex in examples)


class TestFinetuneModel:
    def test_split_input(self, tiny_dataset, fast_config):
        outcome = finetune_model(
            "llama-3.1-8b",
            tiny_dataset.train,
            valid=tiny_dataset.valid,
            config=fast_config,
            tag="unit-tiny",
            use_cache=False,
        )
        assert outcome.model.is_fine_tuned
        assert outcome.model.training_set == "unit-tiny"
        assert len(outcome.valid_curve) == fast_config.epochs

    def test_cache_hits(self, tiny_dataset, fast_config):
        clear_finetune_cache()
        a = finetune_model(
            "llama-3.1-8b", tiny_dataset.train, valid=tiny_dataset.valid,
            config=fast_config, tag="cache-check",
        )
        b = finetune_model(
            "llama-3.1-8b", tiny_dataset.train, valid=tiny_dataset.valid,
            config=fast_config, tag="cache-check",
        )
        assert a is b
        clear_finetune_cache()

    def test_zero_shot_model_cached(self):
        assert zero_shot_model("gpt-4o") is zero_shot_model("gpt-4o")


class TestEvaluateOn:
    def test_evaluates_named_datasets(self):
        model = zero_shot_model("gpt-4o-mini")
        results = evaluate_on(model, ["abt-buy"])
        assert set(results) == {"abt-buy"}
        assert 0 < results["abt-buy"].f1 <= 100


class TestCombineTrainingSets:
    def test_concatenates(self):
        from repro.core.finetuning import combine_training_sets
        from repro.datasets.registry import load_dataset

        combined = combine_training_sets(["wdc-small", "dblp-acm"])
        assert len(combined) == (
            len(load_dataset("wdc-small").train) + len(load_dataset("dblp-acm").train)
        )
        assert combined.name == "wdc-small+dblp-acm"

    def test_empty_raises(self):
        import pytest
        from repro.core.finetuning import combine_training_sets

        with pytest.raises(ValueError):
            combine_training_sets([])
