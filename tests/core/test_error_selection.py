"""Tests for iterative error-based selection (Dimension 2c)."""

import pytest

from repro.core.error_selection import error_based_selection


class TestErrorBasedSelection:
    def test_hosted_model_rejected(self):
        with pytest.raises(ValueError, match="locally trainable"):
            error_based_selection("gpt-4o-mini")

    def test_two_round_loop(self):
        """A short loop on the real datasets exercises the full machinery."""
        result = error_based_selection(
            "llama-3.1-8b", rounds=2, extra_per_round=500, epochs_per_round=2
        )
        assert result.model.is_fine_tuned
        assert len(result.round_valid_f1) == 2
        assert len(result.round_errors) == 2
        assert result.best_round in (1, 2)
        assert result.round_valid_f1[result.best_round - 1] == max(
            result.round_valid_f1
        )
