"""Tests for example generation (Dimension 2b)."""

import pytest

from repro.core.generation import (
    GENERATION_METHODS,
    PROFILES,
    generate_examples,
    inspection_report,
)


@pytest.fixture(scope="module")
def seeds(product_split):
    return product_split.subset(range(30), name="gen-seeds")


@pytest.fixture(scope="module")
def generated(seeds):
    return generate_examples(seeds)


class TestGenerateExamples:
    def test_four_per_seed_per_method(self, seeds, generated):
        assert len(generated) == len(seeds) * 4 * len(GENERATION_METHODS)

    def test_one_match_three_nonmatches(self, seeds, generated):
        positives = sum(1 for p in generated if p.label)
        assert positives == len(seeds) * len(GENERATION_METHODS)

    def test_provenance_tags(self, generated):
        assert all(p.source.startswith("generated:") for p in generated)
        methods_seen = {p.source.split(":")[1] for p in generated}
        assert methods_seen == set(GENERATION_METHODS)

    def test_deterministic(self, seeds):
        a = generate_examples(seeds, methods=("brief",))
        b = generate_examples(seeds, methods=("brief",))
        assert [p.key for p in a] == [p.key for p in b]

    def test_unknown_method_raises(self, seeds):
        with pytest.raises(ValueError, match="unknown generation methods"):
            generate_examples(seeds, methods=("vibes",))

    def test_brief_matches_are_easier_than_detailed(self, seeds, generated):
        """Brief generation produces too-similar match strings (paper §5.2)."""
        from repro.llm.features import featurize_texts, FEATURE_NAMES

        idx = FEATURE_NAMES.index("char3_cosine")

        def mean_match_similarity(method):
            sims = [
                featurize_texts(p.left.description, p.right.description)[idx]
                for p in generated
                if p.label and p.source.startswith(f"generated:{method}")
            ]
            return sum(sims) / len(sims)

        assert mean_match_similarity("brief") > mean_match_similarity("detailed")


class TestInspectionReport:
    def test_report_covers_all_methods(self, generated):
        report = inspection_report(generated)
        assert set(report) == set(GENERATION_METHODS)

    def test_mislabel_rates_reflect_profiles(self, seeds):
        big = generate_examples(
            seeds.extended(seeds.pairs * 5, name="big-seeds")  # 180 seeds
        )
        report = inspection_report(big)
        assert report["brief"]["mislabeled_rate"] > report["detailed"]["mislabeled_rate"]

    def test_positive_rate_quarter(self, generated):
        report = inspection_report(generated)
        for method in GENERATION_METHODS:
            assert report[method]["positive_rate"] == pytest.approx(0.25)
