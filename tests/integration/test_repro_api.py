"""Tests for the top-level package API."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_dataset_names_exposed(self):
        assert "wdc-small" in repro.DATASET_NAMES

    def test_model_names_exposed(self):
        assert "gpt-4o" in repro.MODEL_NAMES
