"""Integration tests across modules on the real benchmark datasets.

These assert the *qualitative shapes* the reproduction must preserve
(who wins, signs of deltas), not exact F1 values.
"""

import pytest

from repro.core.finetuning import evaluate_on, finetune_model, zero_shot_model
from repro.core.selection import error_based_filter
from repro.datasets.registry import load_dataset
from repro.eval.evaluator import evaluate_model


@pytest.fixture(scope="module")
def wdc():
    return load_dataset("wdc-small")


@pytest.fixture(scope="module")
def llama_ft(wdc):
    return finetune_model("llama-3.1-8b", "wdc-small").model


class TestZeroShotShape:
    def test_model_ordering_on_products(self, wdc):
        """Paper Table 2 zero-shot: gpt-4o ≥ gpt-4o-mini > llama-70b > llama-8b
        holds in aggregate over the product benchmarks."""
        names = ["abt-buy", "walmart-amazon", "wdc-small"]

        def avg(model_name):
            results = evaluate_on(zero_shot_model(model_name), names)
            return sum(r.f1 for r in results.values()) / len(results)

        assert avg("gpt-4o") > avg("llama-3.1-70b") > avg("llama-3.1-8b")
        assert avg("gpt-4o-mini") > avg("llama-3.1-8b")

    def test_scholar_easier_than_products_for_weak_model(self):
        model = zero_shot_model("llama-3.1-8b")
        results = evaluate_on(model, ["dblp-acm", "wdc-small"])
        assert results["dblp-acm"].f1 > results["wdc-small"].f1

    def test_amazon_google_is_hardest_product_set(self):
        model = zero_shot_model("gpt-4o")
        results = evaluate_on(
            model, ["abt-buy", "amazon-google", "walmart-amazon", "wdc-small"]
        )
        assert results["amazon-google"].f1 == min(r.f1 for r in results.values())


class TestFineTuningShape:
    def test_small_model_gains_big_on_source(self, wdc, llama_ft):
        zs = evaluate_model(zero_shot_model("llama-3.1-8b"), wdc.test).f1
        ft = evaluate_model(llama_ft, wdc.test).f1
        assert ft - zs > 8.0, "Llama-8B must gain substantially from fine-tuning"

    def test_in_domain_transfer_positive(self, llama_ft):
        """WDC-tuned Llama-8B improves on the other product datasets."""
        zs = evaluate_on(zero_shot_model("llama-3.1-8b"), ["abt-buy", "walmart-amazon"])
        ft = evaluate_on(llama_ft, ["abt-buy", "walmart-amazon"])
        gains = [ft[n].f1 - zs[n].f1 for n in zs]
        assert sum(gains) / len(gains) > 0.0

    def test_cross_domain_transfer_not_positive(self, llama_ft):
        """Product fine-tuning does not lift scholar performance (paper §3.2)."""
        zs = evaluate_on(zero_shot_model("llama-3.1-8b"), ["dblp-acm", "dblp-scholar"])
        ft = evaluate_on(llama_ft, ["dblp-acm", "dblp-scholar"])
        gains = [ft[n].f1 - zs[n].f1 for n in zs]
        assert sum(gains) / len(gains) < 3.0

    def test_llama70b_does_not_benefit_much(self, wdc):
        """Paper: fine-tuning slightly hurts Llama-70B on WDC."""
        zs = evaluate_model(zero_shot_model("llama-3.1-70b"), wdc.test).f1
        ft_model = finetune_model("llama-3.1-70b", "wdc-small").model
        ft = evaluate_model(ft_model, wdc.test).f1
        assert ft - zs < 5.0

    def test_finetuned_model_reduces_prompt_sensitivity(self, wdc, llama_ft):
        from repro.core.sensitivity import prompt_sensitivity

        pre = prompt_sensitivity(zero_shot_model("llama-3.1-8b"), "wdc-small")
        post = prompt_sensitivity(llama_ft, "wdc-small")
        assert post.std < pre.std


class TestFiltrationShape:
    def test_error_filter_removes_mislabeled(self, wdc):
        """Error-based filtering preferentially drops mislabeled pairs."""
        filtered = error_based_filter(wdc.train)
        def mislabel_rate(split):
            return sum(p.source.endswith("mislabeled") for p in split) / len(split)
        assert mislabel_rate(filtered) < mislabel_rate(wdc.train)

    def test_filtered_size_in_paper_ballpark(self, wdc):
        """Paper: 2006 of 2500 survive error-based filtering."""
        filtered = error_based_filter(wdc.train)
        assert 1500 < len(filtered) < 2450
