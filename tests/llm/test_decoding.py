"""Tests for answer realization."""

from repro.llm.decoding import is_hedged, realize_answer
from repro.llm.parsing import parse_yes_no
from repro.llm.registry import get_persona
from repro.prompts.templates import COMPLEX_FORCE, DEFAULT_PROMPT


class TestHedging:
    def test_forced_prompt_never_hedges(self):
        persona = get_persona("llama-3.1-8b")
        assert not any(
            is_hedged(persona, COMPLEX_FORCE, f"l{i}", f"r{i}", fine_tuned=False)
            for i in range(200)
        )

    def test_fine_tuned_never_hedges(self):
        persona = get_persona("llama-3.1-8b")
        assert not any(
            is_hedged(persona, DEFAULT_PROMPT, f"l{i}", f"r{i}", fine_tuned=True)
            for i in range(200)
        )

    def test_hedge_rate_tracks_compliance(self):
        persona = get_persona("llama-3.1-8b")
        hedged = sum(
            is_hedged(persona, DEFAULT_PROMPT, f"l{i}", f"r{i}", fine_tuned=False)
            for i in range(2000)
        )
        expected = (1 - persona.format_compliance) * 2000
        assert 0.3 * expected <= hedged <= 3 * expected

    def test_deterministic_per_pair(self):
        persona = get_persona("llama-3.1-8b")
        a = is_hedged(persona, DEFAULT_PROMPT, "x", "y", fine_tuned=False)
        b = is_hedged(persona, DEFAULT_PROMPT, "x", "y", fine_tuned=False)
        assert a == b


class TestRealizeAnswer:
    def test_fine_tuned_answers_tersely(self):
        persona = get_persona("gpt-4o-mini")
        text = realize_answer(True, persona, DEFAULT_PROMPT, "a", "b", fine_tuned=True)
        assert text == "Yes."

    def test_explanation_appended(self):
        persona = get_persona("gpt-4o-mini")
        text = realize_answer(
            False, persona, DEFAULT_PROMPT, "a", "b", fine_tuned=True,
            explanation="attribute=x values=a###b",
        )
        assert text.startswith("No. attribute=x")

    def test_zero_shot_verbose_but_parseable(self):
        persona = get_persona("gpt-4o")
        text = realize_answer(True, persona, DEFAULT_PROMPT, "a", "b", fine_tuned=False)
        assert len(text.split()) > 3
        assert parse_yes_no(text) is True

    def test_hedged_answer_is_unparseable(self):
        persona = get_persona("llama-3.1-8b")
        # find a pair the persona hedges on
        for i in range(500):
            if is_hedged(persona, DEFAULT_PROMPT, f"l{i}", f"r{i}", fine_tuned=False):
                text = realize_answer(
                    True, persona, DEFAULT_PROMPT, f"l{i}", f"r{i}", fine_tuned=False
                )
                assert parse_yes_no(text) is None
                return
        raise AssertionError("no hedged pair found in 500 draws")
