"""Tests for the persona registry."""

import pytest

from repro.llm.registry import MODEL_NAMES, PERSONAS, get_persona


class TestPersonaRegistry:
    def test_four_personas(self):
        assert set(MODEL_NAMES) == {
            "llama-3.1-8b", "llama-3.1-70b", "gpt-4o-mini", "gpt-4o"
        }

    def test_paper_aliases_resolve(self):
        assert get_persona("Meta-Llama-3.1-8B-Instruct").name == "llama-3.1-8b"
        assert get_persona("gpt-4o-2024-08-06").name == "gpt-4o"
        assert get_persona("gpt-4o-mini-2024-07-18").name == "gpt-4o-mini"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            get_persona("gpt-5")

    def test_kinds(self):
        assert get_persona("llama-3.1-8b").kind == "open-source"
        assert get_persona("gpt-4o").kind == "hosted"

    def test_capability_ordering(self):
        """Larger/stronger models have cleaner priors and perception."""
        p8 = PERSONAS["llama-3.1-8b"]
        mini = PERSONAS["gpt-4o-mini"]
        big = PERSONAS["gpt-4o"]
        assert p8.prior_noise > mini.prior_noise > big.prior_noise
        assert p8.perception_noise > mini.perception_noise > big.perception_noise
        assert p8.subtle_fidelity < mini.subtle_fidelity <= big.subtle_fidelity
        assert p8.prompt_bias_sigma > mini.prompt_bias_sigma
