"""Tests for persona priors and representations."""

import numpy as np
import pytest

from repro.llm.features import FEATURE_NAMES, NUM_FEATURES, featurize_pairs
from repro.llm.prior import (
    SUBTLE_FEATURES,
    build_prior,
    pretraining_mixture,
    representation_matrix,
)
from repro.llm.registry import get_persona


class TestPretrainingMixture:
    def test_contains_both_domains(self):
        mixture = pretraining_mixture()
        fielded = sum(1 for p in mixture if ";" in p.left.description)
        assert 0 < fielded < len(mixture)

    def test_cached(self):
        assert pretraining_mixture() is pretraining_mixture()


class TestRepresentationMatrix:
    def test_shape(self):
        M = representation_matrix(get_persona("llama-3.1-8b"))
        assert M.shape == (NUM_FEATURES, NUM_FEATURES)

    def test_bias_untouched(self):
        M = representation_matrix(get_persona("llama-3.1-8b"))
        bias_idx = FEATURE_NAMES.index("bias")
        assert M[bias_idx, bias_idx] == 1.0

    def test_subtle_features_attenuated_for_weak_persona(self):
        M = representation_matrix(get_persona("llama-3.1-8b"))
        idx = FEATURE_NAMES.index("near_code_match")
        assert M[idx, idx] == pytest.approx(0.22)

    def test_gpt4o_sees_nearly_everything(self):
        M = representation_matrix(get_persona("gpt-4o"))
        diag = np.diag(M)
        assert diag.min() >= 0.85


class TestPriorHead:
    def test_cached_by_name(self):
        assert build_prior("gpt-4o") is build_prior("gpt-4o")

    def test_observe_deterministic(self, product_split):
        prior = build_prior("llama-3.1-8b")
        a = prior.observe(product_split.pairs[:5])
        b = prior.observe(product_split.pairs[:5])
        assert np.allclose(a, b)

    def test_observe_noise_only_on_degraded_features(self, product_split):
        prior = build_prior("llama-3.1-8b")
        phi = featurize_pairs(product_split.pairs[:5])
        linear = prior.represent(phi)
        observed = prior.observe(product_split.pairs[:5])
        bias_idx = FEATURE_NAMES.index("bias")
        assert np.allclose(observed[:, bias_idx], linear[:, bias_idx])
        subtle_idx = FEATURE_NAMES.index(SUBTLE_FEATURES[0])
        assert not np.allclose(observed[:, subtle_idx], linear[:, subtle_idx])

    def test_prior_separates_classes(self, product_split):
        """Even the weakest persona's prior must carry signal."""
        prior = build_prior("gpt-4o")
        logits = prior.logits_for(product_split.pairs)
        labels = np.array(product_split.labels())
        assert logits[labels].mean() > logits[~labels].mean()

    def test_perception_noise_deterministic_and_scaled(self, product_split, scholar_split):
        prior = build_prior("llama-3.1-8b")
        a = prior.perception_noise(product_split.pairs[:10])
        b = prior.perception_noise(product_split.pairs[:10])
        assert np.allclose(a, b)
        # scholar pairs scale by the persona's scholar_noise_factor
        factor = prior.persona.scholar_noise_factor
        scholar_noise = prior.perception_noise(scholar_split.pairs[:80])
        product_noise = prior.perception_noise(product_split.pairs[:80])
        ratio = np.abs(scholar_noise).mean() / np.abs(product_noise).mean()
        assert 0.5 * factor < ratio < 2.0 * factor

    def test_perception_noise_empty(self):
        prior = build_prior("gpt-4o")
        assert prior.perception_noise([]).shape == (0,)
