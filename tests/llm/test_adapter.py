"""Tests for the LoRA adapter."""

import numpy as np
import pytest

from repro.llm.adapter import LoRAAdapter


@pytest.fixture
def adapter():
    return LoRAAdapter.init(d=10, k=4, rank=8, alpha=16.0, aux_dim=3, seed=1)


class TestLoRAAdapter:
    def test_zero_delta_at_init(self, adapter):
        assert np.allclose(adapter.delta(), 0.0)
        assert adapter.update_norm() == 0.0

    def test_scaling_is_alpha_over_rank(self, adapter):
        assert adapter.scaling == 16.0 / 8

    def test_logit_delta_zero_at_init(self, adapter):
        x = np.random.default_rng(0).random((5, 10))
        v = np.ones(4)
        assert np.allclose(adapter.logit_delta(x, v), 0.0)

    def test_logit_delta_matches_full_delta(self, adapter):
        rng = np.random.default_rng(1)
        adapter.B[:] = rng.standard_normal(adapter.B.shape)
        x = rng.random((5, 10))
        v = rng.random(4)
        direct = x @ adapter.delta().T @ v
        assert np.allclose(adapter.logit_delta(x, v), direct)

    def test_aux_predict_shape(self, adapter):
        x = np.random.default_rng(0).random((6, 10))
        assert adapter.aux_predict(x).shape == (6, 3)

    def test_aux_predict_empty_when_no_aux(self):
        adapter = LoRAAdapter.init(d=10, k=4, rank=8, seed=0)
        x = np.zeros((2, 10))
        assert adapter.aux_predict(x).shape == (2, 0)

    def test_copy_is_deep(self, adapter):
        clone = adapter.copy()
        clone.B += 1.0
        assert not np.allclose(clone.B, adapter.B)

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError, match="rank"):
            LoRAAdapter.init(d=4, k=2, rank=0)

    def test_init_deterministic(self):
        a = LoRAAdapter.init(d=6, k=2, rank=4, seed=7)
        b = LoRAAdapter.init(d=6, k=2, rank=4, seed=7)
        assert np.allclose(a.A, b.A)
