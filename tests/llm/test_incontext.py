"""Tests for in-context learning (few-shot matching)."""

import numpy as np
import pytest

from repro.core.finetuning import make_training_examples
from repro.datasets.registry import load_dataset
from repro.eval.metrics import f1_score
from repro.llm.incontext import FewShotMatcher, build_fewshot_prompt
from repro.llm.model import build_model


@pytest.fixture(scope="module")
def wdc():
    return load_dataset("wdc-small")


@pytest.fixture(scope="module")
def model():
    return build_model("llama-3.1-8b")


class TestConstruction:
    def test_invalid_k(self, model, wdc):
        with pytest.raises(ValueError, match="k must be positive"):
            FewShotMatcher(model, wdc.train, k=0)

    def test_unknown_selection(self, model, wdc):
        with pytest.raises(ValueError, match="selection"):
            FewShotMatcher(model, wdc.train, selection="psychic")

    def test_small_pool_rejected(self, model, wdc):
        with pytest.raises(ValueError, match="pool"):
            FewShotMatcher(model, wdc.train.subset(range(2)), k=6)

    def test_fine_tuned_model_rejected(self, model, wdc):
        examples = make_training_examples(wdc.train.subset(range(100)))
        from repro.training.config import open_source_defaults

        tuned, _ = model.fine_tune(
            examples, config=open_source_defaults().with_epochs(1),
            training_set="icl-reject",
        )
        with pytest.raises(ValueError, match="zero-shot"):
            FewShotMatcher(tuned, wdc.train)


class TestPromptRendering:
    def test_demos_precede_query(self, model, wdc):
        matcher = FewShotMatcher(model, wdc.train, k=3)
        pair = wdc.test.pairs[0]
        prompt = matcher.prompt_for(pair)
        assert prompt.count("Answer:") == 4  # 3 demos + query
        assert prompt.rstrip().endswith("Answer:")
        assert pair.left.description in prompt

    def test_build_fewshot_prompt_labels(self, wdc):
        demos = wdc.train.pairs[:2]
        prompt = build_fewshot_prompt(wdc.test.pairs[0], list(demos))
        for demo in demos:
            assert ("Yes." if demo.label else "No.") in prompt


class TestFewShotEffect:
    def test_improves_over_zero_shot(self, model, wdc):
        """Demonstrations calibrate the threshold (the ICL literature's
        core effect) — F1 rises over zero-shot on the miscalibrated model."""
        labels = np.array(wdc.test.labels())
        zero = f1_score(labels, model.predict_pairs(wdc.test.pairs)).f1
        few = FewShotMatcher(model, wdc.train, k=6)
        few_f1 = f1_score(labels, few.predict_pairs(wdc.test.pairs)).f1
        assert few_f1 > zero

    def test_fewshot_below_finetuning(self, model, wdc):
        """The paper's motivation: fine-tuning beats in-context learning."""
        from repro.core.finetuning import finetune_model

        labels = np.array(wdc.test.labels())
        few = FewShotMatcher(model, wdc.train, k=6)
        few_f1 = f1_score(labels, few.predict_pairs(wdc.test.pairs)).f1
        tuned = finetune_model("llama-3.1-8b", "wdc-small").model
        ft_f1 = f1_score(labels, tuned.predict_pairs(wdc.test.pairs)).f1
        assert ft_f1 > few_f1

    def test_knn_at_least_matches_random(self, model, wdc):
        labels = np.array(wdc.test.labels()[:600])
        pairs = wdc.test.pairs[:600]
        random_f1 = f1_score(
            labels, FewShotMatcher(model, wdc.train, k=6).predict_pairs(pairs)
        ).f1
        knn_f1 = f1_score(
            labels,
            FewShotMatcher(model, wdc.train, k=6, selection="knn").predict_pairs(pairs),
        ).f1
        # per-query calibration from 6 neighbours is noisier than one global
        # shift; both must clearly beat zero-shot, and stay comparable
        zero_f1 = f1_score(labels, model.predict_pairs(pairs)).f1
        assert knn_f1 > zero_f1
        assert knn_f1 >= random_f1 - 4.0

    def test_deterministic(self, model, wdc):
        few = FewShotMatcher(model, wdc.train, k=6)
        a = few.predict_pairs(wdc.test.pairs[:50])
        b = few.predict_pairs(wdc.test.pairs[:50])
        assert np.array_equal(a, b)
