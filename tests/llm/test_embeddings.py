"""Tests for the embedding model."""

import numpy as np
import pytest

from repro.llm.embeddings import EmbeddingModel


@pytest.fixture(scope="module")
def embedding():
    return EmbeddingModel(dim=32, buckets=128, seed=3)


class TestEmbeddingModel:
    def test_unit_norm(self, embedding):
        vec = embedding.embed("some text here")
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_empty_text_zero_vector(self, embedding):
        # no n-grams still hashes the padding; norm is finite
        vec = embedding.embed("")
        assert vec.shape == (32,)

    def test_deterministic(self):
        a = EmbeddingModel(dim=16, seed=1).embed("abc")
        b = EmbeddingModel(dim=16, seed=1).embed("abc")
        assert np.allclose(a, b)

    def test_seed_changes_projection(self):
        a = EmbeddingModel(dim=16, seed=1).embed("abc")
        b = EmbeddingModel(dim=16, seed=2).embed("abc")
        assert not np.allclose(a, b)

    def test_similar_texts_closer_than_dissimilar(self, embedding):
        base = embedding.embed("jabra evolve 80 stereo headset")
        near = embedding.embed("jabra evolve 80 headset stereo")
        far = embedding.embed("office suite 2007 professional")
        assert embedding.cosine(base, near) > embedding.cosine(base, far)

    def test_embed_many_stacks(self, embedding):
        matrix = embedding.embed_many(["a b c", "d e f"])
        assert matrix.shape == (2, 32)

    def test_embed_many_empty(self, embedding):
        assert embedding.embed_many([]).shape == (0, 32)

    def test_nearest_returns_self_first(self, embedding):
        texts = ["alpha beta", "gamma delta", "alpha beta gamma"]
        corpus = embedding.embed_many(texts)
        nearest = embedding.nearest(embedding.embed("alpha beta"), corpus, k=2)
        assert nearest[0] == 0

    def test_nearest_empty_corpus(self, embedding):
        assert embedding.nearest(embedding.embed("x"), np.zeros((0, 32))) == []

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            EmbeddingModel(dim=0)
