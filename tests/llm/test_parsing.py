"""Tests for Narayan-style answer parsing."""

import pytest

from repro.llm.parsing import parse_yes_no


class TestParseYesNo:
    @pytest.mark.parametrize(
        "response",
        [
            "Yes.",
            "Yes, they match.",
            "yes — same product",
            "Based on the details, yes, the two descriptions refer to the same entity.",
            "The two entities are the same entity.",
        ],
    )
    def test_affirmative(self, response):
        assert parse_yes_no(response) is True

    @pytest.mark.parametrize(
        "response",
        [
            "No.",
            "No, the model numbers differ.",
            "These are different products entirely — not a match.",
        ],
    )
    def test_negative(self, response):
        assert parse_yes_no(response) is False

    @pytest.mark.parametrize(
        "response",
        [
            "It is unclear.",
            "Cannot be determined from the given text.",
            "",
        ],
    )
    def test_unparseable(self, response):
        assert parse_yes_no(response) is None

    def test_earlier_marker_wins(self):
        assert parse_yes_no("Yes. Although no spec is shown.") is True
        assert parse_yes_no("No — even though they look the same, yes similar.") is False


class TestExtendedPhrasings:
    """Table-driven coverage of common free-form phrasings."""

    @pytest.mark.parametrize(
        ("response", "expected"),
        [
            # bare verdict words
            ("Match", True),
            ("match.", True),
            ("Not a match", False),
            ("not a match.", False),
            ("True", True),
            ("false", False),
            ("True.", True),
            ("False — see the model numbers.", False),
            # verb forms
            ("These two descriptions match.", True),
            ("The records matched on every attribute.", True),
            ("A matching pair.", True),
            ("They do not match.", False),
            ("The titles does not match here.", False),
            ("They don't match.", False),
            ("Mismatch: the brands differ.", False),
            ("This is not a matching pair.", False),
            # equivalence phrasings
            ("The two are identical.", True),
            ("Equivalent products.", True),
            ("Same product, different packaging description.", True),
            ("These are the same items listed twice.", True),
            ("They are not the same product.", False),
            ("Different items from different brands.", False),
            ("Two different records entirely.", False),
            ("Clearly a different entity.", False),
            # first-occurrence tie-breaks with the new patterns
            ("Not a match — though the names are identical.", False),
            ("False. They may look like a match but are not.", False),
            ("True: this is not a trick, they match.", True),
        ],
    )
    def test_verdict(self, response, expected):
        assert parse_yes_no(response) is expected

    @pytest.mark.parametrize(
        "response",
        [
            "Possibly related variants.",
            "The evidence is inconclusive either way.",
        ],
    )
    def test_still_unparseable(self, response):
        assert parse_yes_no(response) is None


class TestNearMissPhrasings:
    """Word-boundary corpus: phrasings one marker-regex slip away from a
    mis-parse.  These exact strings also anchor the lint marker rule's
    notion of 'classifies correctly'."""

    @pytest.mark.parametrize(
        ("response", "expected"),
        [
            # negation embedded before the affirmative word
            ("cannot match", False),
            ("They cannot match given the brands.", False),
            ("These can't match.", False),
            ("The records cannot be matched.", False),
            ("They cannot possibly be a match.", False),
            ("The two cannot be the same entity.", False),
            ("They can't be the same product.", False),
            # derived negative forms with no standalone 'no'
            ("unmatched", False),
            ("The pair remains unmatched.", False),
            ("A non-matching pair.", False),
            ("Non-match: the specs differ.", False),
            # idioms that contain a negative word but answer affirmatively
            ("no doubt they match", True),
            ("No doubt these refer to the same product.", True),
            ("There is no doubt they match.", True),
            ("Without a doubt, the same item.", True),
            ("There's no question these records match.", True),
            # idiom plus a genuine negative still parses negative
            ("There is no doubt they do not match.", False),
            ("No doubt about the verdict: not a match.", False),
        ],
    )
    def test_corpus(self, response, expected):
        assert parse_yes_no(response) is expected

    def test_cannot_alone_stays_unparseable(self):
        # "Cannot be determined" hedges; it must not read as a negative.
        assert parse_yes_no("Cannot be determined from the given text.") is None
