"""Tests for Narayan-style answer parsing."""

import pytest

from repro.llm.parsing import parse_yes_no


class TestParseYesNo:
    @pytest.mark.parametrize(
        "response",
        [
            "Yes.",
            "Yes, they match.",
            "yes — same product",
            "Based on the details, yes, the two descriptions refer to the same entity.",
            "The two entities are the same entity.",
        ],
    )
    def test_affirmative(self, response):
        assert parse_yes_no(response) is True

    @pytest.mark.parametrize(
        "response",
        [
            "No.",
            "No, the model numbers differ.",
            "These are different products entirely — not a match.",
        ],
    )
    def test_negative(self, response):
        assert parse_yes_no(response) is False

    @pytest.mark.parametrize(
        "response",
        [
            "It is unclear.",
            "Cannot be determined from the given text.",
            "",
        ],
    )
    def test_unparseable(self, response):
        assert parse_yes_no(response) is None

    def test_earlier_marker_wins(self):
        assert parse_yes_no("Yes. Although no spec is shown.") is True
        assert parse_yes_no("No — even though they look the same, yes similar.") is False


class TestExtendedPhrasings:
    """Table-driven coverage of common free-form phrasings."""

    @pytest.mark.parametrize(
        ("response", "expected"),
        [
            # bare verdict words
            ("Match", True),
            ("match.", True),
            ("Not a match", False),
            ("not a match.", False),
            ("True", True),
            ("false", False),
            ("True.", True),
            ("False — see the model numbers.", False),
            # verb forms
            ("These two descriptions match.", True),
            ("The records matched on every attribute.", True),
            ("A matching pair.", True),
            ("They do not match.", False),
            ("The titles does not match here.", False),
            ("They don't match.", False),
            ("Mismatch: the brands differ.", False),
            ("This is not a matching pair.", False),
            # equivalence phrasings
            ("The two are identical.", True),
            ("Equivalent products.", True),
            ("Same product, different packaging description.", True),
            ("These are the same items listed twice.", True),
            ("They are not the same product.", False),
            ("Different items from different brands.", False),
            ("Two different records entirely.", False),
            ("Clearly a different entity.", False),
            # first-occurrence tie-breaks with the new patterns
            ("Not a match — though the names are identical.", False),
            ("False. They may look like a match but are not.", False),
            ("True: this is not a trick, they match.", True),
        ],
    )
    def test_verdict(self, response, expected):
        assert parse_yes_no(response) is expected

    @pytest.mark.parametrize(
        "response",
        [
            "Possibly related variants.",
            "The evidence is inconclusive either way.",
        ],
    )
    def test_still_unparseable(self, response):
        assert parse_yes_no(response) is None
