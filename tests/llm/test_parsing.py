"""Tests for Narayan-style answer parsing."""

import pytest

from repro.llm.parsing import parse_yes_no


class TestParseYesNo:
    @pytest.mark.parametrize(
        "response",
        [
            "Yes.",
            "Yes, they match.",
            "yes — same product",
            "Based on the details, yes, the two descriptions refer to the same entity.",
            "The two entities are the same entity.",
        ],
    )
    def test_affirmative(self, response):
        assert parse_yes_no(response) is True

    @pytest.mark.parametrize(
        "response",
        [
            "No.",
            "No, the model numbers differ.",
            "These are different products entirely — not a match.",
        ],
    )
    def test_negative(self, response):
        assert parse_yes_no(response) is False

    @pytest.mark.parametrize(
        "response",
        [
            "It is unclear.",
            "Cannot be determined from the given text.",
            "",
        ],
    )
    def test_unparseable(self, response):
        assert parse_yes_no(response) is None

    def test_earlier_marker_wins(self):
        assert parse_yes_no("Yes. Although no spec is shown.") is True
        assert parse_yes_no("No — even though they look the same, yes similar.") is False
