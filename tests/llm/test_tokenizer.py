"""Tests for the lightweight tokenizer."""

from repro.llm.tokenizer import char_ngrams, count_tokens, levenshtein, tokenize


class TestCharNgrams:
    def test_padding_includes_boundaries(self):
        grams = char_ngrams("ab")
        assert any(g.startswith(" ") for g in grams)

    def test_same_tokens_same_grams(self):
        assert char_ngrams("Jabra Evolve") == char_ngrams("jabra, EVOLVE!")

    def test_short_text(self):
        assert char_ngrams("") != set()


class TestCountTokens:
    def test_scales_with_words(self):
        assert count_tokens("one two three") >= 3

    def test_long_words_cost_more(self):
        assert count_tokens("internationalization") > 1

    def test_empty(self):
        assert count_tokens("") == 0


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_substitution(self):
        assert levenshtein("pg-730", "pg-731") == 1

    def test_insertion(self):
        assert levenshtein("abc", "abxc") == 1

    def test_symmetric(self):
        assert levenshtein("kitten", "sitting") == levenshtein("sitting", "kitten") == 3

    def test_cap_early_exit(self):
        assert levenshtein("aaaa", "bbbb", cap=1) == 2  # reported as cap+1

    def test_cap_length_difference(self):
        assert levenshtein("a", "abcdef", cap=2) == 3
