"""Tests for the pair-feature representation."""

import numpy as np
import pytest

from repro.llm.features import (
    FEATURE_GROUPS,
    FEATURE_NAMES,
    NUM_FEATURES,
    clear_feature_cache,
    featurize_pair,
    featurize_pairs,
    featurize_texts,
)

IDX = {name: i for i, name in enumerate(FEATURE_NAMES)}


class TestFeatureInventory:
    def test_groups_cover_expected_values(self):
        assert set(FEATURE_GROUPS.values()) == {
            "generic", "product", "software", "scholar", "bias"
        }

    def test_bias_is_last(self):
        assert FEATURE_NAMES[-1] == "bias"


class TestFeaturizePair:
    def test_shape_and_range(self):
        phi = featurize_pair("Jabra Evolve 80 stereo", "jabra evolve 80")
        assert phi.shape == (NUM_FEATURES,)
        assert np.all(phi >= 0.0) and np.all(phi <= 1.0)

    def test_bias_always_one(self):
        assert featurize_pair("", "")[IDX["bias"]] == 1.0

    def test_identical_strings_high_similarity(self):
        phi = featurize_pair("Sonavik Vault 9a ssd", "Sonavik Vault 9a ssd")
        assert phi[IDX["token_jaccard"]] == 1.0
        assert phi[IDX["char3_cosine"]] > 0.99
        assert phi[IDX["seq_ratio"]] == 1.0

    def test_code_match_through_compound_split(self):
        phi = featurize_pair("Brixon Zen-239 phone", "Brixon Zen 239 phone")
        assert phi[IDX["code_match"]] == 1.0
        assert phi[IDX["code_conflict"]] == 0.0

    def test_near_code_detects_siblings(self):
        phi = featurize_pair("Brixon Zen 239 phone", "Brixon Zen 238 phone")
        assert phi[IDX["near_code_match"]] == 1.0
        assert phi[IDX["code_conflict"]] == 1.0

    def test_sku_isolated_from_token_features(self):
        bare = featurize_pair("Wolvik Optio y57 camera", "Wolvik Optio y57 camera")
        with_sku = featurize_pair(
            "Wolvik Optio y57 camera", "Wolvik Optio y57 camera (8850-5035-4591)"
        )
        assert with_sku[IDX["token_jaccard"]] == bare[IDX["token_jaccard"]]
        assert with_sku[IDX["sku_match"]] == 0.0  # only one side shows it

    def test_sku_match_and_conflict(self):
        match = featurize_pair("a (123-456-789)", "b (123-456-789)")
        conflict = featurize_pair("a (123-456-789)", "a (987-654-321)")
        assert match[IDX["sku_match"]] == 1.0
        assert conflict[IDX["sku_conflict"]] == 1.0

    def test_version_conflict(self):
        phi = featurize_pair("office suite 2007 pro", "office suite 2009 pro")
        assert phi[IDX["version_conflict"]] == 1.0
        assert phi[IDX["version_match"]] == 0.0

    def test_edition_aliases_canonicalized(self):
        phi = featurize_pair("draw pro 3.0", "draw professional 3.0")
        assert phi[IDX["edition_match"]] == 1.0
        assert phi[IDX["edition_conflict"]] == 0.0

    def test_scholar_fields(self):
        left = "a. smith, b. jones; query optimization at scale; vldb; 2008"
        right = "alice smith, bob jones; query optimization at scale; proceedings of the vldb endowment; 2008"
        phi = featurize_pair(left, right)
        assert phi[IDX["fielded_both"]] == 1.0
        assert phi[IDX["author_overlap"]] == 1.0
        assert phi[IDX["title_field_sim"]] == 1.0
        assert phi[IDX["venue_compat"]] == 1.0
        assert phi[IDX["year_field_match"]] == 1.0

    def test_scholar_year_conflict(self):
        left = "a. smith; a title; vldb; 2008"
        right = "a. smith; a title; vldb; 2009"
        phi = featurize_pair(left, right)
        assert phi[IDX["year_field_conflict"]] == 1.0

    def test_venue_conflict(self):
        left = "a; t; vldb; 2008"
        right = "a; t; sigmod; 2008"
        phi = featurize_pair(left, right)
        assert phi[IDX["venue_conflict"]] == 1.0

    def test_product_titles_not_fielded(self):
        phi = featurize_pair("Brixon Zen 239", "Brixon Zen 238")
        assert phi[IDX["fielded_both"]] == 0.0
        assert phi[IDX["author_overlap"]] == 0.0

    def test_etal_detected(self):
        left = "a. smith, et al; title words here; vldb; 2008"
        phi = featurize_pair(left, left)
        assert phi[IDX["etal_present"]] == 1.0


class TestFeaturizePairs:
    def test_matrix_shape(self, product_split):
        phi = featurize_pairs(product_split.pairs[:10])
        assert phi.shape == (10, NUM_FEATURES)

    def test_empty(self):
        assert featurize_pairs([]).shape == (0, NUM_FEATURES)

    def test_cache_consistency(self):
        clear_feature_cache()
        a = featurize_texts("x y z", "x y")
        b = featurize_texts("x y z", "x y")
        assert a is b  # memoized object identity
        clear_feature_cache()
        c = featurize_texts("x y z", "x y")
        assert np.allclose(a, c)
