"""Tests for the ChatModel facade."""

import numpy as np
import pytest

from repro.llm.model import build_model
from repro.llm.parsing import parse_yes_no
from repro.prompts.templates import COMPLEX_FORCE, DEFAULT_PROMPT, SIMPLE_FREE
from repro.training.trainer import TrainingExample


@pytest.fixture(scope="module")
def model():
    return build_model("gpt-4o-mini")


@pytest.fixture(scope="module")
def weak_model():
    return build_model("llama-3.1-8b")


@pytest.fixture(scope="module")
def tuned(weak_model, tiny_dataset_module):
    examples = [
        TrainingExample(pair=p, label=p.label) for p in tiny_dataset_module.train.pairs
    ]
    tuned, _ = weak_model.fine_tune(
        examples, valid=tiny_dataset_module.valid, training_set="tiny"
    )
    return tuned


@pytest.fixture(scope="module")
def tiny_dataset_module():
    from tests.conftest import make_product_split
    from repro.datasets.schema import Dataset

    return Dataset(
        name="tiny-m",
        domain="product",
        train=make_product_split("tiny-m-train", 60, 140, seed=31),
        valid=make_product_split("tiny-m-valid", 40, 100, seed=32),
        test=make_product_split("tiny-m-test", 40, 100, seed=33),
    )


class TestZeroShotModel:
    def test_cached(self):
        assert build_model("gpt-4o") is build_model("gpt-4o")

    def test_not_fine_tuned(self, model):
        assert not model.is_fine_tuned
        assert model.training_set == "zero-shot"

    def test_logits_deterministic(self, model, product_split):
        a = model.logits(product_split.pairs[:20])
        b = model.logits(product_split.pairs[:20])
        assert np.allclose(a, b)

    def test_logits_empty(self, model):
        assert model.logits([]).shape == (0,)

    def test_prompt_bias_varies_by_prompt(self, model):
        assert model.prompt_bias(DEFAULT_PROMPT) != model.prompt_bias(SIMPLE_FREE)

    def test_prompt_bias_deterministic(self, model):
        assert model.prompt_bias(DEFAULT_PROMPT) == model.prompt_bias(DEFAULT_PROMPT)

    def test_complete_answers_parse(self, model, product_split):
        pair = product_split.pairs[0]
        prompt = DEFAULT_PROMPT.render(pair.left.description, pair.right.description)
        response = model.complete(prompt)
        assert isinstance(response, str) and response

    def test_complete_agrees_with_predict(self, model, product_split):
        """The chat path and the vectorized path produce the same labels."""
        pairs = product_split.pairs[:40]
        vector_preds = model.predict_pairs(pairs, COMPLEX_FORCE)
        for pair, expected in zip(pairs, vector_preds):
            prompt = COMPLEX_FORCE.render(pair.left.description, pair.right.description)
            parsed = parse_yes_no(model.complete(prompt))
            assert bool(parsed) == bool(expected)

    def test_custom_prompt_wording_supported(self, model):
        response = model.complete(
            '"Are these the same item?"\nEntity 1: a\nEntity 2: b'
        )
        assert isinstance(response, str)

    def test_malformed_prompt_raises(self, model):
        with pytest.raises(ValueError, match="Entity 1"):
            model.complete("just some text")


class TestFineTunedModel:
    def test_immutability(self, weak_model, tuned):
        model = weak_model
        assert not model.is_fine_tuned
        assert tuned.is_fine_tuned
        assert tuned is not model

    def test_improves_on_training_distribution(
        self, weak_model, tuned, tiny_dataset_module
    ):
        from repro.eval.evaluator import evaluate_model

        zs = evaluate_model(weak_model, tiny_dataset_module.test).f1
        ft = evaluate_model(tuned, tiny_dataset_module.test).f1
        assert ft > zs

    def test_describe_mentions_training_set(self, tuned):
        assert "tiny" in tuned.describe()

    def test_fine_tuned_output_format(self, tuned, product_split):
        pair = product_split.pairs[0]
        prompt = DEFAULT_PROMPT.render(pair.left.description, pair.right.description)
        assert tuned.complete(prompt) in ("Yes.", "No.")

    def test_answer_pair_roundtrip(self, tuned, product_split):
        for pair in product_split.pairs[:10]:
            assert tuned.answer_pair(pair) == bool(
                tuned.predict_pairs([pair])[0]
            )

    def test_empty_training_set_raises(self, model):
        with pytest.raises(ValueError, match="empty"):
            model.fine_tune([], training_set="empty")
