"""Tests for the fine-tuning interference mechanisms."""

import numpy as np
import pytest

from repro.core.finetuning import make_training_examples
from repro.datasets.registry import load_dataset
from repro.llm.model import build_model
from repro.training.config import open_source_defaults


@pytest.fixture(scope="module")
def product_tuned():
    """Llama-8B fine-tuned on a small product set (fast config)."""
    wdc = load_dataset("wdc-small")
    base = build_model("llama-3.1-8b")
    examples = make_training_examples(wdc.train.subset(range(600)))
    tuned, _ = base.fine_tune(
        examples,
        valid=wdc.valid,
        config=open_source_defaults().with_epochs(3),
        training_set="interference-probe",
    )
    return base, tuned


class TestForgettingShrinkage:
    def test_prior_norm_shrinks(self, product_tuned):
        base, tuned = product_tuned
        assert np.linalg.norm(tuned.W0) < np.linalg.norm(base.W0)

    def test_unrehearsed_features_fade_more(self, product_tuned):
        base, tuned = product_tuned
        from repro.llm.features import FEATURE_NAMES

        ratio = np.linalg.norm(tuned.W0, axis=0) / np.maximum(
            np.linalg.norm(base.W0, axis=0), 1e-12
        )
        scholar_idx = FEATURE_NAMES.index("author_overlap")
        product_idx = FEATURE_NAMES.index("token_jaccard")
        assert ratio[scholar_idx] < ratio[product_idx]

    def test_unused_adapter_columns_zeroed(self, product_tuned):
        _, tuned = product_tuned
        from repro.llm.features import FEATURE_NAMES

        scholar_idx = FEATURE_NAMES.index("author_overlap")
        assert np.allclose(tuned.adapter.A[:, scholar_idx], 0.0)

    def test_ood_perception_amplified(self, product_tuned):
        _, tuned = product_tuned
        flat, fielded = tuned.prior.perception_scale
        assert fielded > flat  # product training degrades scholar reading

    def test_miscalibration_survives_finetuning(self, product_tuned):
        base, tuned = product_tuned
        assert np.allclose(
            base.prior.feature_bias_vector(), tuned.prior.feature_bias_vector()
        )


class TestExplanationSharpening:
    def test_structured_explanations_sharpen_perception(self):
        wdc = load_dataset("wdc-small")
        base = build_model("llama-3.1-8b")
        examples = make_training_examples(
            wdc.train.subset(range(400)), explanation_style="structured"
        )
        tuned, _ = base.fine_tune(
            examples,
            config=open_source_defaults().with_epochs(2),
            training_set="sharpen-probe",
            explanation_style="structured",
        )
        flat, _ = tuned.prior.perception_scale
        assert flat < 1.0  # in-domain perception sharpened
        assert tuned.prior.obs_sigma_scale is not None
        assert tuned.prior.obs_sigma_scale.min() < 1.0
