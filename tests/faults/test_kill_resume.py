"""Crash/recovery: journaled runs resume byte-identical after being killed."""

import pytest

from repro.datasets.schema import Split
from repro.engine import MatchingEngine
from repro.engine.retry import RetryPolicy
from repro.eval.evaluator import evaluate_model
from repro.faults import (
    CrashingBackend,
    ParityBackend,
    SimulatedCrash,
    kill_resume_roundtrip,
    synthetic_records,
)
from repro.faults.harness import resolution_snapshot
from repro.llm.model import build_model
from repro.resolve import ResolutionStore


def make_engine(seed=0, backend=None):
    return MatchingEngine(
        backend=backend if backend is not None else ParityBackend(),
        retry=RetryPolicy(timeout=1.0, seed=seed),
    )


class TestKillResumeRoundtrip:
    def test_crash_looped_ingestion_matches_uninterrupted_run(self, tmp_path):
        outcome = kill_resume_roundtrip(
            tmp_path / "wal.jsonl", seed=0, record_count=30, kill_every=3
        )
        assert outcome["crashes"] > 0, "the kill switch never engaged"
        assert outcome["identical"] is True
        assert outcome["resumed"] == outcome["reference"]

    def test_kill_every_must_make_progress(self, tmp_path):
        with pytest.raises(ValueError, match="kill_every"):
            kill_resume_roundtrip(tmp_path / "wal.jsonl", kill_every=0)


class TestTornTailRecovery:
    def reference_for(self, records, seed):
        store = ResolutionStore(make_engine(seed))
        store.ingest_all(records)
        return resolution_snapshot(store)

    def finish(self, store, records):
        for record in records:
            if record.record_id not in store:
                store.ingest(record)
        return resolution_snapshot(store)

    def test_truncated_json_tail_is_redone_on_recovery(self, tmp_path):
        seed, records = 3, synthetic_records(24, seed=3)
        reference = self.reference_for(records, seed)
        path = tmp_path / "wal.jsonl"
        store = ResolutionStore(make_engine(seed), journal=path)
        for record in records[:12]:
            store.ingest(record)
        # A crash mid-append: half a decision line, no trailing newline.
        with open(path, "ab") as handle:
            handle.write(b'{"type": "decision", "left": "r0')
        resumed = ResolutionStore.recover(path, make_engine(seed))
        assert self.finish(resumed, records) == reference

    def test_missing_final_newline_is_redone_on_recovery(self, tmp_path):
        # The strongest torn-write shape: the last *real* entry parses as
        # JSON but its acknowledging newline never hit the disk, so the
        # work it describes must be forgotten and redone.
        seed, records = 4, synthetic_records(24, seed=4)
        reference = self.reference_for(records, seed)
        path = tmp_path / "wal.jsonl"
        store = ResolutionStore(make_engine(seed), journal=path)
        for record in records[:12]:
            store.ingest(record)
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        path.write_bytes(raw[:-1])  # chop the final fsync'd newline
        resumed = ResolutionStore.recover(path, make_engine(seed))
        assert self.finish(resumed, records) == reference

    def test_fresh_store_refuses_an_existing_journal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = ResolutionStore(make_engine(), journal=path)
        store.ingest_all(synthetic_records(6))
        # Silently appending a second run would interleave two histories.
        with pytest.raises(ValueError, match="recover"):
            ResolutionStore(make_engine(), journal=path)


class TestEvalJournalResume:
    CHUNK = 4

    def split(self, product_split):
        return Split(name="eval-journal", pairs=product_split.pairs[:40])

    def test_killed_evaluation_resumes_to_identical_scores(
        self, tmp_path, product_split
    ):
        split = self.split(product_split)
        model = build_model("gpt-4o-mini")

        clean_path = tmp_path / "clean.jsonl"
        clean = evaluate_model(
            model, split, engine=make_engine(),
            journal=clean_path, journal_chunk=self.CHUNK,
        )

        # The same evaluation, but the backend dies after 3 batches.
        crash_path = tmp_path / "crash.jsonl"
        crasher = make_engine(
            backend=CrashingBackend(ParityBackend(), kill_after=3)
        )
        with pytest.raises(SimulatedCrash):
            evaluate_model(
                model, split, engine=crasher,
                journal=crash_path, journal_chunk=self.CHUNK,
            )
        journaled = crash_path.read_text().count('"type": "prediction"')
        assert 0 < journaled < len(split.pairs), "crash landed mid-run"

        resumed = evaluate_model(
            model, split, engine=make_engine(),
            journal=crash_path, journal_chunk=self.CHUNK,
        )
        assert resumed.scores == clean.scores
        # Entries are appended in index order, so a resumed journal is
        # byte-identical to one written by an uninterrupted run.
        assert crash_path.read_bytes() == clean_path.read_bytes()

    def test_completed_journal_short_circuits_prediction(
        self, tmp_path, product_split
    ):
        split = self.split(product_split)
        model = build_model("gpt-4o-mini")
        path = tmp_path / "wal.jsonl"
        first = evaluate_model(
            model, split, engine=make_engine(),
            journal=path, journal_chunk=self.CHUNK,
        )
        before = path.read_bytes()

        class Exploding:
            name = "exploding"

            def generate(self, prompts):
                raise AssertionError("a finished journal must not re-predict")

        replayed = evaluate_model(
            model, split, engine=make_engine(backend=Exploding()),
            journal=path, journal_chunk=self.CHUNK,
        )
        assert replayed.scores == first.scores
        assert path.read_bytes() == before  # nothing appended

    def test_journal_pinned_to_its_evaluation(self, tmp_path, product_split):
        from repro.faults import JournalError

        split = self.split(product_split)
        model = build_model("gpt-4o-mini")
        path = tmp_path / "wal.jsonl"
        evaluate_model(model, split, engine=make_engine(),
                       journal=path, journal_chunk=self.CHUNK)
        other = Split(name="other-split", pairs=product_split.pairs[:40])
        with pytest.raises(JournalError, match="does not match"):
            evaluate_model(model, other, engine=make_engine(),
                           journal=path, journal_chunk=self.CHUNK)
