"""Shard-level chaos: kill and resume individual shards mid-ingest.

Wraps :func:`repro.faults.sharded_kill_resume_roundtrip` — the harness
the ``repro-em chaos --shards N`` CLI drives — and asserts its verdict
at test scale: crashes really happened, conservation invariants held,
and the final clustering is byte-identical to an unsharded uninterrupted
run of the same seeded workload.
"""

import pytest

from repro.faults import (
    sharded_conservation_violations,
    sharded_kill_resume_roundtrip,
)


class TestShardedKillResume:
    def test_two_shards_killed_mid_ingest_still_byte_identical(
        self, tmp_path
    ):
        outcome = sharded_kill_resume_roundtrip(
            tmp_path, seed=0, record_count=40, shards=4, kill_every=3
        )
        assert outcome["kills"], "no shard was ever killed"
        assert outcome["crashes"] >= 1, "no kill landed mid-ingest"
        assert outcome["violations"] == []
        assert outcome["identical"] is True
        assert outcome["resumed"]["clusters"] == (
            outcome["reference"]["clusters"]
        )
        assert outcome["resumed"]["golden"] == outcome["reference"]["golden"]

    @pytest.mark.parametrize("seed", [1, 2])
    def test_verdict_holds_across_seeds(self, tmp_path, seed):
        outcome = sharded_kill_resume_roundtrip(
            tmp_path, seed=seed, record_count=32, shards=4, kill_every=3
        )
        assert outcome["identical"] is True
        assert outcome["violations"] == []

    def test_explicit_kill_targets(self, tmp_path):
        outcome = sharded_kill_resume_roundtrip(
            tmp_path, seed=0, record_count=32, shards=4, kill_every=2,
            kill_shards=(1, 3),
        )
        assert outcome["targets"] == [1, 3]
        assert {kill["shard"] for kill in outcome["kills"]} <= {1, 3}
        assert outcome["identical"] is True

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            sharded_kill_resume_roundtrip(tmp_path, shards=0)
        with pytest.raises(ValueError, match="kill_every"):
            sharded_kill_resume_roundtrip(tmp_path, kill_every=0)
        with pytest.raises(ValueError, match="out of range"):
            sharded_kill_resume_roundtrip(
                tmp_path, shards=2, kill_shards=(5,)
            )


class TestConservation:
    def test_clean_run_has_no_violations(self, tmp_path):
        from repro.engine import MatchingEngine
        from repro.engine.retry import RetryPolicy
        from repro.faults import ParityBackend, synthetic_records
        from repro.resolve.sharded import ShardedResolutionStore

        engine = MatchingEngine(
            backend=ParityBackend(), retry=RetryPolicy(timeout=1.0, seed=0)
        )
        with ShardedResolutionStore(engine, tmp_path, shards=4) as store:
            store.ingest_all(synthetic_records(24))
            assert sharded_conservation_violations(store) == []
