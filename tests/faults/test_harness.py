"""Chaos invariant harness: swept runs stay clean, reports are deterministic.

The sweep test here IS the PR's acceptance criterion: fault rate 0.3
across three seeds must produce zero invariant violations while every
fault class in the taxonomy is actually observed.
"""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    build_chaos_engine,
    chaos_match,
    chaos_resolve,
    read_journal,
    sweep,
)


class TestSweep:
    def test_grid_is_violation_free_and_covers_the_taxonomy(self):
        reports = sweep(seeds=(0, 1, 2), rates=(0.0, 0.3))
        violations = [v for r in reports for v in r.violations]
        assert violations == []
        assert len(reports) == 3 * 2 * 2  # seeds × rates × workloads

        observed = set()
        for report in reports:
            if report.fault_rate > 0:
                observed |= set(report.injected)
        assert observed == set(FAULT_KINDS), (
            f"taxonomy not fully exercised: missing {set(FAULT_KINDS) - observed}"
        )

    def test_rate_zero_runs_inject_nothing(self):
        for report in sweep(seeds=(0,), rates=(0.0,)):
            assert report.injected == {}
            assert report.stats["fallbacks"] == 0


class TestDeterminism:
    def test_same_seed_match_runs_are_byte_identical(self):
        a = chaos_match(seed=1, fault_rate=0.3)
        b = chaos_match(seed=1, fault_rate=0.3)
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )

    def test_same_seed_resolve_runs_are_byte_identical(self):
        a = chaos_resolve(seed=2, fault_rate=0.3)
        b = chaos_resolve(seed=2, fault_rate=0.3)
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )

    def test_different_seeds_fingerprint_differently(self):
        assert (
            chaos_match(seed=0, fault_rate=0.3).fingerprint
            != chaos_match(seed=1, fault_rate=0.3).fingerprint
        )


class TestReportSurface:
    def test_ok_reflects_violations(self):
        report = chaos_match(seed=0, fault_rate=0.3)
        assert report.ok and report.as_dict()["ok"]
        assert report.requests == 96
        assert sum(report.sources.values()) == report.requests

    def test_resolve_run_writes_a_replayable_journal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        report = chaos_resolve(seed=0, fault_rate=0.0, record_count=12,
                               journal=path)
        assert report.ok
        entries, torn = read_journal(path, expect={"kind": "resolve"})
        assert not torn
        types = {entry["type"] for entry in entries}
        assert {"record", "decision", "commit"} <= types


class TestFlappingWalk:
    """A scripted plan drives the breaker closed→open→half-open→closed."""

    def batch(self, tag):
        # 8 unique pairs = exactly one scheduler flush = one backend call
        # per retry attempt, so scripted call indices line up with batches.
        return [(f"{tag} item {i} alpha", f"{tag} item {i} beta")
                for i in range(8)]

    def test_breaker_walks_every_state_on_the_scripted_schedule(self):
        engine, backend, clock = build_chaos_engine(FaultPlan.flapping(3))

        # calls 0-2: transport errors exhaust the retry budget and trip
        # the breaker (threshold 3). The batch degrades to the fallback.
        first = engine.match_pairs(self.batch("one"))
        assert engine.breaker.state == "open"
        assert engine.breaker.times_opened == 1
        assert {r.source for r in first} == {"fallback"}

        # While open and inside the cooldown the engine fails fast:
        # the backend is never consulted (call index does not advance).
        calls_before = backend.calls
        second = engine.match_pairs(self.batch("two"))
        assert backend.calls == calls_before
        assert {r.source for r in second} == {"fallback"}

        # Cooldown elapses → half-open probe. Call 3 is the scripted
        # timeout: the probe blows its budget, the breaker re-opens.
        clock.advance(2.1)
        third = engine.match_pairs(self.batch("three"))
        assert engine.breaker.state == "open"
        assert engine.breaker.times_opened == 2
        assert {r.source for r in third} == {"fallback"}

        # Second cooldown → clean probe (call 4) closes the circuit.
        clock.advance(2.1)
        fourth = engine.match_pairs(self.batch("four"))
        assert engine.breaker.state == "closed"
        assert {r.source for r in fourth} == {"backend"}

        stats = engine.stats.as_dict()
        assert stats["transport_errors"] == 3
        assert stats["timeouts"] == 1
        assert stats["circuit_open"] == 2
        assert backend.injected_counts() == {"error": 3, "timeout": 1}
