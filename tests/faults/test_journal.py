"""Write-ahead journal: append/fsync, torn-tail detection, repair."""

import json

import pytest

from repro.faults import (
    JOURNAL_VERSION,
    JournalError,
    JournalWriter,
    read_journal,
    repair,
)


def write_entries(path, *entries, header=None):
    with JournalWriter(path, header=header or {"kind": "test"}) as writer:
        for entry in entries:
            writer.append(entry)


class TestWriter:
    def test_fresh_file_gets_header_then_entries(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["version"] == JOURNAL_VERSION
        assert header["kind"] == "test"
        assert json.loads(lines[1]) == {"type": "work", "n": 1}

    def test_reopening_appends_without_second_header(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        write_entries(path, {"type": "work", "n": 2})  # reopen same file
        records, torn = read_journal(path)
        assert not torn
        assert [r["n"] for r in records] == [1, 2]
        headers = [l for l in path.read_text().splitlines()
                   if json.loads(l)["type"] == "header"]
        assert len(headers) == 1

    def test_every_line_ends_with_newline(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work"})
        assert path.read_bytes().endswith(b"\n")


class TestRead:
    def test_header_is_validated_against_expect(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, header={"kind": "resolve", "mode": "pairs"})
        records, torn = read_journal(path, expect={"kind": "resolve"})
        assert records == [] and not torn
        with pytest.raises(JournalError, match="does not match"):
            read_journal(path, expect={"kind": "eval"})

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalError, match="empty journal"):
            read_journal(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"type": "work"}\n')
        with pytest.raises(JournalError, match="not a header"):
            read_journal(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"type": "header", "version": 99}\n')
        with pytest.raises(JournalError, match="version"):
            read_journal(path)


class TestTornWrites:
    def fixture(self, tmp_path, tail: bytes):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        with open(path, "ab") as handle:
            handle.write(tail)
        return path

    def test_truncated_json_tail_is_dropped(self, tmp_path):
        path = self.fixture(tmp_path, b'{"type": "work", "n":')
        records, torn = read_journal(path)
        assert torn
        assert [r["n"] for r in records] == [1]

    def test_parseable_tail_without_newline_is_still_torn(self, tmp_path):
        # The JSON is complete but the fsync'd newline never landed: the
        # writer never acknowledged this entry, so it must be redone.
        path = self.fixture(tmp_path, b'{"type": "work", "n": 2}')
        records, torn = read_journal(path)
        assert torn
        assert [r["n"] for r in records] == [1]

    def test_midfile_corruption_is_not_a_torn_write(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        with open(path, "ab") as handle:
            handle.write(b"@@garbage@@\n")
        write_entries(path, {"type": "work", "n": 2})  # appends after garbage
        with pytest.raises(JournalError, match="corrupt journal line"):
            read_journal(path)


class TestRepair:
    def test_repair_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        clean_bytes = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b'{"type": "work", "n":')
        assert repair(path) is True
        assert path.read_bytes() == clean_bytes
        _, torn = read_journal(path)
        assert not torn

    def test_repair_is_a_noop_on_clean_journals(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        before = path.read_bytes()
        assert repair(path) is False
        assert path.read_bytes() == before

    def test_append_after_repair_yields_a_valid_journal(self, tmp_path):
        # Without the repair, the new entry would be concatenated onto the
        # crash fragment and corrupt both lines.
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        with open(path, "ab") as handle:
            handle.write(b'{"type": "work", "n": 2}')  # torn
        repair(path)
        write_entries(path, {"type": "work", "n": 3})
        records, torn = read_journal(path)
        assert not torn
        assert [r["n"] for r in records] == [1, 3]
