"""Write-ahead journal: append/fsync, torn-tail detection, repair."""

import json

import pytest

from repro.faults import (
    JOURNAL_VERSION,
    JournalError,
    JournalWriter,
    fsync_dir,
    journal_header,
    read_journal,
    repair,
)


def write_entries(path, *entries, header=None):
    with JournalWriter(path, header=header or {"kind": "test"}) as writer:
        for entry in entries:
            writer.append(entry)


class TestWriter:
    def test_fresh_file_gets_header_then_entries(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["version"] == JOURNAL_VERSION
        assert header["kind"] == "test"
        assert json.loads(lines[1]) == {"type": "work", "n": 1}

    def test_reopening_appends_without_second_header(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        write_entries(path, {"type": "work", "n": 2})  # reopen same file
        records, torn = read_journal(path)
        assert not torn
        assert [r["n"] for r in records] == [1, 2]
        headers = [l for l in path.read_text().splitlines()
                   if json.loads(l)["type"] == "header"]
        assert len(headers) == 1

    def test_every_line_ends_with_newline(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work"})
        assert path.read_bytes().endswith(b"\n")


class TestRead:
    def test_header_is_validated_against_expect(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, header={"kind": "resolve", "mode": "pairs"})
        records, torn = read_journal(path, expect={"kind": "resolve"})
        assert records == [] and not torn
        with pytest.raises(JournalError, match="does not match"):
            read_journal(path, expect={"kind": "eval"})

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalError, match="empty journal"):
            read_journal(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"type": "work"}\n')
        with pytest.raises(JournalError, match="not a header"):
            read_journal(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"type": "header", "version": 99}\n')
        with pytest.raises(JournalError, match="version"):
            read_journal(path)


class TestTornWrites:
    def fixture(self, tmp_path, tail: bytes):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        with open(path, "ab") as handle:
            handle.write(tail)
        return path

    def test_truncated_json_tail_is_dropped(self, tmp_path):
        path = self.fixture(tmp_path, b'{"type": "work", "n":')
        records, torn = read_journal(path)
        assert torn
        assert [r["n"] for r in records] == [1]

    def test_parseable_tail_without_newline_is_still_torn(self, tmp_path):
        # The JSON is complete but the fsync'd newline never landed: the
        # writer never acknowledged this entry, so it must be redone.
        path = self.fixture(tmp_path, b'{"type": "work", "n": 2}')
        records, torn = read_journal(path)
        assert torn
        assert [r["n"] for r in records] == [1]

    def test_midfile_corruption_is_not_a_torn_write(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        with open(path, "ab") as handle:
            handle.write(b"@@garbage@@\n")
        write_entries(path, {"type": "work", "n": 2})  # appends after garbage
        with pytest.raises(JournalError, match="corrupt journal line"):
            read_journal(path)


class TestRepair:
    def test_repair_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        clean_bytes = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b'{"type": "work", "n":')
        assert repair(path) is True
        assert path.read_bytes() == clean_bytes
        _, torn = read_journal(path)
        assert not torn

    def test_repair_is_a_noop_on_clean_journals(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        before = path.read_bytes()
        assert repair(path) is False
        assert path.read_bytes() == before

    def test_append_after_repair_yields_a_valid_journal(self, tmp_path):
        # Without the repair, the new entry would be concatenated onto the
        # crash fragment and corrupt both lines.
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        with open(path, "ab") as handle:
            handle.write(b'{"type": "work", "n": 2}')  # torn
        repair(path)
        write_entries(path, {"type": "work", "n": 3})
        records, torn = read_journal(path)
        assert not torn
        assert [r["n"] for r in records] == [1, 3]


class TestTornHeader:
    """The crash windows between ``open()`` and the header fsync."""

    def test_empty_file_parses_as_blank_when_allowed(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b"")
        assert read_journal(path, allow_blank=True) == ([], False)

    def test_header_without_newline_parses_as_blank_when_allowed(
        self, tmp_path
    ):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b'{"type": "header", "version": 1}')  # no newline
        records, torn = read_journal(path, allow_blank=True)
        assert records == [] and torn is True

    def test_repair_truncates_a_torn_header_to_empty(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b'{"type": "header", "ver')
        assert repair(path) is True
        assert path.read_bytes() == b""

    def test_writer_reinitializes_a_repaired_blank_journal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b'{"type": "header", "ver')
        repair(path)
        write_entries(path, {"type": "work", "n": 1})
        records, torn = read_journal(path, expect={"kind": "test"})
        assert not torn
        assert [r["n"] for r in records] == [1]


class TestStructuredErrors:
    """JournalError carries the offending path and line number."""

    def test_header_mismatch_points_at_line_one(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, header={"kind": "resolve"})
        with pytest.raises(JournalError) as excinfo:
            read_journal(path, expect={"kind": "eval"})
        assert excinfo.value.path == path
        assert excinfo.value.lineno == 1

    def test_midfile_corruption_points_at_its_line(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(path, {"type": "work", "n": 1})
        with open(path, "ab") as handle:
            handle.write(b"@@garbage@@\n")
        write_entries(path, {"type": "work", "n": 2})
        with pytest.raises(JournalError) as excinfo:
            read_journal(path)
        assert excinfo.value.path == path
        assert excinfo.value.lineno == 3  # header, entry, then the garbage

    def test_error_without_location_has_none_fields(self):
        error = JournalError("boom")
        assert error.path is None and error.lineno is None


class TestHeaderAccess:
    def test_journal_header_returns_parsed_header(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_entries(
            path, {"type": "work"}, header={"kind": "resolve", "basis": 7}
        )
        header = journal_header(path)
        assert header["kind"] == "resolve"
        assert header["basis"] == 7

    def test_journal_header_rejects_torn_first_line(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b'{"type": "header"')
        with pytest.raises(JournalError, match="not a header"):
            journal_header(path)

    def test_journal_header_rejects_non_header_first_line(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"type": "work"}\n')
        with pytest.raises(JournalError, match="not a header"):
            journal_header(path)


class TestDirectoryDurability:
    def test_fsync_dir_flushes_an_existing_directory(self, tmp_path):
        # Behavioural floor: callable on a real directory without error
        # (the fsync itself is only observable under crash injection).
        fsync_dir(tmp_path)

    def test_fsync_dir_rejects_a_missing_directory(self, tmp_path):
        with pytest.raises(OSError):
            fsync_dir(tmp_path / "nope")
