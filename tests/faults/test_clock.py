"""ManualClock: the sync seam, the async seam, and the tick pump."""

import asyncio
import threading

import pytest

from repro.faults.clock import ManualClock


async def drain():
    """Let released sleepers resume (release callback + task resumption)."""
    for _ in range(5):
        await asyncio.sleep(0)


class TestSyncSeam:
    def test_starts_at_start_and_only_moves_on_advance(self):
        clock = ManualClock(start=5.0)
        assert clock() == 5.0
        assert clock() == 5.0
        clock.advance(1.5)
        assert clock() == 6.5

    def test_negative_advance_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleep_consumes_simulated_time(self):
        clock = ManualClock()
        clock.sleep(2.0)
        clock.sleep(-1.0)  # negative sleeps are a no-op, like time.sleep(0)
        assert clock() == 2.0


class TestAsyncSleep:
    def test_nonpositive_sleep_returns_without_parking(self):
        clock = ManualClock()

        async def scenario():
            await clock.sleep_async(0.0)
            await clock.sleep_async(-3.0)
            return clock.pending_wakeups()

        assert asyncio.run(scenario()) == 0
        assert clock() == 0.0

    def test_sleeper_wakes_only_when_clock_reaches_deadline(self):
        clock = ManualClock()
        order = []

        async def sleeper():
            await clock.sleep_async(10.0)
            order.append("woke")

        async def scenario():
            task = asyncio.ensure_future(sleeper())
            await asyncio.sleep(0)
            assert clock.pending_wakeups() == 1
            clock.advance(9.999)
            await asyncio.sleep(0)
            assert not task.done()  # one microsecond short: still parked
            order.append("almost")
            clock.advance(0.001)
            await task

        asyncio.run(scenario())
        assert order == ["almost", "woke"]

    def test_one_advance_wakes_every_due_sleeper(self):
        clock = ManualClock()

        async def scenario():
            tasks = [
                asyncio.ensure_future(clock.sleep_async(t))
                for t in (1.0, 2.0, 5.0)
            ]
            await asyncio.sleep(0)
            clock.advance(2.0)
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            return [t.done() for t in tasks], clock.pending_wakeups()

        done, parked = asyncio.run(scenario())
        assert done == [True, True, False]
        assert parked == 1

    def test_advance_from_worker_thread_wakes_async_sleeper(self):
        clock = ManualClock()

        async def scenario():
            thread = threading.Thread(target=lambda: clock.advance(3.0))
            sleeper = asyncio.ensure_future(clock.sleep_async(2.0))
            await asyncio.sleep(0)
            thread.start()
            await sleeper
            thread.join()
            return clock()

        assert asyncio.run(scenario()) == 3.0


class TestWaitFor:
    def test_returns_result_when_awaitable_beats_timeout(self):
        clock = ManualClock()

        async def quick():
            return "answer"

        async def scenario():
            return await clock.wait_for(quick(), timeout=1.0)

        assert asyncio.run(scenario()) == "answer"

    def test_raises_and_cancels_when_simulated_deadline_passes(self):
        clock = ManualClock()
        cancelled = []

        async def slow():
            try:
                await clock.sleep_async(100.0)
            except asyncio.CancelledError:
                cancelled.append(True)
                raise

        async def scenario():
            waiter = asyncio.ensure_future(clock.wait_for(slow(), timeout=5.0))
            while clock.pending_wakeups() < 2:  # slow() + the timeout sleeper
                await asyncio.sleep(0)
            clock.advance(5.0)
            with pytest.raises(TimeoutError):
                await waiter
            await asyncio.sleep(0)

        asyncio.run(scenario())
        assert cancelled == [True]


class TestTickPump:
    def test_tick_advances_to_earliest_wakeup(self):
        clock = ManualClock()

        async def scenario():
            a = asyncio.ensure_future(clock.sleep_async(3.0))
            b = asyncio.ensure_future(clock.sleep_async(7.0))
            await asyncio.sleep(0)
            assert clock.next_wakeup() == 3.0
            assert clock.tick() == 3.0
            await drain()
            assert a.done() and not b.done()
            assert clock.tick() == 7.0
            await drain()
            assert b.done()
            assert clock.tick() is None  # nothing parked: pump is dry

        asyncio.run(scenario())

    def test_timeouts_driven_purely_by_simulated_time(self):
        # The satellite's point: an asyncio timeout fires with zero real
        # sleeping, via the pump alone.
        clock = ManualClock()

        async def scenario():
            waiter = asyncio.ensure_future(
                clock.wait_for(clock.sleep_async(60.0), timeout=30.0)
            )
            while clock.pending_wakeups() < 2:  # sleeper + timeout parked
                await asyncio.sleep(0)
            while clock.tick() is not None:
                await drain()
            with pytest.raises(TimeoutError):
                await waiter

        asyncio.run(scenario())
        assert clock() == 30.0

    def test_next_wakeup_purges_done_futures(self):
        clock = ManualClock()

        async def scenario():
            task = asyncio.ensure_future(clock.sleep_async(1.0))
            await asyncio.sleep(0)
            task.cancel()
            await asyncio.sleep(0)
            return clock.next_wakeup()

        assert asyncio.run(scenario()) is None
