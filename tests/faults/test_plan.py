"""FaultPlan: validation, determinism, scripted schedules."""

import pytest

from repro.faults import CONTENT_FAULT_KINDS, FAULT_KINDS, FaultPlan


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.1, 2.0])
    def test_fault_rate_outside_unit_interval_rejected(self, rate):
        with pytest.raises(ValueError, match="fault_rate"):
            FaultPlan(fault_rate=rate)

    def test_unknown_addressing_rejected(self):
        with pytest.raises(ValueError, match="addressing"):
            FaultPlan(addressing="telepathy")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="meteor"):
            FaultPlan(kinds=("meteor",))

    def test_content_addressing_restricts_kinds(self):
        # Batch-shape faults depend on how callers interleave, so content
        # addressing only permits the interleaving-independent kinds.
        with pytest.raises(ValueError, match="timeout"):
            FaultPlan(addressing="content", kinds=("timeout",))
        FaultPlan(addressing="content", kinds=CONTENT_FAULT_KINDS)  # allowed

    def test_positive_rate_with_no_kinds_rejected(self):
        with pytest.raises(ValueError, match="no fault kinds"):
            FaultPlan(fault_rate=0.5, kinds=())

    def test_scripted_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="meteor"):
            FaultPlan.scripted(("error", "meteor"))


class TestDrawing:
    def test_rate_zero_never_faults(self):
        plan = FaultPlan(seed=3, fault_rate=0.0)
        assert all(plan.fault_for_call(i) is None for i in range(100))
        assert plan.fault_for_prompt("anything") is None

    def test_rate_one_always_faults_with_known_kind(self):
        plan = FaultPlan(seed=3, fault_rate=1.0)
        kinds = {plan.fault_for_call(i) for i in range(100)}
        assert None not in kinds
        assert kinds <= set(FAULT_KINDS)

    def test_draws_are_reproducible(self):
        a = FaultPlan(seed=11, fault_rate=0.4)
        b = FaultPlan(seed=11, fault_rate=0.4)
        assert [a.fault_for_call(i) for i in range(200)] == [
            b.fault_for_call(i) for i in range(200)
        ]

    def test_seeds_produce_different_schedules(self):
        a = FaultPlan(seed=0, fault_rate=0.5)
        b = FaultPlan(seed=1, fault_rate=0.5)
        assert [a.fault_for_call(i) for i in range(200)] != [
            b.fault_for_call(i) for i in range(200)
        ]

    def test_empirical_rate_tracks_configured_rate(self):
        plan = FaultPlan(seed=7, fault_rate=0.3)
        hits = sum(plan.fault_for_call(i) is not None for i in range(2000))
        assert 0.2 <= hits / 2000 <= 0.4

    def test_draws_are_independent_per_call(self):
        # Asking for call 50 first must not change what call 0 draws.
        plan = FaultPlan(seed=5, fault_rate=0.5)
        backwards = [plan.fault_for_call(i) for i in reversed(range(50))]
        forwards = [plan.fault_for_call(i) for i in range(50)]
        assert backwards == list(reversed(forwards))

    def test_prompt_draws_keyed_on_content_not_order(self):
        plan = FaultPlan(seed=9, fault_rate=0.6, addressing="content",
                         kinds=CONTENT_FAULT_KINDS)
        prompts = [f"prompt number {i}" for i in range(40)]
        by_prompt = {p: plan.fault_for_prompt(p) for p in prompts}
        for p in reversed(prompts):  # different query order, same answers
            assert plan.fault_for_prompt(p) == by_prompt[p]
        drawn = set(by_prompt.values())
        assert drawn - {None} <= set(CONTENT_FAULT_KINDS)
        assert drawn - {None}, "rate 0.6 over 40 prompts should fault some"


class TestScripted:
    def test_script_is_followed_exactly_then_clean(self):
        plan = FaultPlan.scripted(("error", None, "garble"))
        assert plan.fault_for_call(0) == "error"
        assert plan.fault_for_call(1) is None
        assert plan.fault_for_call(2) == "garble"
        assert plan.fault_for_call(3) is None  # beyond the script: clean
        assert plan.fault_for_call(999) is None

    def test_flapping_script_shape(self):
        plan = FaultPlan.flapping(failure_threshold=3, recovery_calls=2)
        assert plan.script == ("error", "error", "error", "timeout", None, None)

    def test_flapping_requires_positive_threshold(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            FaultPlan.flapping(failure_threshold=0)
