"""FaultyBackend / CrashingBackend mechanics, one fault kind at a time."""

import pytest

from repro.engine.retry import BackendError
from repro.faults import (
    CONTENT_FAULT_KINDS,
    GARBLED_COMPLETION,
    CrashingBackend,
    FaultPlan,
    FaultyBackend,
    ManualClock,
    SimulatedCrash,
)


class Inner:
    """Recording inner backend with distinct per-prompt answers."""

    name = "inner"

    def __init__(self):
        self.calls = 0

    def generate(self, prompts):
        self.calls += 1
        return [f"answer for {p}" for p in prompts]


PROMPTS = ["alpha", "beta", "gamma"]


def scripted_backend(*schedule, **kwargs):
    return FaultyBackend(Inner(), FaultPlan.scripted(schedule), **kwargs)


class TestTransparency:
    def test_rate_zero_passes_answers_through_untouched(self):
        inner = Inner()
        backend = FaultyBackend(inner, FaultPlan(fault_rate=0.0))
        assert backend.generate(PROMPTS) == inner.generate(PROMPTS)
        assert backend.injected_counts() == {}
        assert backend.name == "faulty:inner"

    def test_call_counter_advances_per_generate(self):
        backend = scripted_backend(None, None)
        backend.generate(PROMPTS)
        backend.generate(PROMPTS)
        assert backend.calls == 2


class TestFaultKinds:
    def test_error_raises_before_touching_inner(self):
        backend = scripted_backend("error")
        with pytest.raises(BackendError, match="injected transport error"):
            backend.generate(PROMPTS)
        assert backend.inner.calls == 0  # the transport never delivered
        assert backend.injected_counts() == {"error": 1}

    def test_timeout_returns_answers_but_burns_the_clock(self):
        clock = ManualClock()
        backend = scripted_backend("timeout", clock=clock, timeout_advance=2.5)
        before = clock()
        responses = backend.generate(PROMPTS)
        assert responses == [f"answer for {p}" for p in PROMPTS]
        assert clock() == pytest.approx(before + 2.5)
        assert backend.injected_counts() == {"timeout": 1}

    def test_timeout_kind_requires_advanceable_clock(self):
        with pytest.raises(ValueError, match="advanceable clock"):
            scripted_backend("timeout")  # no clock given
        with pytest.raises(ValueError, match="timeout_advance"):
            scripted_backend("timeout", clock=ManualClock(), timeout_advance=0.0)

    def test_garble_keeps_length_but_destroys_content(self):
        backend = scripted_backend("garble")
        responses = backend.generate(PROMPTS)
        assert responses == [GARBLED_COMPLETION] * len(PROMPTS)

    def test_truncate_drops_one_answer(self):
        backend = scripted_backend("truncate")
        assert len(backend.generate(PROMPTS)) == len(PROMPTS) - 1

    def test_overlong_adds_one_answer(self):
        backend = scripted_backend("overlong")
        assert len(backend.generate(PROMPTS)) == len(PROMPTS) + 1

    def test_duplicate_misassociates_every_slot(self):
        backend = scripted_backend("duplicate")
        responses = backend.generate(PROMPTS)
        assert responses == ["answer for alpha"] * len(PROMPTS)

    def test_faults_land_on_their_scripted_call(self):
        backend = scripted_backend(None, "garble", None)
        clean = [f"answer for {p}" for p in PROMPTS]
        assert backend.generate(PROMPTS) == clean
        assert backend.generate(PROMPTS) == [GARBLED_COMPLETION] * 3
        assert backend.generate(PROMPTS) == clean
        assert backend.injected_counts() == {"garble": 1}


class TestContentAddressing:
    def plan(self, rate=0.6, seed=4):
        return FaultPlan(seed=seed, fault_rate=rate, addressing="content",
                         kinds=CONTENT_FAULT_KINDS)

    def garbled_for(self, plan, prompts):
        return {p for p in prompts if plan.fault_for_prompt(p) == "garble"}

    def test_garbling_is_per_prompt_and_batch_shape_independent(self):
        plan = self.plan()
        prompts = [f"prompt {i}" for i in range(30)]
        garbled = self.garbled_for(plan, prompts)
        assert garbled, "rate 0.6 over 30 prompts should garble some"

        def run(batches):
            backend = FaultyBackend(Inner(), plan)
            answers = {}
            for batch in batches:
                while True:
                    try:
                        responses = backend.generate(batch)
                    except BackendError:
                        continue  # transient by construction: retry
                    break
                answers.update(zip(batch, responses))
            return answers

        one_big = run([prompts])
        many_small = run([prompts[i : i + 7] for i in range(0, 30, 7)])
        assert one_big == many_small
        for prompt, answer in one_big.items():
            if prompt in garbled:
                assert answer == GARBLED_COMPLETION
            else:
                assert answer == f"answer for {prompt}"

    def test_transient_errors_hit_only_the_first_attempt(self):
        plan = self.plan(rate=0.9, seed=2)
        prompts = [f"prompt {i}" for i in range(10)]
        assert any(plan.fault_for_prompt(p) == "error" for p in prompts)
        backend = FaultyBackend(Inner(), plan)
        with pytest.raises(BackendError):
            backend.generate(prompts)
        responses = backend.generate(prompts)  # the retry: must succeed
        assert len(responses) == len(prompts)


class TestCrashingBackend:
    def test_dies_at_the_configured_batch_boundary(self):
        backend = CrashingBackend(Inner(), kill_after=2)
        backend.generate(PROMPTS)
        backend.generate(PROMPTS)
        with pytest.raises(SimulatedCrash, match="simulated crash"):
            backend.generate(PROMPTS)
        assert backend.calls == 2  # the fatal call never completed

    def test_kill_after_zero_dies_immediately(self):
        backend = CrashingBackend(Inner(), kill_after=0)
        with pytest.raises(SimulatedCrash):
            backend.generate(PROMPTS)

    def test_kill_after_none_never_dies(self):
        backend = CrashingBackend(Inner())
        for _ in range(20):
            assert backend.generate(PROMPTS)

    def test_negative_kill_after_rejected(self):
        with pytest.raises(ValueError, match="kill_after"):
            CrashingBackend(Inner(), kill_after=-1)

    def test_crash_sails_past_except_exception(self):
        # The retry loop catches Exception; a simulated process death must
        # not be absorbable there, exactly like a real SIGKILL.
        assert not issubclass(SimulatedCrash, Exception)
        backend = CrashingBackend(Inner(), kill_after=0)
        with pytest.raises(SimulatedCrash):
            try:
                backend.generate(PROMPTS)
            except Exception:  # pragma: no cover - must NOT catch
                pytest.fail("SimulatedCrash was caught by `except Exception`")
