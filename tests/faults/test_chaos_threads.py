"""Multi-threaded chaos: content-addressed faults stay deterministic.

The PR 3 concurrency smoke-test shape (N threads hammering one shared
engine) re-run under fault injection.  Content addressing keys every
fault on the prompt text, so the outcome per pair is independent of how
the threads interleave their batches — two runs with the same seed must
produce identical decisions, and every thread must see the same answers
as a single-threaded run.
"""

import threading

import pytest

from repro.engine import MatchingEngine
from repro.engine.retry import CircuitBreaker, RetryPolicy
from repro.faults import (
    CONTENT_FAULT_KINDS,
    FaultPlan,
    FaultyBackend,
    ParityBackend,
)

THREADS = 6
PAIRS_PER_THREAD = 150
UNIQUE_PAIRS = 60
FAULT_RATE = 0.4


def workload():
    """150 pairs over 60 unique ones: cache hits, dedup, and repeats."""
    return [
        (f"gadget number {i % UNIQUE_PAIRS} alpha edition",
         f"gadget number {i % UNIQUE_PAIRS} beta edition")
        for i in range(PAIRS_PER_THREAD)
    ]


def make_chaos_engine(seed):
    plan = FaultPlan(seed=seed, fault_rate=FAULT_RATE,
                     addressing="content", kinds=CONTENT_FAULT_KINDS)
    backend = FaultyBackend(ParityBackend(), plan)
    engine = MatchingEngine(
        backend=backend,
        retry=RetryPolicy(seed=seed),
        # Transient errors must degrade to retries, never to the breaker
        # tripping: an open breaker would make answers depend on *when*
        # each thread's batch hit it, which content addressing cannot fix.
        breaker=CircuitBreaker(failure_threshold=10**9),
        sleep=lambda seconds: None,
    )
    return engine, backend


def hammer(engine, pairs):
    """Drive the engine from THREADS threads; returns per-thread decisions."""
    barrier = threading.Barrier(THREADS)
    decisions = [[] for _ in range(THREADS)]
    errors = []

    def worker(slot):
        try:
            barrier.wait()
            decisions[slot] = [r.decision for r in engine.match_pairs(pairs)]
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "worker deadlocked"
    assert errors == []
    return decisions


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_threaded_chaos_is_deterministic_per_seed(seed):
    pairs = workload()

    reference_engine, _ = make_chaos_engine(seed)
    reference = [r.decision for r in reference_engine.match_pairs(pairs)]

    engine, backend = make_chaos_engine(seed)
    decisions = hammer(engine, pairs)
    for slot in range(THREADS):
        assert decisions[slot] == reference, f"thread {slot} diverged"

    # The faults really fired, and retry absorbed every transient error.
    injected = backend.injected_counts()
    assert set(injected) <= set(CONTENT_FAULT_KINDS)
    assert injected.get("garble", 0) > 0
    stats = engine.stats
    assert stats.requests == THREADS * PAIRS_PER_THREAD
    assert stats.cache_hits + stats.cache_misses == stats.requests
    assert stats.failures == 0 and stats.fallbacks == 0
    assert stats.transport_errors == stats.retries

    # Same seed, fresh engine, threaded again: byte-identical decisions.
    again_engine, _ = make_chaos_engine(seed)
    again = hammer(again_engine, pairs)
    assert again == decisions
