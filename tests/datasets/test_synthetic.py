"""Synthetic dedup corpus: determinism, ground truth, validation."""

import pytest

from repro.blocking.token import blocking_tokens
from repro.datasets.synthetic import SyntheticCorpus, synthetic_dedup_corpus


class TestDeterminism:
    def test_same_parameters_same_corpus(self):
        first = synthetic_dedup_corpus(200, seed=3)
        second = synthetic_dedup_corpus(200, seed=3)
        assert first.records == second.records
        assert first.clusters == second.clusters
        assert first.true_pairs == second.true_pairs

    def test_seed_changes_the_corpus(self):
        base = synthetic_dedup_corpus(200, seed=3)
        other = synthetic_dedup_corpus(200, seed=4)
        assert base.records != other.records

    def test_corruption_changes_duplicate_renderings(self):
        mild = synthetic_dedup_corpus(200, seed=3, corruption=0.05)
        harsh = synthetic_dedup_corpus(200, seed=3, corruption=0.9)
        assert mild.records != harsh.records


class TestShape:
    def test_exact_record_count(self):
        for n in (1, 7, 64, 250):
            assert len(synthetic_dedup_corpus(n, seed=1).records) == n

    def test_record_ids_unique_and_padded(self):
        corpus = synthetic_dedup_corpus(150, seed=2)
        ids = [record.record_id for record in corpus.records]
        assert len(set(ids)) == len(ids)
        assert all(i.startswith("s") and len(i) == 4 for i in ids)

    def test_every_record_tokenizes(self):
        corpus = synthetic_dedup_corpus(300, seed=5)
        assert all(
            blocking_tokens(record.description) for record in corpus.records
        )

    def test_clusters_partition_into_known_ids(self):
        corpus = synthetic_dedup_corpus(300, seed=5)
        ids = {record.record_id for record in corpus.records}
        members = [m for cluster in corpus.clusters for m in cluster]
        assert len(set(members)) == len(members)  # no id in two clusters
        assert set(members) <= ids
        # multi-record clusters only — singletons carry no true pair
        assert all(len(cluster) >= 2 for cluster in corpus.clusters)


class TestTruePairs:
    def test_pairs_are_sorted_intra_cluster(self):
        corpus = synthetic_dedup_corpus(300, seed=7)
        expected = {
            tuple(sorted((a, b)))
            for cluster in corpus.clusters
            for a in cluster
            for b in cluster
            if a < b
        }
        assert corpus.true_pairs == expected
        assert all(a < b for a, b in corpus.true_pairs)

    def test_duplicates_share_vocabulary(self):
        """Corruption lowers overlap without severing it (at the default)."""
        corpus = synthetic_dedup_corpus(300, seed=7)
        by_id = {record.record_id: record for record in corpus.records}
        for a, b in sorted(corpus.true_pairs):
            left = set(blocking_tokens(by_id[a].description))
            right = set(blocking_tokens(by_id[b].description))
            assert left & right, f"severed pair {a}/{b}"

    def test_empty_truth_for_singleton_corpus(self):
        corpus = synthetic_dedup_corpus(1, seed=0)
        assert corpus.clusters == ()
        assert corpus.true_pairs == frozenset()


class TestValidation:
    @pytest.mark.parametrize("n", [0, -5])
    def test_nonpositive_n_rejected(self, n):
        with pytest.raises(ValueError, match="n must be positive"):
            synthetic_dedup_corpus(n)

    @pytest.mark.parametrize("corruption", [-0.1, 1.5])
    def test_corruption_out_of_range_rejected(self, corruption):
        with pytest.raises(ValueError, match="corruption"):
            synthetic_dedup_corpus(10, corruption=corruption)

    def test_true_pairs_cached(self):
        corpus = SyntheticCorpus(records=(), clusters=(("a", "b"),))
        assert corpus.true_pairs is corpus.true_pairs
