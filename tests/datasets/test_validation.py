"""Tests for dataset integrity validation."""

from repro.datasets.schema import Dataset, EntityPair, Record, Split
from repro.datasets.validation import validate_dataset, validate_split


def _pair(i, label=True, left="left x", right="right y"):
    return EntityPair(
        pair_id=f"p{i}",
        left=Record(record_id=f"l{i}", attributes={}, description=left),
        right=Record(record_id=f"r{i}", attributes={}, description=right),
        label=label,
    )


class TestValidateSplit:
    def test_clean_split_passes(self, product_split):
        assert validate_split(product_split).ok

    def test_duplicates_detected(self):
        split = Split("dup", [_pair(0), _pair(1)])
        report = validate_split(split)
        assert not report.ok
        assert "duplicate" in report.problems[0]

    def test_empty_descriptions_detected(self):
        split = Split("empty", [_pair(0, left="  ")])
        report = validate_split(split)
        assert any("empty descriptions" in p for p in report.problems)

    def test_degenerate_labels_detected(self):
        split = Split("onesided", [_pair(0, left="a b", right="c d"),
                                   _pair(1, left="e f", right="g h")])
        report = validate_split(split)
        assert any("degenerate" in p for p in report.problems)


class TestValidateDataset:
    def test_benchmarks_are_clean(self):
        from repro.datasets.registry import load_dataset

        report = validate_dataset(load_dataset("abt-buy"))
        assert report.ok, report.problems

    def test_leakage_detected(self, tiny_dataset):
        leaky = Dataset(
            name="leaky",
            domain="product",
            train=tiny_dataset.train,
            valid=tiny_dataset.valid,
            test=tiny_dataset.train,  # test == train
        )
        report = validate_dataset(leaky)
        assert any("leak" in p for p in report.problems)
