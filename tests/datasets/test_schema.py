"""Tests for dataset data structures."""

import pytest

from repro.datasets.schema import Dataset, EntityPair, Record, Split


def _pair(i: int, label: bool) -> EntityPair:
    return EntityPair(
        pair_id=f"p{i}",
        left=Record(record_id=f"l{i}", attributes={"k": "v"}, description=f"left {i}"),
        right=Record(record_id=f"r{i}", attributes={}, description=f"right {i}"),
        label=label,
    )


@pytest.fixture
def split():
    return Split(name="s", pairs=[_pair(i, i % 3 == 0) for i in range(9)])


class TestRecord:
    def test_with_description_returns_copy(self):
        record = Record(record_id="x", attributes={"a": "1"}, description="old")
        new = record.with_description("new")
        assert new.description == "new"
        assert record.description == "old"
        assert new.record_id == record.record_id


class TestEntityPair:
    def test_key_is_description_pair(self):
        pair = _pair(0, True)
        assert pair.key == ("left 0", "right 0")


class TestSplit:
    def test_len_and_iter(self, split):
        assert len(split) == 9
        assert len(list(split)) == 9

    def test_stats(self, split):
        stats = split.stats
        assert stats.positives == 3
        assert stats.negatives == 6
        assert stats.total == 9

    def test_labels(self, split):
        assert split.labels() == [i % 3 == 0 for i in range(9)]

    def test_subset(self, split):
        sub = split.subset([0, 2], name="sub")
        assert len(sub) == 2
        assert sub.name == "sub"
        assert sub[0].pair_id == "p0"

    def test_filtered(self, split):
        kept = split.filtered([p.label for p in split])
        assert len(kept) == 3
        assert all(p.label for p in kept)

    def test_filtered_wrong_length_raises(self, split):
        with pytest.raises(ValueError, match="length"):
            split.filtered([True])

    def test_extended(self, split):
        extra = [_pair(100, True)]
        extended = split.extended(extra)
        assert len(extended) == 10
        assert len(split) == 9  # original untouched


class TestDataset:
    def test_split_lookup(self, split):
        ds = Dataset(name="d", domain="product", train=split, valid=split, test=split)
        assert ds.split("train") is split
        with pytest.raises(ValueError, match="unknown split"):
            ds.split("bogus")

    def test_stats_keys(self, split):
        ds = Dataset(name="d", domain="product", train=split, valid=split, test=split)
        assert set(ds.stats()) == {"train", "valid", "test"}
