"""Tests for generic pair-set construction."""

from repro.datasets.build import HardnessProfile, build_split
from repro.datasets.catalog import ProductCatalog
from repro.datasets.products import _product_renderer


def _build(n_pos=30, n_neg=70, seed=5, **profile_kwargs):
    catalog = ProductCatalog(seed)
    return build_split(
        name="t",
        n_pos=n_pos,
        n_neg=n_neg,
        profile=HardnessProfile(**profile_kwargs),
        sample_entity=catalog.sample,
        sample_sibling=catalog.sibling,
        render=_product_renderer("t"),
        seed=seed,
        is_train=True,
    )


class TestBuildSplit:
    def test_exact_annotated_counts(self):
        split = _build(label_noise_train=0.2)
        assert split.stats.positives == 30
        assert split.stats.negatives == 70

    def test_deterministic(self):
        a = _build()
        b = _build()
        assert [p.key for p in a] == [p.key for p in b]

    def test_shuffled_not_grouped_by_label(self):
        split = _build()
        labels = split.labels()
        assert labels != sorted(labels) and labels != sorted(labels, reverse=True)

    def test_label_noise_marks_sources(self):
        split = _build(n_pos=100, n_neg=100, label_noise_train=0.3)
        mislabeled = [p for p in split if p.source == "seed-mislabeled"]
        assert mislabeled, "expected some mislabeled pairs at 30% noise"

    def test_no_label_noise_no_mislabeled(self):
        split = _build(label_noise_train=0.0)
        assert all(p.source == "seed" for p in split)

    def test_negative_noise_scaled_by_class_ratio(self):
        # negatives flip at rate * n_pos/n_neg, so mislabeled negatives
        # should be roughly as common as mislabeled positives in count
        split = _build(n_pos=100, n_neg=1000, label_noise_train=0.3, seed=9)
        mis_pos = sum(1 for p in split if p.label and p.source == "seed-mislabeled")
        mis_neg = sum(
            1 for p in split if not p.label and p.source == "seed-mislabeled"
        )
        assert mis_neg <= mis_pos * 3  # same order of magnitude, not 10x

    def test_corner_fraction_respected(self):
        split = _build(n_pos=200, n_neg=200, corner_frac_pos=0.8, corner_frac_neg=0.8)
        positives = [p for p in split if p.label]
        corner_rate = sum(p.corner_case for p in positives) / len(positives)
        assert 0.65 < corner_rate < 0.95

    def test_mislabeled_positive_uses_different_entities(self):
        split = _build(n_pos=200, n_neg=10, label_noise_train=0.5, seed=21)
        for pair in split:
            if pair.label and pair.source == "seed-mislabeled":
                left_root = pair.left.record_id.split(":")[0]
                right_root = pair.right.record_id.split(":")[0]
                assert left_root != right_root
