"""Tests for JSONL dataset I/O."""

import pytest

from repro.datasets.io import (
    read_dataset,
    read_split_jsonl,
    write_dataset,
    write_split_jsonl,
)
from repro.datasets.schema import Dataset


class TestSplitRoundTrip:
    def test_lossless(self, product_split, tmp_path):
        path = tmp_path / "split.jsonl"
        write_split_jsonl(product_split, path)
        loaded = read_split_jsonl(path)
        assert len(loaded) == len(product_split)
        for original, restored in zip(product_split, loaded):
            assert restored.pair_id == original.pair_id
            assert restored.label == original.label
            assert restored.corner_case == original.corner_case
            assert restored.left.description == original.left.description
            assert dict(restored.right.attributes) == dict(original.right.attributes)

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"pair_id": "x"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_split_jsonl(path)

    def test_blank_lines_skipped(self, product_split, tmp_path):
        path = tmp_path / "split.jsonl"
        write_split_jsonl(product_split, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_split_jsonl(path)) == len(product_split)


class TestDatasetRoundTrip:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        write_dataset(tiny_dataset, tmp_path / "ds")
        loaded = read_dataset(tmp_path / "ds")
        assert isinstance(loaded, Dataset)
        assert loaded.name == tiny_dataset.name
        assert loaded.domain == tiny_dataset.domain
        for split_name in ("train", "valid", "test"):
            assert len(loaded.split(split_name)) == len(tiny_dataset.split(split_name))
