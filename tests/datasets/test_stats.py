"""Tests for dataset profiling."""

import pytest

from repro.datasets.registry import load_dataset
from repro.datasets.schema import Split
from repro.datasets.stats import profile_split


class TestProfileSplit:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            profile_split(Split("empty", []))

    def test_basic_fields(self, product_split):
        profile = profile_split(product_split)
        assert profile.pairs == len(product_split)
        assert 0.0 < profile.positive_rate < 1.0
        assert 0.0 <= profile.similarity_overlap <= 1.0
        assert profile.separability == pytest.approx(1 - profile.similarity_overlap)

    def test_matches_more_similar_than_nonmatches(self, product_split):
        profile = profile_split(product_split)
        assert profile.match_similarity > profile.nonmatch_similarity

    def test_wdc_cornerier_than_abt_buy(self):
        wdc = profile_split(load_dataset("wdc-small").test)
        abt = profile_split(load_dataset("abt-buy").test)
        assert wdc.corner_rate > abt.corner_rate

    def test_harder_dataset_less_separable(self):
        """WDC (80% corner cases) overlaps more than Abt-Buy — the
        similarity structure that drives the zero-shot ordering."""
        wdc = profile_split(load_dataset("wdc-small").test)
        abt = profile_split(load_dataset("abt-buy").test)
        assert wdc.similarity_overlap > abt.similarity_overlap
