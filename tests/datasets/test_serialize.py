"""Tests for record serialization rules."""

import pytest

from repro.datasets.serialize import (
    serialize_product,
    serialize_record,
    serialize_scholar,
)


class TestSerialize:
    def test_product_uses_title_only(self):
        assert serialize_product({"brand": "X"}, "the title") == "the title"

    def test_scholar_concatenates_with_semicolons(self):
        attributes = {
            "authors": "a. smith",
            "title": "a title",
            "venue": "vldb",
            "year": "2010",
        }
        assert serialize_scholar(attributes) == "a. smith; a title; vldb; 2010"

    def test_scholar_missing_fields_stay_positional(self):
        attributes = {"authors": "a", "title": "t", "venue": "", "year": "1999"}
        assert serialize_scholar(attributes) == "a; t; ; 1999"

    def test_dispatch(self):
        assert serialize_record("product", {}, "t") == "t"
        assert serialize_record("scholar", {"authors": "a"}).startswith("a;")
        with pytest.raises(ValueError, match="unknown domain"):
            serialize_record("music", {})
