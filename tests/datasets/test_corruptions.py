"""Tests for surface-form rendering."""

import numpy as np

from repro.datasets.catalog import PaperCatalog, ProductCatalog, SoftwareCatalog
from repro.datasets.corruptions import (
    render_paper,
    render_product,
    render_software,
    typo,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestTypo:
    def test_short_words_untouched(self):
        assert typo("ab", _rng()) == "ab"

    def test_changes_word(self):
        word = "cassette"
        results = {typo(word, _rng(i)) for i in range(20)}
        assert any(r != word for r in results)

    def test_length_changes_at_most_one(self):
        for i in range(20):
            result = typo("headset", _rng(i))
            assert abs(len(result) - len("headset")) <= 1


class TestRenderProduct:
    def test_contains_identifying_tokens_at_zero_noise(self):
        entity = ProductCatalog(seed=1).sample()
        title, attributes = render_product(entity, _rng(), noise=0.0)
        assert entity.line.lower() in title.lower()
        assert attributes["brand"] == entity.brand
        assert attributes["category"] == entity.category

    def test_code_dropout_removes_code(self):
        entity = ProductCatalog(seed=1).sample()
        title, _ = render_product(entity, _rng(3), noise=0.0, code_dropout=1.0)
        assert entity.model_code not in title

    def test_two_renders_differ(self):
        entity = ProductCatalog(seed=2).sample()
        a, _ = render_product(entity, _rng(1), noise=0.8)
        b, _ = render_product(entity, _rng(2), noise=0.8)
        assert a != b


class TestRenderSoftware:
    def test_version_always_present(self):
        entity = SoftwareCatalog(seed=1).sample()
        for i in range(10):
            title, attributes = render_software(entity, _rng(i), noise=0.5)
            assert entity.version in title
            assert attributes["version"] == entity.version

    def test_lowercased(self):
        entity = SoftwareCatalog(seed=1).sample()
        title, _ = render_software(entity, _rng(), noise=0.2)
        assert title == title.lower()


class TestRenderPaper:
    def test_attributes_complete_at_zero_noise(self):
        entity = PaperCatalog(seed=1).sample()
        _, attributes = render_paper(entity, _rng(), noise=0.0)
        assert attributes["title"] == entity.title
        assert attributes["year"] == str(entity.year)
        assert attributes["venue"] in (entity.venue_abbrev, entity.venue_full)

    def test_noise_can_drop_fields(self):
        entity = PaperCatalog(seed=2).sample()
        dropped_venue = dropped_year = False
        for i in range(60):
            _, attributes = render_paper(entity, _rng(i), noise=1.5)
            dropped_venue |= attributes["venue"] == ""
            dropped_year |= attributes["year"] == ""
        assert dropped_venue and dropped_year
