"""Tests for synthetic entity catalogs."""

from repro.datasets.catalog import (
    PaperCatalog,
    ProductCatalog,
    SoftwareCatalog,
)


class TestProductCatalog:
    def test_samples_are_distinct(self):
        catalog = ProductCatalog(seed=1)
        entities = [catalog.sample() for _ in range(50)]
        assert len({e.entity_id for e in entities}) == 50

    def test_deterministic_across_instances(self):
        a = [ProductCatalog(seed=5).sample() for _ in range(3)]
        b = [ProductCatalog(seed=5).sample() for _ in range(3)]
        assert a == b

    def test_category_restriction(self):
        catalog = ProductCatalog(seed=2, categories=["headset"])
        assert all(catalog.sample().category == "headset" for _ in range(10))

    def test_sibling_shares_brand_line_differs_code(self):
        catalog = ProductCatalog(seed=3)
        entity = catalog.sample()
        sibling = catalog.sibling(entity, 0)
        assert sibling.brand == entity.brand
        assert sibling.line == entity.line
        assert sibling.category == entity.category
        assert sibling.model_code != entity.model_code
        assert sibling.entity_id != entity.entity_id

    def test_sibling_deterministic(self):
        catalog = ProductCatalog(seed=3)
        entity = catalog.sample()
        assert catalog.sibling(entity, 1) == catalog.sibling(entity, 1)
        assert catalog.sibling(entity, 1) != catalog.sibling(entity, 2)


class TestSoftwareCatalog:
    def test_sibling_differs_in_version_or_edition(self):
        catalog = SoftwareCatalog(seed=4)
        for _ in range(20):
            entity = catalog.sample()
            sibling = catalog.sibling(entity, 0)
            assert sibling.vendor == entity.vendor
            assert sibling.product == entity.product
            assert (
                sibling.version != entity.version
                or sibling.edition != entity.edition
            )

    def test_distinct_skus(self):
        catalog = SoftwareCatalog(seed=4)
        entity = catalog.sample()
        assert catalog.sibling(entity, 0).sku != entity.sku or True  # may collide rarely


class TestPaperCatalog:
    def test_sample_shape(self):
        catalog = PaperCatalog(seed=6)
        paper = catalog.sample()
        assert 1 <= len(paper.authors) <= 4
        assert paper.title
        assert 1995 <= paper.year < 2015

    def test_sibling_shares_venue_and_authors(self):
        catalog = PaperCatalog(seed=6)
        paper = catalog.sample()
        sibling = catalog.sibling(paper, 0)
        assert sibling.venue_abbrev == paper.venue_abbrev
        assert sibling.title != paper.title
        # at least one shared author
        assert set(sibling.authors) & set(paper.authors)
