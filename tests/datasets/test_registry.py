"""Tests for the dataset registry (Table 1 statistics are exact)."""

import pytest

from repro.datasets.registry import (
    DATASET_NAMES,
    PRODUCT_DATASETS,
    SCHOLAR_DATASETS,
    dataset_domain,
    load_dataset,
)

#: The paper's Table 1, verbatim.
TABLE1 = {
    "wdc-small": {"train": (500, 2000), "valid": (500, 2000), "test": (500, 4000)},
    "wdc-medium": {"train": (1500, 4500), "valid": (500, 3000), "test": (500, 4000)},
    "wdc-large": {"train": (8471, 11364), "valid": (500, 4000), "test": (500, 4000)},
    "abt-buy": {"train": (822, 6837), "valid": (206, 1710), "test": (206, 1710)},
    "amazon-google": {"train": (933, 8234), "valid": (234, 2059), "test": (234, 2059)},
    "walmart-amazon": {"train": (769, 7424), "valid": (193, 1856), "test": (193, 1856)},
    "dblp-scholar": {"train": (4277, 18688), "valid": (1070, 4672), "test": (1070, 4672)},
    "dblp-acm": {"train": (1776, 8114), "valid": (444, 2029), "test": (444, 2029)},
}


class TestRegistry:
    def test_all_names_listed(self):
        assert set(TABLE1) == set(DATASET_NAMES)

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_split_sizes_match_table1(self, name):
        dataset = load_dataset(name)
        for split_name, (pos, neg) in TABLE1[name].items():
            stats = dataset.split(split_name).stats
            assert (stats.positives, stats.negatives) == (pos, neg), split_name

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("nonexistent")

    def test_caching_returns_same_object(self):
        assert load_dataset("abt-buy") is load_dataset("abt-buy")

    def test_domains(self):
        for name in PRODUCT_DATASETS:
            assert dataset_domain(name) == "product"
        for name in SCHOLAR_DATASETS:
            assert dataset_domain(name) == "scholar"
        with pytest.raises(ValueError):
            dataset_domain("mystery")

    def test_wdc_sizes_share_test_pairs(self):
        small = load_dataset("wdc-small").test
        medium = load_dataset("wdc-medium").test
        assert [p.key for p in small] == [p.key for p in medium]

    def test_wdc_train_sets_differ(self):
        small = load_dataset("wdc-small").train
        medium = load_dataset("wdc-medium").train
        assert len(small) != len(medium)

    def test_scholar_records_are_fielded(self):
        dataset = load_dataset("dblp-acm")
        pair = dataset.test.pairs[0]
        assert pair.left.description.count(";") >= 3

    def test_amazon_google_is_software(self):
        dataset = load_dataset("amazon-google")
        attrs = dataset.test.pairs[0].left.attributes
        assert "vendor" in attrs and "version" in attrs
