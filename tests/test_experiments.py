"""Tests for the experiment drivers (light paths only)."""

import pytest

from repro.experiments.render import render_results_table, render_size_table
from repro.experiments.table2 import EVAL_DATASETS, TRAINING_SETS, column_key
from repro.experiments.table45 import TABLE5_VARIANTS, training_set_variants
from repro import paper_reference as ref


class TestColumnKey:
    def test_wdc_variants_collapse(self):
        assert column_key("wdc-small") == "wdc"
        assert column_key("wdc-large") == "wdc"

    def test_other_names_pass_through(self):
        assert column_key("abt-buy") == "abt-buy"


class TestGridDefinitions:
    def test_small_models_train_on_all_six(self):
        assert len(TRAINING_SETS["llama-3.1-8b"]) == 6
        assert len(TRAINING_SETS["gpt-4o-mini"]) == 6

    def test_large_models_train_on_wdc_only(self):
        assert TRAINING_SETS["llama-3.1-70b"] == ["wdc-small"]
        assert TRAINING_SETS["gpt-4o"] == ["wdc-small"]

    def test_eval_datasets_cover_both_domains(self):
        assert "dblp-acm" in EVAL_DATASETS and "abt-buy" in EVAL_DATASETS

    def test_table5_mini_subset_of_llama(self):
        assert set(TABLE5_VARIANTS["gpt-4o-mini"]) < set(
            TABLE5_VARIANTS["llama-3.1-8b"]
        ) | {"wdc-small"}


class TestTrainingSetVariants:
    def test_wdc_small_passthrough(self):
        split = training_set_variants("wdc-small")
        assert len(split) == 2500

    def test_filter_variant_smaller(self):
        assert len(training_set_variants("wdc-s-filter")) < 2500

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError, match="unknown training-set variant"):
            training_set_variants("wdc-quantum")


class TestPaperReference:
    def test_table2_rows_cover_models(self):
        models = {m for m, _ in ref.TABLE2}
        assert models == {"llama-3.1-8b", "gpt-4o-mini", "llama-3.1-70b", "gpt-4o"}

    def test_every_row_has_six_columns(self):
        for row in ref.TABLE2.values():
            assert set(row) == set(ref.EVAL_COLUMNS)
        for row in ref.TABLE3.values():
            assert set(row) == set(ref.EVAL_COLUMNS)
        for row in ref.TABLE5.values():
            assert set(row) == set(ref.EVAL_COLUMNS)

    def test_table1_matches_registry_reference(self):
        from repro.datasets.registry import DATASET_NAMES

        assert set(ref.TABLE1) == set(DATASET_NAMES)


class TestRender:
    def test_results_table_includes_paper_rows(self):
        rows = {("m", "zero-shot"): {"a": 50.0}, ("m", "t"): {"a": 60.0}}
        text = render_results_table(
            "T", ["a"], rows, paper_rows={("m", "t"): {"a": 58.0}}
        )
        assert "60.00 (+10.00)" in text
        assert "(paper)" in text and "58.00" in text

    def test_size_table(self):
        text = render_size_table("T", {"x": (1, 2, 3)}, {"x": (4, 5, 9)})
        assert "x" in text and "(paper)" in text
