"""Tests for result analysis utilities."""

import numpy as np
import pytest

from repro.analysis import bootstrap_f1_interval, delta_table, error_breakdown
from repro.eval.metrics import f1_score
from repro.llm.model import build_model


class TestBootstrap:
    def test_interval_contains_point(self):
        rng = np.random.default_rng(0)
        labels = rng.random(400) < 0.2
        predictions = labels ^ (rng.random(400) < 0.1)
        interval = bootstrap_f1_interval(labels, predictions, n_resamples=300)
        assert interval.lower <= interval.f1 <= interval.upper
        assert interval.f1 == f1_score(labels, predictions).f1

    def test_more_data_tightens_interval(self):
        rng = np.random.default_rng(1)
        small_labels = rng.random(100) < 0.2
        small_preds = small_labels ^ (rng.random(100) < 0.15)
        big_labels = rng.random(3000) < 0.2
        big_preds = big_labels ^ (rng.random(3000) < 0.15)
        small = bootstrap_f1_interval(small_labels, small_preds, n_resamples=300)
        big = bootstrap_f1_interval(big_labels, big_preds, n_resamples=300)
        assert big.width < small.width

    def test_deterministic(self):
        labels = np.array([True, False, True, False] * 20)
        preds = np.array([True, False, False, False] * 20)
        a = bootstrap_f1_interval(labels, preds, n_resamples=100)
        b = bootstrap_f1_interval(labels, preds, n_resamples=100)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_f1_interval(np.array([]), np.array([]))

    def test_invalid_confidence(self):
        labels = np.array([True, False])
        with pytest.raises(ValueError):
            bootstrap_f1_interval(labels, labels, confidence=1.5)


class TestErrorBreakdown:
    def test_categories_cover_split(self, product_split):
        model = build_model("llama-3.1-8b")
        breakdown = error_breakdown(model, product_split)
        assert set(breakdown) == {"corner", "easy"}
        total = breakdown["corner"]["pairs"] + breakdown["easy"]["pairs"]
        assert total == len(product_split)

    def test_corner_cases_are_harder(self, product_split):
        model = build_model("llama-3.1-8b")
        breakdown = error_breakdown(model, product_split)
        corner_err = (breakdown["corner"]["false_negative_rate"]
                      + breakdown["corner"]["false_positive_rate"])
        easy_err = (breakdown["easy"]["false_negative_rate"]
                    + breakdown["easy"]["false_positive_rate"])
        assert corner_err >= easy_err


class TestDeltaTable:
    def test_cellwise_comparison(self):
        table = delta_table({"a": 5.0, "b": -2.0}, {"a": 3.0, "b": 1.0})
        assert table["a"]["delta"] == 2.0
        assert table["a"]["sign_agrees"] == 1.0
        assert table["b"]["sign_agrees"] == 0.0

    def test_missing_columns_skipped(self):
        table = delta_table({"a": 1.0, "c": 2.0}, {"a": 1.0})
        assert set(table) == {"a"}
