"""Tests for repro._util."""

import numpy as np
import pytest

from repro._util import (
    clamp,
    dedupe_preserving_order,
    derive_rng,
    derive_seed,
    extract_numbers,
    stable_hash,
    stable_unit_floats,
    tokenize_simple,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_distinct_inputs_differ(self):
        assert stable_hash("a", "b") != stable_hash("ab")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_64_bit_range(self):
        value = stable_hash("x")
        assert 0 <= value < 2**64


class TestDeriveRng:
    def test_same_namespace_same_stream(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "x").random(5)
        assert np.allclose(a, b)

    def test_different_namespace_different_stream(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "y").random(5)
        assert not np.allclose(a, b)

    def test_derive_seed_is_31_bit(self):
        assert 0 <= derive_seed(1, "z") < 2**31


class TestStableUnitFloats:
    def test_range_and_shape(self):
        values = stable_unit_floats(10, "k")
        assert values.shape == (10,)
        assert np.all((values >= 0) & (values < 1))

    def test_deterministic(self):
        assert np.allclose(stable_unit_floats(4, "a"), stable_unit_floats(4, "a"))


class TestTokenize:
    def test_basic(self):
        assert tokenize_simple("Jabra EVOLVE 80") == ["jabra", "evolve", "80"]

    def test_compound_kept(self):
        assert tokenize_simple("PG-730 v2.0") == ["pg-730", "v2.0"]

    def test_punctuation_dropped(self):
        assert tokenize_simple("a, b; (c)") == ["a", "b", "c"]

    def test_empty(self):
        assert tokenize_simple("") == []


class TestExtractNumbers:
    def test_integers_and_decimals(self):
        assert extract_numbers("80 units, 2.5 kg") == ["80", "2.5"]

    def test_none(self):
        assert extract_numbers("no digits") == []


class TestClamp:
    @pytest.mark.parametrize(
        "value,expected", [(-1.0, 0.0), (0.5, 0.5), (2.0, 1.0)]
    )
    def test_default_bounds(self, value, expected):
        assert clamp(value) == expected

    def test_custom_bounds(self):
        assert clamp(5, low=1, high=3) == 3


class TestDedupe:
    def test_preserves_first_seen_order(self):
        assert dedupe_preserving_order(["b", "a", "b", "c", "a"]) == ["b", "a", "c"]

    def test_empty(self):
        assert dedupe_preserving_order([]) == []
