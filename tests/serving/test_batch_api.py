"""Tests for the simulated batch API."""

import pytest

from repro.llm.model import build_model
from repro.prompts.templates import COMPLEX_FORCE
from repro.serving.batch_api import BatchAPI, BatchRequest, UnknownJobError


@pytest.fixture
def api():
    api = BatchAPI()
    api.register_model(build_model("gpt-4o-mini"), name="gpt-4o-mini")
    return api


def _requests(product_split, n=5):
    return [
        BatchRequest(
            custom_id=f"req-{i}",
            prompt=COMPLEX_FORCE.render(p.left.description, p.right.description),
        )
        for i, p in enumerate(product_split.pairs[:n])
    ]


class TestBatchAPI:
    def test_state_machine(self, api, product_split):
        job = api.submit("gpt-4o-mini", _requests(product_split))
        assert job.status == "validating"
        job = api.poll(job.job_id)
        assert job.status == "in_progress"
        job = api.poll(job.job_id)
        assert job.status == "completed"
        assert job.counts["completed"] == 5

    def test_run_to_completion(self, api, product_split):
        job = api.submit("gpt-4o-mini", _requests(product_split))
        responses = api.run_to_completion(job.job_id)
        assert len(responses) == 5
        assert all(r.ok for r in responses)
        assert all(r.content for r in responses)

    def test_unknown_model_fails_validation(self, api, product_split):
        job = api.submit("gpt-9", _requests(product_split))
        assert job.status == "failed"
        assert "unknown model" in job.error

    def test_duplicate_custom_id_rejected(self, api, product_split):
        requests = _requests(product_split)
        requests.append(requests[0])
        job = api.submit("gpt-4o-mini", requests)
        assert job.status == "failed"

    def test_malformed_prompt_is_per_request_error(self, api):
        job = api.submit(
            "gpt-4o-mini",
            [BatchRequest(custom_id="bad", prompt="not a matching prompt")],
        )
        responses = api.run_to_completion(job.job_id)
        assert not responses[0].ok
        assert responses[0].content is None

    def test_failed_job_raises_on_completion(self, api):
        job = api.submit("gpt-9", [])
        with pytest.raises(RuntimeError, match="failed"):
            api.run_to_completion(job.job_id)

    def test_fine_tuned_model_registration(self, api):
        model = build_model("gpt-4o-mini")
        name = api.register_model(model)
        assert name == "gpt-4o-mini:zero-shot"


class TestUnknownJob:
    """Foreign job ids raise a structured error, never a bare KeyError."""

    def test_poll_unknown_id(self, api):
        with pytest.raises(UnknownJobError) as exc_info:
            api.poll("batch-999")
        assert exc_info.value.job_id == "batch-999"
        assert "never issued" in str(exc_info.value)
        assert "batch-999" in str(exc_info.value)

    def test_run_to_completion_unknown_id(self, api):
        with pytest.raises(UnknownJobError, match="never issued"):
            api.run_to_completion("nope")

    def test_still_catchable_as_keyerror(self, api):
        # Callers written against the old contract keep working.
        with pytest.raises(KeyError):
            api.poll("batch-999")

    def test_ids_are_per_endpoint(self, api, product_split):
        job = api.submit("gpt-4o-mini", _requests(product_split))
        other = BatchAPI()
        with pytest.raises(UnknownJobError):
            other.poll(job.job_id)


class TestBatchCounts:
    def test_counts_track_failures(self, api):
        job = api.submit(
            "gpt-4o-mini",
            [
                BatchRequest(custom_id="good",
                             prompt='q\nEntity 1: a\nEntity 2: b'),
                BatchRequest(custom_id="bad", prompt="malformed"),
            ],
        )
        api.run_to_completion(job.job_id)
        assert job.counts == {"total": 2, "completed": 2, "failed": 1}

    def test_counts_before_execution_show_pending_work(self, api, product_split):
        job = api.submit("gpt-4o-mini", _requests(product_split, n=3))
        assert job.counts == {"total": 3, "completed": 0, "failed": 0}
        api.poll(job.job_id)  # validating → in_progress: still nothing done
        assert job.counts == {"total": 3, "completed": 0, "failed": 0}
        api.poll(job.job_id)  # in_progress → completed
        assert job.counts == {"total": 3, "completed": 3, "failed": 0}

    def test_counts_with_every_request_failing(self, api):
        job = api.submit(
            "gpt-4o-mini",
            [
                BatchRequest(custom_id="bad-1", prompt="x"),
                BatchRequest(custom_id="bad-2", prompt="y"),
            ],
        )
        responses = api.run_to_completion(job.job_id)
        assert all(not r.ok for r in responses)
        # "completed" counts processed requests; per-request errors land
        # in "failed" without failing the job itself.
        assert job.status == "completed"
        assert job.counts == {"total": 2, "completed": 2, "failed": 2}
