"""Tests for the simulated batch API."""

import pytest

from repro.llm.model import build_model
from repro.prompts.templates import COMPLEX_FORCE
from repro.serving.batch_api import BatchAPI, BatchRequest


@pytest.fixture
def api():
    api = BatchAPI()
    api.register_model(build_model("gpt-4o-mini"), name="gpt-4o-mini")
    return api


def _requests(product_split, n=5):
    return [
        BatchRequest(
            custom_id=f"req-{i}",
            prompt=COMPLEX_FORCE.render(p.left.description, p.right.description),
        )
        for i, p in enumerate(product_split.pairs[:n])
    ]


class TestBatchAPI:
    def test_state_machine(self, api, product_split):
        job = api.submit("gpt-4o-mini", _requests(product_split))
        assert job.status == "validating"
        job = api.poll(job.job_id)
        assert job.status == "in_progress"
        job = api.poll(job.job_id)
        assert job.status == "completed"
        assert job.counts["completed"] == 5

    def test_run_to_completion(self, api, product_split):
        job = api.submit("gpt-4o-mini", _requests(product_split))
        responses = api.run_to_completion(job.job_id)
        assert len(responses) == 5
        assert all(r.ok for r in responses)
        assert all(r.content for r in responses)

    def test_unknown_model_fails_validation(self, api, product_split):
        job = api.submit("gpt-9", _requests(product_split))
        assert job.status == "failed"
        assert "unknown model" in job.error

    def test_duplicate_custom_id_rejected(self, api, product_split):
        requests = _requests(product_split)
        requests.append(requests[0])
        job = api.submit("gpt-4o-mini", requests)
        assert job.status == "failed"

    def test_malformed_prompt_is_per_request_error(self, api):
        job = api.submit(
            "gpt-4o-mini",
            [BatchRequest(custom_id="bad", prompt="not a matching prompt")],
        )
        responses = api.run_to_completion(job.job_id)
        assert not responses[0].ok
        assert responses[0].content is None

    def test_failed_job_raises_on_completion(self, api):
        job = api.submit("gpt-9", [])
        with pytest.raises(RuntimeError, match="failed"):
            api.run_to_completion(job.job_id)

    def test_fine_tuned_model_registration(self, api):
        model = build_model("gpt-4o-mini")
        name = api.register_model(model)
        assert name == "gpt-4o-mini:zero-shot"


class TestBatchCounts:
    def test_counts_track_failures(self, api):
        from repro.serving.batch_api import BatchRequest

        job = api.submit(
            "gpt-4o-mini",
            [
                BatchRequest(custom_id="good",
                             prompt='q\nEntity 1: a\nEntity 2: b'),
                BatchRequest(custom_id="bad", prompt="malformed"),
            ],
        )
        api.run_to_completion(job.job_id)
        assert job.counts == {"total": 2, "completed": 2, "failed": 1}
