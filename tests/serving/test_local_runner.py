"""Tests for the local inference runner."""

import pytest

from repro.prompts.templates import COMPLEX_FORCE
from repro.serving.local_runner import LocalRunner


def _prompts(product_split, n=10):
    return [
        COMPLEX_FORCE.render(p.left.description, p.right.description)
        for p in product_split.pairs[:n]
    ]


class TestLocalRunner:
    def test_order_preserved(self, product_split):
        runner = LocalRunner.for_model("llama-3.1-8b", batch_size=3)
        prompts = _prompts(product_split)
        outputs = runner.generate(prompts)
        assert len(outputs) == len(prompts)

    def test_batch_size_does_not_change_outputs(self, product_split):
        prompts = _prompts(product_split)
        small = LocalRunner.for_model("llama-3.1-8b", batch_size=1).generate(prompts)
        large = LocalRunner.for_model("llama-3.1-8b", batch_size=64).generate(prompts)
        assert small == large

    def test_determinism_across_batch_sizes_1_7_32(self, product_split):
        """The docstring's determinism guarantee, pinned batch by batch.

        Real inference stacks famously violate this (batch-dependent kernel
        selection); the library contract is that chunking is invisible —
        the same prompt list yields byte-identical completions whether it
        is processed 1, 7, or 32 prompts at a time.
        """
        prompts = _prompts(product_split, n=40)
        outputs = {
            size: LocalRunner.for_model("llama-3.1-8b",
                                        batch_size=size).generate(prompts)
            for size in (1, 7, 32)
        }
        assert outputs[1] == outputs[7] == outputs[32]
        # repeat runs are stable too (no hidden cross-call state)
        again = LocalRunner.for_model("llama-3.1-8b", batch_size=7).generate(prompts)
        assert again == outputs[7]

    def test_hosted_model_rejected(self):
        with pytest.raises(ValueError, match="hosted"):
            LocalRunner.for_model("gpt-4o")

    def test_invalid_batch_size(self, product_split):
        runner = LocalRunner.for_model("llama-3.1-70b", batch_size=0)
        with pytest.raises(ValueError):
            runner.generate(_prompts(product_split, 2))

    def test_empty_prompts(self):
        runner = LocalRunner.for_model("llama-3.1-8b")
        assert runner.generate([]) == []
