"""Tests for the simulated hosted fine-tuning API."""

import pytest

from repro.core.finetuning import make_training_examples
from repro.serving.finetune_api import FineTuneAPI


@pytest.fixture(scope="module")
def examples(product_split):
    return make_training_examples(product_split)


class TestFineTuneAPI:
    def test_successful_job(self, examples, tiny_dataset):
        api = FineTuneAPI()
        job = api.create("gpt-4o-mini", examples, validation=tiny_dataset.valid)
        assert job.status == "succeeded"
        assert job.fine_tuned_model is not None
        assert job.fine_tuned_model.is_fine_tuned

    def test_only_three_checkpoints_visible(self, examples, tiny_dataset):
        api = FineTuneAPI()
        job = api.create("gpt-4o-mini", examples, validation=tiny_dataset.valid)
        assert len(job.visible_checkpoints) == 3
        assert [e for e, _ in job.visible_checkpoints] == [8, 9, 10]

    def test_open_source_model_rejected(self, examples):
        api = FineTuneAPI()
        job = api.create("llama-3.1-8b", examples)
        assert job.status == "failed"
        assert "hosted" in job.error

    def test_tiny_training_file_rejected(self, examples):
        api = FineTuneAPI()
        job = api.create("gpt-4o-mini", examples[:5])
        assert job.status == "failed"
        assert "at least 10" in job.error

    def test_retrieve(self, examples):
        api = FineTuneAPI()
        job = api.create("gpt-4o-mini", examples[:5])
        assert api.retrieve(job.job_id) is job

    def test_unknown_base_model(self, examples):
        api = FineTuneAPI()
        job = api.create("gpt-9000", examples)
        assert job.status == "failed"
