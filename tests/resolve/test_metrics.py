"""Cluster-metric tests against hand-computed reference values.

The worked example used throughout::

    predicted = {a, b} {c, d, e}        gold = {a, b, c} {d, e}

Contingency matrix [[2, 0], [1, 2]]; from it, by hand:

* B³ precision = (2²/2 + (1² + 2²)/3) / 5 = (11/3)/5 = 73.33 %
  (recall is symmetric here: also 11/15).
* ARI: index = 2, row pairs = 4, col pairs = 4, all pairs = 10 →
  (2 − 1.6) / (4 − 1.6) = 1/6.
* pairwise: tp = 2, fp = 2, fn = 2, tn = 4.
"""

import numpy as np
import pytest

from repro.eval.metrics import f1_score
from repro.resolve import (
    Clustering,
    adjusted_rand_index,
    b_cubed,
    cluster_scores,
    pairwise_scores,
)

PREDICTED = Clustering.from_clusters([["a", "b"], ["c", "d", "e"]])
GOLD = Clustering.from_clusters([["a", "b", "c"], ["d", "e"]])


class TestBCubed:
    def test_hand_computed_example(self):
        precision, recall, f1 = b_cubed(PREDICTED, GOLD)
        assert precision == pytest.approx(100 * 11 / 15)
        assert recall == pytest.approx(100 * 11 / 15)
        assert f1 == pytest.approx(100 * 11 / 15)

    def test_identical_partitions_score_100(self):
        assert b_cubed(GOLD, GOLD) == (100.0, 100.0, 100.0)

    def test_one_big_cluster_has_perfect_recall(self):
        lump = Clustering.from_clusters([["a", "b", "c", "d", "e"]])
        precision, recall, _ = b_cubed(lump, GOLD)
        assert recall == pytest.approx(100.0)
        # precision = (3² + 2²)/5/5 = 13/25
        assert precision == pytest.approx(100 * 13 / 25)


class TestAdjustedRandIndex:
    def test_hand_computed_example(self):
        assert adjusted_rand_index(PREDICTED, GOLD) == pytest.approx(1 / 6)

    def test_identical_partitions_score_1(self):
        assert adjusted_rand_index(GOLD, GOLD) == pytest.approx(1.0)

    def test_all_singletons_both_sides_is_degenerate_agreement(self):
        singles = Clustering.from_clusters([["a"], ["b"], ["c"]])
        assert adjusted_rand_index(singles, singles) == 1.0

    def test_singletons_vs_lump_is_degenerate_disagreement(self):
        singles = Clustering.from_clusters([["a"], ["b"], ["c"]])
        lump = Clustering.from_clusters([["a", "b", "c"]])
        # expected == maximum only in the all-singleton × all-lump corner
        # when one side has no pair mass; here sum_rows=0 → expected=0,
        # maximum=1.5, so the regular formula applies and gives 0.
        assert adjusted_rand_index(singles, lump) == pytest.approx(0.0)


class TestPairwiseScores:
    def test_hand_computed_example(self):
        scores = pairwise_scores(PREDICTED, GOLD)
        assert (scores.tp, scores.fp, scores.fn, scores.tn) == (2, 2, 2, 4)
        assert scores.precision == pytest.approx(50.0)
        assert scores.recall == pytest.approx(50.0)
        assert scores.f1 == pytest.approx(50.0)

    def test_reconciles_with_pairwise_evaluator(self):
        """Enumerating every element pair and scoring the implied labels
        with ``repro.eval.metrics.f1_score`` must give the identical
        MatchingScores object — the cluster metric is the pairwise metric."""
        elements = PREDICTED.elements
        pred_assign = PREDICTED.assignments()
        gold_assign = GOLD.assignments()
        labels, predictions = [], []
        for i, a in enumerate(elements):
            for b in elements[i + 1:]:
                labels.append(gold_assign[a] == gold_assign[b])
                predictions.append(pred_assign[a] == pred_assign[b])
        expected = f1_score(np.array(labels), np.array(predictions))
        assert pairwise_scores(PREDICTED, GOLD) == expected


class TestClusterScores:
    def test_bundle_and_snapshot(self):
        scores = cluster_scores(PREDICTED, GOLD)
        assert scores.records == 5
        assert scores.predicted_clusters == 2
        assert scores.gold_clusters == 2
        snapshot = scores.as_dict()
        assert snapshot["b3_f1"] == pytest.approx(73.33)
        assert snapshot["ari"] == pytest.approx(0.1667)
        assert snapshot["pairwise_f1"] == pytest.approx(50.0)

    def test_mismatched_element_sets_rejected(self):
        other = Clustering.from_clusters([["a", "b"], ["c", "d", "x"]])
        with pytest.raises(ValueError, match="different elements"):
            cluster_scores(other, GOLD)
