"""Tests for golden-record selection (attribute voting + exemplar)."""

import pytest

from repro.datasets.schema import Record
from repro.resolve import (
    Clustering,
    ResolutionError,
    golden_record,
    golden_records,
)


def _record(record_id, attributes, description=None):
    return Record(
        record_id=record_id,
        attributes=attributes,
        description=description or f"desc of {record_id}",
    )


class TestGoldenRecord:
    def test_majority_value_wins(self):
        golden = golden_record([
            _record("r1", {"brand": "sony", "color": "black"}),
            _record("r2", {"brand": "sony", "color": "blue"}),
            _record("r3", {"brand": "sonny", "color": "black"}),
        ])
        assert golden.attributes == {"brand": "sony", "color": "black"}

    def test_ties_break_to_smallest_value(self):
        golden = golden_record([
            _record("r1", {"brand": "sony"}),
            _record("r2", {"brand": "bose"}),
        ])
        assert golden.attributes["brand"] == "bose"

    def test_empty_values_never_vote(self):
        golden = golden_record([
            _record("r1", {"brand": ""}),
            _record("r2", {"brand": ""}),
            _record("r3", {"brand": "sony"}),
        ])
        assert golden.attributes["brand"] == "sony"

    def test_description_comes_from_best_agreeing_exemplar(self):
        records = [
            _record("r1", {"brand": "sony", "color": "blue"}, "odd one out"),
            _record("r2", {"brand": "sony", "color": "black"}, "the exemplar"),
            _record("r3", {"brand": "sony", "color": "black"}, "runner-up"),
        ]
        golden = golden_record(records)
        # r2 and r3 agree with the vote on both keys; the record-id
        # tie-break picks r2.
        assert golden.description == "the exemplar"

    def test_id_defaults_to_smallest_member(self):
        golden = golden_record([_record("r9", {}), _record("r2", {})])
        assert golden.record_id == "r2"
        override = golden_record([_record("r9", {})], record_id="cluster-7")
        assert override.record_id == "cluster-7"

    def test_no_records_rejected(self):
        with pytest.raises(ResolutionError):
            golden_record([])


class TestGoldenRecords:
    def test_keys_are_cluster_ids(self):
        clustering = Clustering.from_clusters([["r1", "r2"], ["r3"]])
        records = {
            "r1": _record("r1", {"brand": "sony"}),
            "r2": _record("r2", {"brand": "sony"}),
            "r3": _record("r3", {"brand": "bose"}),
        }
        golden = golden_records(clustering, records)
        assert sorted(golden) == ["r1", "r3"]
        assert golden["r1"].record_id == "r1"
        assert golden["r1"].attributes == {"brand": "sony"}
        assert golden["r3"].attributes == {"brand": "bose"}

    def test_missing_record_rejected(self):
        clustering = Clustering.from_clusters([["r1", "r2"]])
        with pytest.raises(ResolutionError, match="no record"):
            golden_records(clustering, {"r1": _record("r1", {})})
