"""Tests for batch resolution over a BlockingResult and the CLI front door."""

import json

import pytest

from repro.blocking import BlockingResult, TokenBlocker
from repro.cli import main
from repro.datasets.registry import load_dataset
from repro.datasets.schema import Record, Split
from repro.engine import MatchingEngine
from repro.resolve import (
    gold_clustering,
    node_id,
    resolve_blocking,
    split_records,
)

from tests.engine.doubles import ParityBackend


def _records(side, n):
    return [
        Record(
            record_id=f"{side}{i}",
            attributes={},
            description=f"widget model {side}{i} common tokens",
        )
        for i in range(n)
    ]


@pytest.fixture()
def blocking():
    left, right = _records("a", 6), _records("b", 6)
    return TokenBlocker().block(left, right)


def _engine():
    return MatchingEngine(backend=ParityBackend())


class TestResolveBlocking:
    def test_covers_every_record_of_both_sides(self, blocking):
        report = resolve_blocking(_engine(), blocking)
        assert len(report.clustering.elements) == 12
        assert all(e[:2] in ("L:", "R:") for e in report.clustering.elements)

    def test_short_circuit_is_clustering_identical(self, blocking):
        exhaustive = resolve_blocking(
            _engine(), blocking, short_circuit=False, chunk_size=4
        )
        shortcut = resolve_blocking(
            _engine(), blocking, short_circuit=True, chunk_size=4
        )
        assert shortcut.clustering == exhaustive.clustering
        assert shortcut.golden == exhaustive.golden
        assert exhaustive.short_circuited == 0
        assert (
            shortcut.engine_calls + shortcut.short_circuited
            == exhaustive.engine_calls
        )

    def test_duplicate_record_id_on_one_side_rejected(self):
        left = [_records("a", 1)[0], _records("a", 1)[0]]
        blocking = BlockingResult(
            left=tuple(left), right=tuple(_records("b", 1)),
            candidates=frozenset(),
        )
        with pytest.raises(ValueError, match="duplicate record id"):
            resolve_blocking(_engine(), blocking)

    def test_unknown_mode_rejected(self, blocking):
        with pytest.raises(ValueError, match="mode"):
            resolve_blocking(_engine(), blocking, mode="agglomerative")

    def test_report_snapshot_is_json_serializable(self, blocking):
        report = resolve_blocking(_engine(), blocking)
        snapshot = report.as_dict()
        json.dumps(snapshot)
        assert snapshot["candidates"] == len(blocking.candidates)
        assert snapshot["records"] == 12


class TestSplitHelpers:
    def test_split_records_deduplicates_by_id(self):
        split = load_dataset("abt-buy").test
        left, right = split_records(split)
        assert len({r.record_id for r in left}) == len(left)
        assert len({r.record_id for r in right}) == len(right)

    def test_gold_clustering_closes_positive_pairs(self):
        split = load_dataset("abt-buy").test
        gold = gold_clustering(split)
        for pair in split.pairs:
            left = node_id("L", pair.left)
            right = node_id("R", pair.right)
            same = gold.assignments()[left] == gold.assignments()[right]
            if pair.label:
                assert same
        # Every record of every pair is covered.
        assert len(gold.elements) == len(
            {node_id("L", p.left) for p in split.pairs}
            | {node_id("R", p.right) for p in split.pairs}
        )


class TestResolveCommand:
    ARGS = ["resolve", "--dataset", "abt-buy", "--limit", "60"]

    def test_json_output_is_byte_identical_across_runs(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema_version"] == 1
        assert payload["records"] == payload["scores"]["records"]
        assert payload["clusters"] >= 1

    def test_stats_flag_adds_engine_snapshot(self, capsys):
        assert main(self.ARGS + ["--format", "json", "--stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "engine_stats" in payload
        assert "latency" not in payload["engine_stats"]
        assert payload["engine_stats"]["requests"] >= 1

    def test_golden_flag_lists_multi_member_clusters(self, capsys):
        assert main(self.ARGS + ["--format", "json", "--golden"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(entry["size"] > 1 for entry in payload["golden"])

    def test_text_format_renders_scores(self, capsys):
        assert main(self.ARGS + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        assert "B-cubed" in out

    def test_rejects_nonpositive_limit(self, capsys):
        assert main(["resolve", "--dataset", "abt-buy", "--limit", "0"]) == 2
