"""Tests for decision → cluster construction (both clustering modes)."""

import pytest

from repro._util import derive_rng
from repro.resolve import (
    Clustering,
    PairDecision,
    ResolutionError,
    correlation_cluster,
    transitive_closure,
)


def _yes(a, b, score=1.0):
    return PairDecision(left=a, right=b, match=True, score=score)


def _no(a, b, score=1.0):
    return PairDecision(left=a, right=b, match=False, score=score)


ELEMENTS = ("a", "b", "c", "d", "e", "f")


class TestPairDecision:
    def test_self_pair_rejected(self):
        with pytest.raises(ResolutionError):
            PairDecision(left="a", right="a", match=True)

    @pytest.mark.parametrize("score", [-0.1, 1.5])
    def test_score_outside_unit_interval_rejected(self, score):
        with pytest.raises(ResolutionError):
            PairDecision(left="a", right="b", match=True, score=score)

    def test_key_is_orientation_free(self):
        assert _yes("b", "a").key == _yes("a", "b").key == ("a", "b")


class TestClustering:
    def test_canonical_form_ignores_construction_order(self):
        one = Clustering.from_clusters([["b", "a"], ["c"]])
        two = Clustering.from_clusters([("c",), ("a", "b")])
        assert one == two
        assert one.clusters == (("a", "b"), ("c",))

    def test_overlapping_clusters_rejected(self):
        with pytest.raises(ResolutionError):
            Clustering.from_clusters([["a", "b"], ["b", "c"]])

    def test_assignments_use_min_member_ids(self):
        clustering = Clustering.from_clusters([["b", "a"], ["c"]])
        assert clustering.assignments() == {"a": "a", "b": "a", "c": "c"}
        assert clustering.cluster_of("b") == ("a", "b")
        with pytest.raises(KeyError):
            clustering.cluster_of("ghost")

    def test_size_histogram(self):
        clustering = Clustering.from_clusters([["a", "b"], ["c"], ["d"]])
        assert clustering.size_histogram() == {1: 2, 2: 1}


class TestTransitiveClosure:
    def test_positive_chain_merges(self):
        decisions = [_yes("a", "b"), _yes("b", "c"), _no("d", "e")]
        clustering = transitive_closure(ELEMENTS, decisions)
        assert clustering.clusters == (
            ("a", "b", "c"), ("d",), ("e",), ("f",),
        )

    @pytest.mark.parametrize("order_seed", range(5))
    def test_decision_order_never_matters(self, order_seed):
        decisions = [
            _yes("a", "b"), _yes("b", "c"), _yes("d", "e"),
            _no("c", "d"), _no("a", "f"),
        ]
        reference = transitive_closure(ELEMENTS, decisions)
        rng = derive_rng(77, "tc-order", order_seed)
        shuffled = list(decisions)
        rng.shuffle(shuffled)
        assert transitive_closure(ELEMENTS, shuffled) == reference

    def test_must_link_merges_without_decisions(self):
        clustering = transitive_closure(
            ELEMENTS, [], must_link=[("a", "f")]
        )
        assert clustering.cluster_of("a") == ("a", "f")

    def test_cannot_link_blocks_the_merge(self):
        decisions = [_yes("a", "b"), _yes("b", "c")]
        clustering = transitive_closure(
            ELEMENTS, decisions, cannot_link=[("a", "c")]
        )
        # One of the two merges is vetoed; a and c never co-cluster.
        assignments = clustering.assignments()
        assert assignments["a"] != assignments["c"]

    def test_contradictory_constraints_raise(self):
        with pytest.raises(ResolutionError):
            transitive_closure(
                ELEMENTS, [], must_link=[("a", "b")], cannot_link=[("b", "a")]
            )


class TestCorrelationCluster:
    def test_low_agreement_merge_vetoed(self):
        # One positive vs two negatives on the same pair: agreement 1/3.
        decisions = [_yes("a", "b"), _no("a", "b"), _no("b", "a")]
        clustering = correlation_cluster(
            ("a", "b"), decisions, min_agreement=0.5
        )
        assert clustering.clusters == (("a",), ("b",))

    def test_agreeing_evidence_merges(self):
        decisions = [_yes("a", "b"), _yes("a", "b"), _no("a", "b")]
        clustering = correlation_cluster(
            ("a", "b"), decisions, min_agreement=0.5
        )
        assert clustering.clusters == (("a", "b"),)

    def test_fallback_evidence_weighs_half(self):
        # backend yes (1.0) vs two fallback noes (0.5 each): agreement 0.5.
        decisions = [
            _yes("a", "b", score=1.0),
            _no("a", "b", score=0.5),
            _no("a", "b", score=0.5),
        ]
        merged = correlation_cluster(("a", "b"), decisions, min_agreement=0.5)
        assert merged.clusters == (("a", "b"),)
        vetoed = correlation_cluster(("a", "b"), decisions, min_agreement=0.6)
        assert vetoed.clusters == (("a",), ("b",))

    def test_cross_cluster_evidence_aggregates(self):
        # a=b and c=d are solid (merged first: highest positive weight);
        # the single a~c bridge is then outvoted by the b~d + b~c
        # negatives crossing the two merged components (agreement 1/3).
        decisions = [
            _yes("a", "b"), _yes("a", "b"), _yes("c", "d"), _yes("c", "d"),
            _yes("a", "c"), _no("b", "d"), _no("b", "c"),
        ]
        clustering = correlation_cluster(ELEMENTS[:4], decisions)
        assert clustering.cluster_of("a") == ("a", "b")
        assert clustering.cluster_of("c") == ("c", "d")

    def test_zero_threshold_reduces_to_transitive_closure(self):
        decisions = [_yes("a", "b"), _no("a", "b"), _yes("b", "c")]
        loose = correlation_cluster(ELEMENTS, decisions, min_agreement=0.0)
        closure = transitive_closure(ELEMENTS, decisions)
        assert loose == closure

    @pytest.mark.parametrize("order_seed", range(5))
    def test_decision_order_never_matters(self, order_seed):
        decisions = [
            _yes("a", "b"), _no("a", "b"), _yes("b", "c"), _yes("d", "e"),
            _no("c", "d"), _yes("e", "f", score=0.5), _no("e", "f"),
        ]
        reference = correlation_cluster(ELEMENTS, decisions)
        rng = derive_rng(78, "cc-order", order_seed)
        shuffled = list(decisions)
        rng.shuffle(shuffled)
        assert correlation_cluster(ELEMENTS, shuffled) == reference

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ResolutionError):
            correlation_cluster(ELEMENTS, [], min_agreement=1.5)
