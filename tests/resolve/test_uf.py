"""Property tests for the deterministic union-find.

The contract under test: the partition (and every public id) is a pure
function of the element set and the *set* of union edges — never of the
order elements were added or unions were applied.
"""

import pytest

from repro._util import derive_rng
from repro.resolve import UnionFind

ELEMENTS = [f"r{i:02d}" for i in range(12)]
EDGES = [
    ("r00", "r01"), ("r01", "r02"), ("r03", "r04"),
    ("r05", "r06"), ("r06", "r07"), ("r07", "r05"),  # cycle
    ("r08", "r09"), ("r09", "r10"),
]
EXPECTED = (
    ("r00", "r01", "r02"),
    ("r03", "r04"),
    ("r05", "r06", "r07"),
    ("r08", "r09", "r10"),
    ("r11",),
)


def _build(elements, edges):
    uf = UnionFind(elements)
    for a, b in edges:
        uf.union(a, b)
    return uf


class TestMembership:
    def test_add_is_idempotent(self):
        uf = UnionFind()
        assert uf.add("a") is True
        assert uf.add("a") is False
        assert len(uf) == 1
        assert uf.find("a") == "a"

    def test_union_registers_unknown_elements(self):
        uf = UnionFind()
        assert uf.union("a", "b") is True
        assert uf.connected("a", "b")
        assert set(uf) == {"a", "b"}

    def test_union_of_merged_pair_is_a_noop(self):
        uf = _build(ELEMENTS, EDGES)
        assert uf.union("r00", "r02") is False
        assert uf.components() == EXPECTED

    def test_find_unknown_element_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("ghost")


class TestDeterminism:
    def test_components_are_canonical(self):
        uf = _build(ELEMENTS, EDGES)
        assert uf.components() == EXPECTED
        assert uf.component_of("r06") == ("r05", "r06", "r07")

    def test_find_returns_min_member_not_a_root(self):
        # Rank unions can root a component anywhere; the public id must
        # always be the smallest member regardless.
        uf = _build(ELEMENTS, EDGES)
        for component in uf.components():
            for member in component:
                assert uf.find(member) == component[0]

    @pytest.mark.parametrize("order_seed", range(5))
    def test_union_order_is_commutative(self, order_seed):
        rng = derive_rng(1234, "uf-order", order_seed)
        elements = list(ELEMENTS)
        edges = list(EDGES)
        rng.shuffle(elements)
        rng.shuffle(edges)
        # Also flip some edge orientations.
        edges = [
            (b, a) if rng.random() < 0.5 else (a, b) for a, b in edges
        ]
        shuffled = _build(elements, edges)
        assert shuffled.components() == EXPECTED
        assert shuffled.component_ids() == _build(ELEMENTS, EDGES).component_ids()

    def test_component_ids_are_stable_under_growth(self):
        # Adding an unrelated element never changes existing ids.
        uf = _build(ELEMENTS, EDGES)
        before = uf.component_ids()
        uf.add("zzz")
        after = uf.component_ids()
        del after["zzz"]
        assert after == before


class TestCopy:
    def test_copy_is_independent(self):
        uf = _build(ELEMENTS, EDGES)
        clone = uf.copy()
        clone.union("r00", "r11")
        assert clone.connected("r00", "r11")
        assert not uf.connected("r00", "r11")
        assert uf.components() == EXPECTED
