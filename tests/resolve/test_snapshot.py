"""Snapshot/compaction: checkpointed stores recover byte-identical.

Every round-trip here follows the same script — build a journaled store,
checkpoint it, "crash" (drop the in-memory object), recover, and compare
the full observable state against an uninterrupted reference.  The
snapshot is only correct if that comparison is *exact*: clustering,
decision log, and golden records.
"""

import json

import pytest

from repro.engine import MatchingEngine
from repro.engine.retry import RetryPolicy
from repro.faults import JournalError, ParityBackend, synthetic_records
from repro.faults.harness import resolution_snapshot
from repro.faults.journal import journal_header
from repro.index import MinHashCandidateIndex
from repro.resolve import ResolutionStore, TokenCandidateIndex
from repro.resolve.snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    snapshot_path_for,
    write_snapshot_doc,
)


def make_engine(seed=0):
    return MatchingEngine(
        backend=ParityBackend(), retry=RetryPolicy(timeout=1.0, seed=seed)
    )


def journaled_store(path, **kwargs):
    kwargs.setdefault("index", TokenCandidateIndex())
    return ResolutionStore(make_engine(), journal=path, **kwargs)


def roundtrip(tmp_path, records, compact=False, index_factory=None, **kwargs):
    """Ingest, checkpoint, crash, recover; return (reference, recovered)."""
    factory = index_factory or TokenCandidateIndex
    path = tmp_path / "wal.jsonl"
    store = journaled_store(path, index=factory(), **kwargs)
    store.ingest_all(records)
    reference = resolution_snapshot(store)
    if compact:
        store.compact()
    else:
        store.snapshot()
    store.close()
    recovered = ResolutionStore.recover(
        path, make_engine(), index=factory(), **kwargs
    )
    try:
        return reference, resolution_snapshot(recovered)
    finally:
        recovered.close()


class TestSnapshotRoundTrip:
    def test_empty_store(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.snapshot()
        store.close()
        recovered = ResolutionStore.recover(path, make_engine())
        try:
            assert len(recovered) == 0
            assert recovered.decisions() == ()
        finally:
            recovered.close()

    def test_single_record(self, tmp_path):
        reference, recovered = roundtrip(tmp_path, synthetic_records(1))
        assert recovered == reference

    def test_many_records(self, tmp_path):
        reference, recovered = roundtrip(tmp_path, synthetic_records(24))
        assert recovered == reference

    def test_constraints_survive(self, tmp_path):
        records = synthetic_records(12)
        reference, recovered = roundtrip(
            tmp_path, records,
            must_link=(("r000", "r011"),),
            cannot_link=(("r001", "r002"),),
        )
        assert recovered == reference

    def test_minhash_index_backend(self, tmp_path):
        reference, recovered = roundtrip(
            tmp_path, synthetic_records(24),
            index_factory=lambda: MinHashCandidateIndex(
                num_perm=32, threshold=0.3
            ),
        )
        assert recovered == reference

    def test_recovered_store_continues_identically(self, tmp_path):
        records = synthetic_records(24)
        with ResolutionStore(make_engine()) as full:
            full.ingest_all(records)
            reference = resolution_snapshot(full)
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.ingest_all(records[:12])
        store.snapshot()
        store.close()
        recovered = ResolutionStore.recover(path, make_engine())
        try:
            recovered.ingest_all(records[12:])
            assert resolution_snapshot(recovered) == reference
        finally:
            recovered.close()


class TestCompaction:
    def test_compact_swaps_journal_for_suffix_only_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.ingest_all(synthetic_records(12))
        seq = store.journal_seq()
        assert seq > 0
        store.compact()
        header = journal_header(path)
        assert header["basis"] == seq
        # Only the header remains: retired history lives in the snapshot.
        assert len(path.read_text().splitlines()) == 1
        assert store.journal_seq() == seq  # monotonic across the swap
        store.close()

    def test_compact_roundtrip(self, tmp_path):
        reference, recovered = roundtrip(
            tmp_path, synthetic_records(24), compact=True
        )
        assert recovered == reference

    def test_ingest_after_compact_recovers(self, tmp_path):
        records = synthetic_records(24)
        with ResolutionStore(make_engine()) as full:
            full.ingest_all(records)
            reference = resolution_snapshot(full)
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.ingest_all(records[:12])
        store.compact()
        store.ingest_all(records[12:])  # journal suffix past the snapshot
        store.close()
        recovered = ResolutionStore.recover(path, make_engine())
        try:
            assert resolution_snapshot(recovered) == reference
        finally:
            recovered.close()

    def test_repeated_compaction_keeps_sequence_monotonic(self, tmp_path):
        records = synthetic_records(18)
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        last = 0
        for i in range(3):
            store.ingest_all(records[i * 6 : (i + 1) * 6])
            store.compact()
            seq = store.journal_seq()
            assert seq >= last
            last = seq
        reference = resolution_snapshot(store)
        store.close()
        recovered = ResolutionStore.recover(path, make_engine())
        try:
            assert resolution_snapshot(recovered) == reference
        finally:
            recovered.close()


class TestQuiescence:
    def test_snapshot_requires_a_journal(self):
        store = ResolutionStore(make_engine())
        with pytest.raises(ValueError, match="journal"):
            store.snapshot()

    def test_snapshot_refuses_inflight_ingest(self, tmp_path):
        store = journaled_store(tmp_path / "wal.jsonl")
        store.ingest_all(synthetic_records(4))
        store._inflight = 1  # simulate a concurrent ingest mid-call
        try:
            with pytest.raises(ValueError, match="quiescent"):
                store.snapshot()
        finally:
            store._inflight = 0
            store.close()


class TestValidation:
    def write_doc(self, tmp_path, **overrides):
        doc = {
            "kind": "resolve-snapshot",
            "version": SNAPSHOT_VERSION,
            "mode": "transitive",
            "seq": 0,
            "records": [],
            "decisions": [],
            "must_link": [],
            "cannot_link": [],
            "components": [],
            "engine_calls": 0,
            "short_circuited": 0,
            "index": {"class": "TokenCandidateIndex", "state": None},
        }
        doc.update(overrides)
        path = tmp_path / "wal.jsonl.snapshot"
        write_snapshot_doc(path, doc)
        return path

    def test_wrong_kind_rejected(self, tmp_path):
        path = self.write_doc(tmp_path, kind="eval-snapshot")
        with pytest.raises(JournalError, match="not a resolution snapshot"):
            load_snapshot(path, mode="transitive")

    def test_wrong_version_rejected(self, tmp_path):
        path = self.write_doc(tmp_path, version=99)
        with pytest.raises(JournalError, match="version"):
            load_snapshot(path, mode="transitive")

    def test_mode_mismatch_rejected(self, tmp_path):
        path = self.write_doc(tmp_path, mode="correlation")
        with pytest.raises(JournalError, match="mode"):
            load_snapshot(path, mode="transitive")

    def test_garbage_rejected_with_path(self, tmp_path):
        path = tmp_path / "wal.jsonl.snapshot"
        path.write_text("not json\n")
        with pytest.raises(JournalError) as excinfo:
            load_snapshot(path, mode="transitive")
        assert excinfo.value.path == path
        assert excinfo.value.lineno == 1

    def test_index_class_mismatch_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path, index=MinHashCandidateIndex(num_perm=32))
        store.ingest_all(synthetic_records(6))
        store.snapshot()
        store.close()
        with pytest.raises(JournalError, match="MinHashCandidateIndex"):
            ResolutionStore.recover(
                path, make_engine(), index=TokenCandidateIndex()
            )

    def test_blank_journal_with_snapshot_rejected(self, tmp_path):
        # A snapshot without its journal means the journal file was lost:
        # recovering "empty" would silently drop the checkpointed state.
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.ingest_all(synthetic_records(6))
        store.snapshot()
        store.close()
        path.write_bytes(b"")
        with pytest.raises(JournalError, match="snapshot exists"):
            ResolutionStore.recover(path, make_engine())

    def test_journal_basis_past_snapshot_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.ingest_all(synthetic_records(6))
        store.compact()
        store.close()
        snap_path = snapshot_path_for(path)
        doc = json.loads(snap_path.read_text())
        doc["seq"] = doc["seq"] - 1  # snapshot now claims less than basis
        write_snapshot_doc(snap_path, doc)
        with pytest.raises(JournalError, match="basis"):
            ResolutionStore.recover(path, make_engine())


class TestComponentsField:
    def test_snapshot_materializes_the_partition(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.ingest_all(synthetic_records(12))
        store.snapshot()
        clusters = [list(c) for c in store.clustering().clusters]
        store.close()
        doc = json.loads(snapshot_path_for(path).read_text())
        assert sorted(map(sorted, doc["components"])) == sorted(
            map(sorted, clusters)
        )

    def test_pre_components_snapshot_still_recovers(self, tmp_path):
        # Forward compatibility with snapshots taken before the partition
        # was materialized: recovery falls back to replaying unions.
        path = tmp_path / "wal.jsonl"
        store = journaled_store(path)
        store.ingest_all(synthetic_records(12))
        reference = resolution_snapshot(store)
        store.snapshot()
        store.close()
        snap_path = snapshot_path_for(path)
        doc = json.loads(snap_path.read_text())
        del doc["components"]
        write_snapshot_doc(snap_path, doc)
        recovered = ResolutionStore.recover(path, make_engine())
        try:
            assert resolution_snapshot(recovered) == reference
        finally:
            recovered.close()
