"""Tests for the incremental ResolutionStore.

The engine is backed by :class:`tests.engine.doubles.ParityBackend` — a
deterministic pure function of the prompt — so every assertion about
order invariance is exercised against a model whose answer is *not*
symmetric in (left, right): exactly the property the store's canonical
pair orientation must neutralize.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro._util import derive_rng
from repro.datasets.schema import Record
from repro.engine import MatchingEngine
from repro.engine.engine import MatchResult
from repro.resolve import (
    ResolutionStore,
    TokenCandidateIndex,
    decision_score,
)

from tests.engine.doubles import ParityBackend

GROUPS = ("alpha", "bravo", "carol", "delta")


def _records(n=16):
    """n records in 4 token groups, all sharing the token 'widget'."""
    return [
        Record(
            record_id=f"r{i:02d}",
            attributes={"group": GROUPS[i % 4]},
            description=f"widget {GROUPS[i % 4]} series model {i}",
        )
        for i in range(n)
    ]


def _store(**kwargs):
    kwargs.setdefault("chunk_size", 4)
    return ResolutionStore(MatchingEngine(backend=ParityBackend()), **kwargs)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            _store(mode="agglomerative")

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError, match="chunk_size"):
            _store(chunk_size=0)

    def test_duplicate_ingest_rejected(self):
        store = _store()
        record = _records(1)[0]
        store.ingest(record)
        with pytest.raises(ValueError, match="already ingested"):
            store.ingest(record)


class TestIngestion:
    def test_membership_and_results(self):
        store = _store()
        records = _records(6)
        results = store.ingest_all(records)
        assert len(store) == 6
        assert "r03" in store and "r99" not in store
        assert store.records() == tuple(records)
        for result, record in zip(results, records):
            assert result.record_id == record.record_id
            cluster = store.clustering().cluster_of(record.record_id)
            assert store._cluster_of(record.record_id) == cluster
        # The reported cluster id is the canonical min member.
        last = results[-1]
        assert last.cluster_id == min(
            store.clustering().cluster_of(last.record_id)
        )

    def test_every_candidate_pair_is_decided_exactly_once(self):
        store = _store(short_circuit=False)
        store.ingest_all(_records(8))
        # All 8 records share 'widget', so every unordered pair is a
        # candidate; each must appear once in the decision log.
        keys = [d.key for d in store.decisions()]
        assert len(keys) == len(set(keys)) == 8 * 7 // 2
        assert store.engine_calls == 28

    @pytest.mark.parametrize("order_seed", range(5))
    def test_insertion_order_invariance(self, order_seed):
        records = _records(14)
        reference = _store(short_circuit=False)
        reference.ingest_all(records)

        shuffled = list(records)
        derive_rng(4242, "ingest-order", order_seed).shuffle(shuffled)
        store = _store(short_circuit=False)
        store.ingest_all(shuffled)

        assert store.clustering() == reference.clustering()
        assert store.decisions() == reference.decisions()
        assert store.golden_records() == reference.golden_records()

    @pytest.mark.parametrize("order_seed", range(3))
    def test_short_circuit_preserves_the_clustering(self, order_seed):
        records = list(_records(14))
        derive_rng(4243, "sc-order", order_seed).shuffle(records)
        exhaustive = _store(short_circuit=False)
        exhaustive.ingest_all(records)
        shortcut = _store(short_circuit=True)
        shortcut.ingest_all(records)

        assert shortcut.clustering() == exhaustive.clustering()
        assert shortcut.short_circuited > 0
        assert (
            shortcut.engine_calls + shortcut.short_circuited
            == exhaustive.engine_calls
        )

    def test_concurrent_ingestion_matches_sequential(self):
        records = _records(12)
        sequential = _store(short_circuit=False)
        sequential.ingest_all(records)

        concurrent = _store(short_circuit=False)
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(concurrent.ingest, records))
        assert concurrent.clustering() == sequential.clustering()
        assert len(concurrent) == 12


class TestConstraintsAndModes:
    def test_must_link_joins_token_disjoint_records(self):
        a = Record(record_id="a", attributes={}, description="red apple")
        b = Record(record_id="b", attributes={}, description="blue bicycle")
        store = _store(must_link=[("a", "b")])
        store.ingest(a)
        store.ingest(b)
        assert store.clustering().cluster_of("a") == ("a", "b")

    def test_cannot_link_disables_short_circuit_and_separates(self):
        store = _store(cannot_link=[("r00", "r04")])
        assert store.short_circuit is False
        store.ingest_all(_records(8))
        assignments = store.clustering().assignments()
        assert assignments["r00"] != assignments["r04"]

    def test_correlation_mode_never_short_circuits(self):
        store = _store(mode="correlation")
        assert store.short_circuit is False
        store.ingest_all(_records(8))
        assert store.short_circuited == 0
        assert len(store.clustering().elements) == 8


class TestTokenCandidateIndex:
    def test_min_shared_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenCandidateIndex(min_shared=0)

    def test_candidates_sorted_and_thresholded(self):
        index = TokenCandidateIndex(min_shared=2)
        index.add("x", "widget alpha series")
        index.add("y", "widget bravo series")
        index.add("z", "gadget bravo lineup")
        # 'widget series' shared with x and y; only one token with z.
        assert index.candidates("widget charlie series") == ("x", "y")

    def test_exclude_drops_the_probe_itself(self):
        index = TokenCandidateIndex()
        index.add("x", "widget alpha")
        assert index.candidates("widget alpha", exclude="x") == ()


class TestDecisionScore:
    @pytest.mark.parametrize(
        "source,score",
        [("backend", 1.0), ("cache", 1.0), ("fallback", 0.5)],
    )
    def test_source_weights(self, source, score):
        result = MatchResult(
            left="a", right="b", response="Yes.", decision=True, source=source
        )
        assert decision_score(result) == score
