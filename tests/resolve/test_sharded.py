"""Sharded ResolutionStore: routing, shard-count invariance, kill/resume.

The load-bearing claim is **K shards ≡ 1 shard ≡ unsharded**: clustering
and golden records must be byte-identical for every shard count and
insertion order, including runs where shards die and resume mid-ingest.
The engine is deterministic (parity of the prompt hash), so any drift
would be the sharding layer's fault.
"""

import pytest

from repro.engine import MatchingEngine
from repro.engine.retry import RetryPolicy
from repro.faults import ParityBackend, synthetic_records
from repro.faults.harness import resolution_snapshot
from repro.index import MinHashCandidateIndex
from repro.resolve import ResolutionStore, TokenCandidateIndex
from repro.resolve.sharded import (
    MergeQueue,
    ShardedResolutionStore,
    route_record,
    shard_journal_path,
)


def make_engine(seed=0):
    return MatchingEngine(
        backend=ParityBackend(), retry=RetryPolicy(timeout=1.0, seed=seed)
    )


def unsharded_reference(records):
    with ResolutionStore(make_engine()) as store:
        store.ingest_all(records)
        return resolution_snapshot(store)


def global_view(store):
    """The sharded analogue of ``resolution_snapshot`` minus decisions.

    Shard decision logs may legitimately differ from the unsharded log
    (short-circuiting fires at different moments); the byte-identity
    claim is over what consumers observe — clustering and goldens.
    """
    return {
        "clusters": [list(c) for c in store.clustering().clusters],
        "golden": {
            cid: record.description
            for cid, record in sorted(store.golden_records().items())
        },
    }


class TestRouting:
    def test_owners_cover_blocking_keys(self):
        router = TokenCandidateIndex()
        for record in synthetic_records(20):
            owners = route_record(record, 4, router)
            assert owners == tuple(sorted(set(owners)))
            assert all(0 <= o < 4 for o in owners)
            expected = {k % 4 for k in router.blocking_keys(record.description)}
            assert set(owners) == expected

    def test_keyless_record_gets_one_durability_shard(self):
        from repro.datasets.schema import Record

        router = TokenCandidateIndex()
        record = Record(record_id="x1", attributes={}, description="")
        owners = route_record(record, 4, router)
        assert len(owners) == 1
        # Routing is a pure function: same record, same home shard.
        assert owners == route_record(record, 4, router)

    def test_candidate_pairs_co_occur_in_some_shard(self):
        # The correctness keystone: any pair the index would surface must
        # share at least one owner shard, for every shard count.
        router = TokenCandidateIndex()
        records = synthetic_records(30)
        for shards in (2, 3, 4, 7):
            owners = {
                r.record_id: set(route_record(r, shards, router))
                for r in records
            }
            with ResolutionStore(make_engine(), short_circuit=False) as ref:
                ref.ingest_all(records)
                for decision in ref.decisions():
                    assert owners[decision.left] & owners[decision.right], (
                        f"candidate pair {decision.key} split across "
                        f"disjoint shards at K={shards}"
                    )


class TestShardCountInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_clustering_identical_for_every_shard_count(
        self, tmp_path, shards
    ):
        records = synthetic_records(30)
        reference = unsharded_reference(records)
        with ShardedResolutionStore(
            make_engine(), tmp_path / f"k{shards}", shards=shards
        ) as store:
            store.ingest_all(records)
            view = global_view(store)
        assert view["clusters"] == reference["clusters"]
        assert view["golden"] == reference["golden"]

    def test_insertion_order_invariant(self, tmp_path):
        records = synthetic_records(24)
        reference = unsharded_reference(records)
        reordered = list(reversed(records))
        with ShardedResolutionStore(
            make_engine(), tmp_path / "rev", shards=4
        ) as store:
            store.ingest_all(reordered)
            view = global_view(store)
        assert view["clusters"] == reference["clusters"]
        assert view["golden"] == reference["golden"]

    def test_minhash_index_factory(self, tmp_path):
        records = synthetic_records(24)

        def factory():
            return MinHashCandidateIndex(num_perm=32, threshold=0.3)

        with ResolutionStore(make_engine(), index=factory()) as ref_store:
            ref_store.ingest_all(records)
            reference = resolution_snapshot(ref_store)
        with ShardedResolutionStore(
            make_engine(), tmp_path / "mh", shards=4, index_factory=factory
        ) as store:
            store.ingest_all(records)
            view = global_view(store)
        assert view["clusters"] == reference["clusters"]
        assert view["golden"] == reference["golden"]


class TestLifecycle:
    def test_shards_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ShardedResolutionStore(make_engine(), tmp_path, shards=0)

    def test_engine_count_must_match_shards(self, tmp_path):
        with pytest.raises(ValueError, match="engines"):
            ShardedResolutionStore(
                [make_engine(), make_engine()], tmp_path, shards=4
            )

    def test_ingest_is_idempotent_per_shard(self, tmp_path):
        records = synthetic_records(8)
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=3
        ) as store:
            store.ingest_all(records)
            before = global_view(store)
            store.ingest(records[0])  # re-ingest: skipped on every owner
            assert global_view(store) == before

    def test_stats_report_per_shard_counters(self, tmp_path):
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=3
        ) as store:
            store.ingest_all(synthetic_records(12))
            stats = store.stats()
            assert stats["shards"] == 3
            assert stats["records"] == 12
            assert stats["dead_shards"] == []
            assert len(stats["per_shard"]) == 3
            assert sum(s["records"] for s in stats["per_shard"]) >= 12


class TestRecovery:
    def test_whole_fleet_recovers_byte_identical(self, tmp_path):
        records = synthetic_records(24)
        reference = unsharded_reference(records)
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=4
        ) as store:
            store.ingest_all(records)
        recovered = ShardedResolutionStore.recover(
            tmp_path, make_engine(), shards=4
        )
        try:
            view = global_view(recovered)
        finally:
            recovered.close()
        assert view["clusters"] == reference["clusters"]
        assert view["golden"] == reference["golden"]

    def test_recover_infers_shard_count_from_journals(self, tmp_path):
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=3
        ) as store:
            store.ingest_all(synthetic_records(9))
        recovered = ShardedResolutionStore.recover(tmp_path, make_engine())
        try:
            assert recovered.shards == 3
        finally:
            recovered.close()

    def test_recover_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no shard journals"):
            ShardedResolutionStore.recover(tmp_path, make_engine())

    def test_compacted_fleet_recovers_byte_identical(self, tmp_path):
        records = synthetic_records(24)
        reference = unsharded_reference(records)
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=4
        ) as store:
            store.ingest_all(records[:12])
            store.compact()
            store.ingest_all(records[12:])
        recovered = ShardedResolutionStore.recover(
            tmp_path, make_engine(), shards=4
        )
        try:
            view = global_view(recovered)
        finally:
            recovered.close()
        assert view["clusters"] == reference["clusters"]
        assert view["golden"] == reference["golden"]
        for i in range(4):
            assert shard_journal_path(tmp_path, i).exists()


class TestKillResume:
    def test_dead_shard_backlogs_then_catches_up(self, tmp_path):
        records = synthetic_records(24)
        reference = unsharded_reference(records)
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=4
        ) as store:
            store.ingest_all(records[:8])
            store.kill_shard(1)
            deferred = 0
            for record in records[8:16]:
                deferred += 1 in store.ingest(record).deferred
            assert store.stats()["dead_shards"] == [1]
            store.resume_shard(1)
            assert store.stats()["backlogged"] == 0
            store.ingest_all(records[16:])
            view = global_view(store)
        assert view["clusters"] == reference["clusters"]
        assert view["golden"] == reference["golden"]

    def test_kill_dead_shard_rejected(self, tmp_path):
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=2
        ) as store:
            store.kill_shard(0)
            with pytest.raises(ValueError, match="already dead"):
                store.kill_shard(0)

    def test_resume_live_shard_rejected(self, tmp_path):
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=2
        ) as store:
            with pytest.raises(ValueError, match="still alive"):
                store.resume_shard(0)

    def test_killing_two_shards_still_converges(self, tmp_path):
        records = synthetic_records(30)
        reference = unsharded_reference(records)
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=4
        ) as store:
            store.ingest_all(records[:10])
            store.kill_shard(0)
            store.kill_shard(2)
            store.ingest_all(records[10:20])
            store.resume_shard(0)
            store.resume_shard(2)
            store.ingest_all(records[20:])
            view = global_view(store)
        assert view["clusters"] == reference["clusters"]
        assert view["golden"] == reference["golden"]


class TestMergeQueue:
    def test_fifo_delivery_order(self):
        delivered = []
        queue = MergeQueue(lambda source, pair: delivered.append((source, pair)))
        queue.enqueue(0, ("a", "b"))
        queue.enqueue(1, ("c", "d"))
        queue.enqueue(0, ("e", "f"))
        assert len(queue) == 3
        assert queue.drain() == 3
        assert delivered == [(0, ("a", "b")), (1, ("c", "d")), (0, ("e", "f"))]
        assert len(queue) == 0

    def test_closed_queue_refuses_enqueue(self):
        queue = MergeQueue(lambda source, pair: None)
        queue.close()
        with pytest.raises(ValueError, match="closed"):
            queue.enqueue(0, ("a", "b"))

    def test_close_drains_pending_and_is_idempotent(self):
        delivered = []
        queue = MergeQueue(lambda source, pair: delivered.append(pair))
        queue.enqueue(0, ("a", "b"))
        queue.close()
        queue.close()  # second close is a no-op, not an error
        assert delivered == [("a", "b")]

    def test_redrain_after_clean_recovery_delivers_nothing(self, tmp_path):
        # The incremental re-drain contract: once every shard already
        # knows every cross-shard pair, recovery enqueues zero merges.
        with ShardedResolutionStore(
            make_engine(), tmp_path, shards=4
        ) as store:
            store.ingest_all(synthetic_records(24))
        recovered = ShardedResolutionStore.recover(
            tmp_path, make_engine(), shards=4
        )
        try:
            delivered = []
            recovered._merges._deliver = (
                lambda source, pair: delivered.append(pair)
            )
            recovered._redrain()
            assert delivered == []
        finally:
            recovered.close()
