"""Tests for table rendering."""

from repro.eval.reports import format_delta, format_percent, format_table


class TestFormatDelta:
    def test_with_reference(self):
        assert format_delta(87.34, 56.57) == "87.34 (+30.77)"

    def test_negative_delta(self):
        assert format_delta(50.0, 52.5) == "50.00 (-2.50)"

    def test_without_reference(self):
        assert format_delta(87.34, None) == "87.34"


class TestFormatPercent:
    def test_value(self):
        assert format_percent(0.72) == "72%"

    def test_negative(self):
        assert format_percent(-0.83) == "-83%"

    def test_none(self):
        assert format_percent(None) == "-"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "f1"], [["abt-buy", 87.3], ["x", 1]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all same width

    def test_title(self):
        assert format_table(["a"], [["1"]], title="T").startswith("T\n")
