"""Tests for the model evaluator."""

from repro.eval.evaluator import evaluate_model
from repro.eval.metrics import f1_score
from repro.llm.model import build_model
from repro.prompts.templates import COMPLEX_FORCE

import numpy as np


class TestEvaluator:
    def test_matches_manual_scoring(self, product_split):
        model = build_model("gpt-4o")
        result = evaluate_model(model, product_split, COMPLEX_FORCE)
        preds = model.predict_pairs(product_split.pairs, COMPLEX_FORCE)
        manual = f1_score(np.array(product_split.labels()), preds)
        assert result.f1 == manual.f1
        assert result.scores.precision == manual.precision

    def test_metadata_recorded(self, product_split):
        model = build_model("gpt-4o")
        result = evaluate_model(model, product_split)
        assert result.model_name == "gpt-4o"
        assert result.training_set == "zero-shot"
        assert result.prompt_name == "default"
        assert result.split_name == product_split.name

    def test_strong_model_beats_weak_model(self, product_split):
        weak = evaluate_model(build_model("llama-3.1-8b"), product_split)
        strong = evaluate_model(build_model("gpt-4o"), product_split)
        assert strong.f1 > weak.f1
