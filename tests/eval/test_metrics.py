"""Tests for matching metrics."""

import numpy as np
import pytest

from repro.eval.metrics import confusion, f1_score


class TestConfusion:
    def test_counts(self):
        labels = np.array([True, True, False, False, True])
        preds = np.array([True, False, True, False, True])
        assert confusion(labels, preds) == (2, 1, 1, 1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            confusion(np.array([True]), np.array([True, False]))


class TestF1:
    def test_perfect(self):
        labels = np.array([True, False, True])
        scores = f1_score(labels, labels)
        assert scores.f1 == 100.0
        assert scores.precision == 100.0
        assert scores.recall == 100.0

    def test_all_negative_predictions(self):
        labels = np.array([True, False])
        scores = f1_score(labels, np.array([False, False]))
        assert scores.f1 == 0.0
        assert scores.recall == 0.0

    def test_known_values(self):
        labels = np.array([True] * 10 + [False] * 90)
        preds = np.array([True] * 5 + [False] * 5 + [True] * 5 + [False] * 85)
        scores = f1_score(labels, preds)
        assert scores.precision == pytest.approx(50.0)
        assert scores.recall == pytest.approx(50.0)
        assert scores.f1 == pytest.approx(50.0)

    def test_accuracy(self):
        labels = np.array([True, False, True, False])
        preds = np.array([True, False, False, False])
        assert f1_score(labels, preds).accuracy == pytest.approx(75.0)

    def test_counts_stored(self):
        labels = np.array([True, False])
        scores = f1_score(labels, np.array([True, True]))
        assert (scores.tp, scores.fp, scores.fn, scores.tn) == (1, 1, 0, 0)
