"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro._util import stable_hash, tokenize_simple
from repro.eval.metrics import confusion, f1_score
from repro.llm.features import NUM_FEATURES, featurize_pair
from repro.llm.parsing import parse_yes_no
from repro.llm.tokenizer import char_ngrams, count_tokens, levenshtein

text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60
)
word = st.text(alphabet=st.characters(whitelist_categories=("Ll",)), min_size=0, max_size=12)


class TestFeatureProperties:
    @given(text, text)
    @settings(max_examples=150, deadline=None)
    def test_features_bounded(self, a, b):
        phi = featurize_pair(a, b)
        assert phi.shape == (NUM_FEATURES,)
        assert np.all(phi >= 0.0) and np.all(phi <= 1.0)
        assert phi[-1] == 1.0  # bias

    @given(text)
    @settings(max_examples=100, deadline=None)
    def test_self_pair_no_conflicts(self, a):
        phi = featurize_pair(a, a)
        names_to_check = ("numeric_conflict", "code_conflict", "version_conflict",
                          "sku_conflict", "edition_conflict")
        from repro.llm.features import FEATURE_NAMES

        for name in names_to_check:
            assert phi[FEATURE_NAMES.index(name)] == 0.0

    @given(text, text)
    @settings(max_examples=100, deadline=None)
    def test_symmetric_match_features(self, a, b):
        """Match/conflict indicator features are symmetric in the pair."""
        from repro.llm.features import FEATURE_NAMES

        phi_ab = featurize_pair(a, b)
        phi_ba = featurize_pair(b, a)
        for name in ("token_jaccard", "char3_cosine", "numeric_jaccard",
                      "code_match", "sku_match", "version_conflict"):
            idx = FEATURE_NAMES.index(name)
            assert phi_ab[idx] == phi_ba[idx]


class TestMetricProperties:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_confusion_partitions(self, rows):
        labels = np.array([r[0] for r in rows])
        preds = np.array([r[1] for r in rows])
        tp, fp, fn, tn = confusion(labels, preds)
        assert tp + fp + fn + tn == len(rows)

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_f1_bounds(self, rows):
        labels = np.array([r[0] for r in rows])
        preds = np.array([r[1] for r in rows])
        scores = f1_score(labels, preds)
        assert 0.0 <= scores.f1 <= 100.0
        assert 0.0 <= scores.precision <= 100.0
        assert 0.0 <= scores.recall <= 100.0

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_perfect_predictions_give_perfect_recall(self, labels_list):
        labels = np.array(labels_list)
        scores = f1_score(labels, labels)
        if labels.any():
            assert scores.f1 == 100.0


class TestTokenizerProperties:
    @given(word, word)
    @settings(max_examples=100, deadline=None)
    def test_levenshtein_triangle(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)
        assert levenshtein(a, b) <= max(len(a), len(b))
        assert (levenshtein(a, b) == 0) == (a == b)

    @given(text)
    @settings(max_examples=100, deadline=None)
    def test_ngrams_deterministic(self, a):
        assert char_ngrams(a) == char_ngrams(a)

    @given(text)
    @settings(max_examples=100, deadline=None)
    def test_count_tokens_nonnegative(self, a):
        assert count_tokens(a) >= 0

    @given(text)
    @settings(max_examples=100, deadline=None)
    def test_tokens_lowercase(self, a):
        for token in tokenize_simple(a):
            assert token == token.lower()


class TestHashProperties:
    @given(st.lists(text, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_stable_hash_deterministic(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestParsingProperties:
    @given(text)
    @settings(max_examples=150, deadline=None)
    def test_parse_never_crashes(self, response):
        assert parse_yes_no(response) in (True, False, None)

    @given(text)
    @settings(max_examples=100, deadline=None)
    def test_yes_prefix_parses_true(self, tail):
        assert parse_yes_no("Yes. " + tail) is True
