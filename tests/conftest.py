"""Shared fixtures.

Most tests run on tiny synthetic splits built directly through the
dataset-construction machinery (fast); integration tests load the real
benchmark datasets, which are cached process-wide by the registry.
"""

from __future__ import annotations

import pytest

from repro.datasets.build import HardnessProfile, build_split
from repro.datasets.catalog import PaperCatalog, ProductCatalog, SoftwareCatalog
from repro.datasets.products import _product_renderer, _software_renderer
from repro.datasets.scholar import _paper_renderer
from repro.datasets.schema import Dataset
from repro.training.config import open_source_defaults


def make_product_split(name: str, n_pos: int, n_neg: int, seed: int = 99):
    """Small product split for unit tests."""
    catalog = ProductCatalog(seed)
    return build_split(
        name=name,
        n_pos=n_pos,
        n_neg=n_neg,
        profile=HardnessProfile(label_noise_train=0.0),
        sample_entity=catalog.sample,
        sample_sibling=catalog.sibling,
        render=_product_renderer("test"),
        seed=seed,
        is_train=True,
    )


def make_scholar_split(name: str, n_pos: int, n_neg: int, seed: int = 77):
    """Small scholar split for unit tests."""
    catalog = PaperCatalog(seed)
    return build_split(
        name=name,
        n_pos=n_pos,
        n_neg=n_neg,
        profile=HardnessProfile(label_noise_train=0.0),
        sample_entity=catalog.sample,
        sample_sibling=catalog.sibling,
        render=_paper_renderer({"a": 0.7, "b": 1.0}),
        seed=seed,
        is_train=True,
    )


def make_software_split(name: str, n_pos: int, n_neg: int, seed: int = 55):
    """Small software split for unit tests."""
    catalog = SoftwareCatalog(seed)
    return build_split(
        name=name,
        n_pos=n_pos,
        n_neg=n_neg,
        profile=HardnessProfile(label_noise_train=0.0),
        sample_entity=catalog.sample,
        sample_sibling=catalog.sibling,
        render=_software_renderer(),
        seed=seed,
        is_train=True,
    )


@pytest.fixture(scope="session")
def product_split():
    return make_product_split("unit-products", n_pos=60, n_neg=140)


@pytest.fixture(scope="session")
def scholar_split():
    return make_scholar_split("unit-scholar", n_pos=60, n_neg=140)


@pytest.fixture(scope="session")
def tiny_dataset(product_split) -> Dataset:
    """A miniature dataset with train/valid/test splits."""
    train = make_product_split("tiny-train", 60, 140, seed=11)
    valid = make_product_split("tiny-valid", 40, 100, seed=12)
    test = make_product_split("tiny-test", 40, 100, seed=13)
    return Dataset(name="tiny", domain="product", train=train, valid=valid, test=test)


@pytest.fixture(scope="session")
def fast_config():
    """Two-epoch training config to keep fine-tuning tests quick."""
    return open_source_defaults().with_epochs(2)
