"""Tests for the fine-tuning loop."""

import numpy as np
import pytest

from repro.llm.prior import build_prior
from repro.training.config import open_source_defaults
from repro.training.trainer import TrainingExample, fine_tune


@pytest.fixture(scope="module")
def prior():
    return build_prior("llama-3.1-8b")


def _examples(split, aux_dim=0):
    out = []
    for i, pair in enumerate(split.pairs):
        aux = np.full(aux_dim, 0.5) if aux_dim else None
        out.append(TrainingExample(pair=pair, label=pair.label, aux=aux))
    return out


class TestFineTune:
    def test_loss_decreases(self, prior, product_split):
        config = open_source_defaults().with_epochs(5)
        result = fine_tune(prior, _examples(product_split), config)
        losses = [c.train_loss for c in result.log.checkpoints]
        assert losses[-1] < losses[0]

    def test_one_checkpoint_per_epoch(self, prior, product_split, fast_config):
        result = fine_tune(prior, _examples(product_split), fast_config)
        assert len(result.log) == fast_config.epochs

    def test_deterministic(self, prior, product_split, fast_config):
        a = fine_tune(prior, _examples(product_split), fast_config)
        b = fine_tune(prior, _examples(product_split), fast_config)
        assert np.allclose(a.adapter.A, b.adapter.A)
        assert np.allclose(a.adapter.B, b.adapter.B)

    def test_seed_changes_result(self, prior, product_split, fast_config):
        from dataclasses import replace

        a = fine_tune(prior, _examples(product_split), fast_config)
        b = fine_tune(prior, _examples(product_split), replace(fast_config, seed=7))
        assert not np.allclose(a.adapter.B, b.adapter.B)

    def test_validation_selects_best(self, prior, product_split):
        config = open_source_defaults().with_epochs(4)
        calls = []

        def validate(adapter):
            calls.append(adapter)
            return [10.0, 90.0, 30.0, 40.0][len(calls) - 1]

        result = fine_tune(prior, _examples(product_split), config, validate=validate)
        assert result.best_epoch == 2
        assert len(calls) == 4

    def test_checkpoint_window_hides_early_best(self, prior, product_split):
        from dataclasses import replace

        config = replace(open_source_defaults().with_epochs(4), checkpoint_window=2)
        scores = iter([95.0, 20.0, 30.0, 40.0])
        result = fine_tune(
            prior, _examples(product_split), config,
            validate=lambda adapter: next(scores),
        )
        assert result.best_epoch == 4  # epoch 1 invisible under the window

    def test_empty_raises(self, prior):
        with pytest.raises(ValueError, match="empty"):
            fine_tune(prior, [], open_source_defaults())

    def test_aux_targets_train_C(self, prior, product_split):
        config = open_source_defaults().with_epochs(2).with_aux_weight(1.0)
        result = fine_tune(prior, _examples(product_split, aux_dim=6), config)
        assert result.adapter.C.shape[0] == 6
        assert np.abs(result.adapter.C).sum() > 0

    def test_inconsistent_aux_sizes_raise(self, prior, product_split):
        examples = _examples(product_split, aux_dim=3)
        examples[0] = TrainingExample(
            pair=examples[0].pair, label=examples[0].label, aux=np.zeros(5)
        )
        with pytest.raises(ValueError, match="inconsistent"):
            fine_tune(prior, examples, open_source_defaults().with_epochs(1))

    def test_adapter_separates_classes(self, prior, product_split):
        config = open_source_defaults().with_epochs(6)
        result = fine_tune(prior, _examples(product_split), config)
        x = prior.observe(product_split.pairs)
        delta = result.adapter.logit_delta(x, prior.v)
        labels = np.array(product_split.labels())
        base = x @ (prior.v @ prior.W0)
        scores = base + delta
        assert scores[labels].mean() > scores[~labels].mean()
