"""Tests for fine-tuning configuration defaults."""

import pytest

from repro.training.config import (
    FineTuneConfig,
    defaults_for,
    hosted_defaults,
    open_source_defaults,
)


class TestDefaults:
    def test_open_source_matches_paper(self):
        config = open_source_defaults()
        assert config.epochs == 10
        assert config.lora_alpha == 16.0
        assert config.lora_rank == 64
        assert config.dropout == 0.1
        assert config.learning_rate == 2e-4
        assert config.checkpoint_window is None

    def test_hosted_matches_paper(self):
        config = hosted_defaults()
        assert config.lr_multiplier == 1.8
        assert config.batch_size == 16
        assert config.checkpoint_window == 3

    def test_effective_lr_uses_multiplier_for_hosted(self):
        assert hosted_defaults().effective_lr == pytest.approx(
            open_source_defaults().effective_lr * 1.8
        )

    def test_defaults_for_dispatch(self):
        assert defaults_for("open-source").dropout == 0.1
        assert defaults_for("hosted").lr_multiplier == 1.8
        with pytest.raises(ValueError):
            defaults_for("quantum")

    def test_with_epochs_is_pure(self):
        base = open_source_defaults()
        derived = base.with_epochs(5)
        assert derived.epochs == 5 and base.epochs == 10

    def test_with_aux_weight(self):
        assert open_source_defaults().with_aux_weight(2.0).aux_weight == 2.0
