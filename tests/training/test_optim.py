"""Tests for numpy optimizers."""

import numpy as np
import pytest

from repro.training.optim import SGD, Adam


def quadratic_grad(w):
    return 2 * (w - 3.0)


class TestSGD:
    def test_descends(self):
        w = {"w": np.array([0.0])}
        opt = SGD(lr=0.1)
        for _ in range(100):
            opt.step(w, {"w": quadratic_grad(w["w"])})
        assert np.allclose(w["w"], 3.0, atol=1e-3)

    def test_weight_decay_shrinks(self):
        w = {"w": np.array([10.0])}
        SGD(lr=0.1, weight_decay=1.0).step(w, {"w": np.zeros(1)})
        assert w["w"][0] < 10.0


class TestAdam:
    def test_descends(self):
        w = {"w": np.array([0.0])}
        opt = Adam(lr=0.1)
        for _ in range(200):
            opt.step(w, {"w": quadratic_grad(w["w"])})
        assert np.allclose(w["w"], 3.0, atol=1e-2)

    def test_multiple_params(self):
        params = {"a": np.zeros(2), "b": np.ones(3)}
        opt = Adam(lr=0.01)
        opt.step(params, {"a": np.ones(2), "b": np.ones(3)})
        assert params["a"].shape == (2,)
        assert not np.allclose(params["b"], 1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam(lr=0.0)

    def test_decoupled_weight_decay(self):
        params = {"w": np.array([5.0])}
        opt = Adam(lr=0.1, weight_decay=0.5)
        opt.step(params, {"w": np.zeros(1)})
        # pure decay: 5 * (1 - 0.1*0.5) = 4.75, plus negligible grad term
        assert params["w"][0] == pytest.approx(4.75, abs=0.05)
