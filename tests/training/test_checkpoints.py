"""Tests for checkpoint logging and selection."""

import pytest

from repro.llm.adapter import LoRAAdapter
from repro.training.checkpoints import Checkpoint, CheckpointLog


def _checkpoint(epoch, f1):
    return Checkpoint(
        epoch=epoch,
        adapter=LoRAAdapter.init(d=4, k=2, rank=2, seed=epoch),
        train_loss=1.0 / epoch,
        valid_f1=f1,
    )


@pytest.fixture
def log():
    entries = [_checkpoint(e, f1) for e, f1 in enumerate([50, 70, 65, 80, 75], 1)]
    log = CheckpointLog()
    for entry in entries:
        log.add(entry)
    return log


class TestCheckpointLog:
    def test_best_overall(self, log):
        assert log.best().epoch == 4

    def test_window_limits_visibility(self, log):
        # last 3: epochs 3,4,5 → best is 4
        assert log.best(window=3).epoch == 4
        # last 1: only epoch 5
        assert log.best(window=1).epoch == 5

    def test_visible(self, log):
        assert [c.epoch for c in log.visible(2)] == [4, 5]
        assert [c.epoch for c in log.visible(None)] == [1, 2, 3, 4, 5]

    def test_ties_prefer_later_epoch(self):
        log = CheckpointLog()
        log.add(_checkpoint(1, 80))
        log.add(_checkpoint(2, 80))
        assert log.best().epoch == 2

    def test_no_validation_falls_back_to_final(self):
        log = CheckpointLog()
        log.add(Checkpoint(1, LoRAAdapter.init(4, 2, 2), 0.5, None))
        log.add(Checkpoint(2, LoRAAdapter.init(4, 2, 2), 0.4, None))
        assert log.best().epoch == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            CheckpointLog().best()
