"""Tests for the Fellegi-Sunter baseline."""

import numpy as np
import pytest

from repro.baselines.fellegi_sunter import FellegiSunterMatcher
from repro.datasets.schema import Split
from repro.eval.metrics import f1_score


class TestFellegiSunter:
    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            FellegiSunterMatcher(features=("not_a_feature",))

    def test_unfitted_raises(self, product_split):
        with pytest.raises(RuntimeError, match="not fitted"):
            FellegiSunterMatcher().scores(product_split)

    def test_single_class_rejected(self, product_split):
        positives = Split(
            name="pos-only", pairs=[p for p in product_split if p.label]
        )
        with pytest.raises(ValueError, match="both classes"):
            FellegiSunterMatcher().fit(positives)

    def test_scores_separate_classes(self, product_split):
        matcher = FellegiSunterMatcher().fit(product_split)
        scores = matcher.scores(product_split)
        labels = np.array(product_split.labels())
        assert scores[labels].mean() > scores[~labels].mean()

    def test_decent_f1_on_train(self, product_split):
        matcher = FellegiSunterMatcher().fit(product_split)
        labels = np.array(product_split.labels())
        assert f1_score(labels, matcher.predict(product_split)).f1 > 50

    def test_generalizes_to_fresh_split(self, product_split, tiny_dataset):
        matcher = FellegiSunterMatcher().fit(product_split)
        labels = np.array(tiny_dataset.test.labels())
        assert f1_score(labels, matcher.predict(tiny_dataset.test)).f1 > 40
