"""Tests for the threshold baseline."""

import pytest

from repro.baselines.threshold import ThresholdMatcher
from repro.eval.metrics import f1_score

import numpy as np


class TestThresholdMatcher:
    def test_unknown_feature_raises(self):
        with pytest.raises(ValueError):
            ThresholdMatcher(feature="vibes")

    def test_fit_improves_over_default(self, product_split):
        labels = np.array(product_split.labels())
        default = ThresholdMatcher(threshold=0.99)
        default_f1 = f1_score(labels, default.predict(product_split)).f1
        fitted = ThresholdMatcher(threshold=0.99).fit(product_split)
        fitted_f1 = f1_score(labels, fitted.predict(product_split)).f1
        assert fitted_f1 >= default_f1

    def test_beats_chance(self, product_split):
        matcher = ThresholdMatcher().fit(product_split)
        labels = np.array(product_split.labels())
        assert f1_score(labels, matcher.predict(product_split)).f1 > 40
