"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_args(self):
        args = build_parser().parse_args(["match", "a", "b", "--model", "gpt-4o"])
        assert args.left == "a" and args.model == "gpt-4o"


class TestCommands:
    def test_match(self, capsys):
        assert main(["match", "Jabra Evolve 80", "Jabra Evolve-80 stereo"]) == 0
        out = capsys.readouterr().out.strip()
        assert out in ("MATCH", "NO MATCH")

    def test_datasets_prints_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "wdc-small" in out
        assert "8471" in out  # wdc-large train positives

    def test_zero_shot(self, capsys):
        assert main(["zero-shot", "--model", "gpt-4o-mini",
                     "--datasets", "abt-buy"]) == 0
        assert "abt-buy" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--dataset", "abt-buy", "--out", str(tmp_path / "d")]) == 0
        assert (tmp_path / "d" / "train.jsonl").exists()


class TestValidateCommand:
    def test_builtin_dataset_ok(self, capsys):
        assert main(["validate", "--dataset", "abt-buy"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, capsys):
        assert main(["validate"]) == 2
        assert main(["validate", "--dataset", "abt-buy", "--path", "x"]) == 2

    def test_exported_dataset_roundtrip(self, tmp_path, capsys):
        main(["export", "--dataset", "abt-buy", "--out", str(tmp_path / "d")])
        capsys.readouterr()
        assert main(["validate", "--path", str(tmp_path / "d")]) == 0


class TestEngineCommand:
    def _workload(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text(
            "Jabra Evolve 80 headset\tJabra Evolve-80 stereo headset\n"
            '{"left": "sony wh-1000xm4", "right": "vextara gps watch"}\n'
            # a repeated pair, so the cache gets at least one hit
            "Jabra Evolve 80 headset\tJabra Evolve-80 stereo headset\n"
        )
        return str(path)

    def test_matches_pairs_file(self, tmp_path, capsys):
        assert main(["engine", "--pairs", self._workload(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("MATCH") >= 3  # one verdict line per pair
        assert "3 pairs matched" in out

    def test_stats_flag_surfaces_engine_counters(self, tmp_path, capsys):
        assert main(["engine", "--pairs", self._workload(tmp_path),
                     "--stats", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "engine stats:" in out
        assert "hit_rate" in out and "batches" in out
        # error accounting is split by class, not lumped
        for counter in ("timeouts", "transport_errors", "circuit_open",
                        "malformed"):
            assert counter in out

    def test_dataset_workload(self, capsys):
        assert main(["engine", "--dataset", "abt-buy", "--quiet",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "1916 pairs matched" in out

    def test_requires_exactly_one_workload(self, capsys):
        assert main(["engine"]) == 2
        capsys.readouterr()
        assert main(["engine", "--pairs", "x", "--dataset", "abt-buy"]) == 2

    def test_malformed_line_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("only one column\n")
        with pytest.raises(SystemExit, match="expected JSON"):
            main(["engine", "--pairs", str(path)])

    @pytest.mark.parametrize(
        ("content", "match"),
        [
            ("{not json}\n", r"bad\.txt:1: invalid JSON"),
            ('{"left": "x"}\n', r"bad\.txt:1: JSON object is missing key 'right'"),
            ('{"left": "x", "right": 7}\n', r"bad\.txt:1: left/right must be strings"),
            ('{"left": {"name": "x"}, "right": "y"}\n',
             r"bad\.txt:1: left/right must be strings"),
            ("a\tb\tc\n", r"bad\.txt:1: expected JSON object .* got 2 tab\(s\)"),
            ("ok\tfine\nsecond line no tab\n", r"bad\.txt:2: expected JSON"),
        ],
    )
    def test_malformed_lines_get_located_errors(self, tmp_path, content, match):
        """Every malformed --pairs line exits with path:lineno, no traceback."""
        path = tmp_path / "bad.txt"
        path.write_text(content)
        with pytest.raises(SystemExit, match=match):
            main(["engine", "--pairs", str(path)])


class TestUnknownPersona:
    """Every model-taking subcommand exits with the same one-line message."""

    CASES = [
        pytest.param(["match", "a", "b", "--model", "gpt-5-ultra"], id="match"),
        pytest.param(["zero-shot", "--model", "gpt-5-ultra"], id="zero-shot"),
        pytest.param(["finetune", "--model", "gpt-5-ultra"], id="finetune"),
        pytest.param(["sensitivity", "--model", "gpt-5-ultra"], id="sensitivity"),
        pytest.param(["engine", "--dataset", "abt-buy",
                      "--model", "gpt-5-ultra"], id="engine"),
        pytest.param(["resolve", "--dataset", "abt-buy",
                      "--model", "gpt-5-ultra"], id="resolve"),
        pytest.param(["serve", "--persona", "gpt-5-ultra",
                      "--requests", "4"], id="serve"),
    ]

    @pytest.mark.parametrize("argv", CASES)
    def test_one_line_exit_no_traceback(self, argv):
        with pytest.raises(SystemExit) as exc_info:
            main(argv)
        message = str(exc_info.value)
        assert message.startswith("unknown persona: gpt-5-ultra (choose from ")
        assert "\n" not in message

    def test_aliases_still_resolve(self, capsys):
        assert main(["match", "Jabra Evolve 80", "Jabra Evolve-80 stereo",
                     "--model", "llama-8b"]) == 0
        assert capsys.readouterr().out.strip() in ("MATCH", "NO MATCH")


class TestServeCommand:
    ARGS = ["serve", "--requests", "24", "--offered-load", "400",
            "--tenants", "2", "--seed", "0"]

    def test_text_mode_reports_a_clean_session(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "24/24 answered" in out
        assert "per-tenant funnel" in out
        assert "VIOLATION" not in out

    def test_json_mode_is_byte_identical_across_runs(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["requests"] == 24 and payload["answered"] == 24
        assert payload["ok"] is True and payload["violations"] == []

    def test_admission_shapes_the_funnel(self, capsys):
        assert main(self.ARGS + ["--rate", "50", "--burst", "5",
                                 "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["statuses"].get("rejected", 0) > 0
        assert payload["ok"] is True and payload["violations"] == []

    def test_chaos_mode_reports_clean_sweep(self, capsys):
        assert main(["serve", "--chaos", "--fault-rate", "0.3",
                     "--requests", "32", "--chaos-seed", "0",
                     "--chaos-seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATION" not in out


class TestChaosCommand:
    ARGS = ["chaos", "--fault-rate", "0.3", "--seed", "0",
            "--pairs", "24", "--records", "10"]

    def test_text_mode_reports_clean_grid(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "match" in out and "resolve" in out
        assert "VIOLATION" not in out

    def test_json_mode_is_byte_identical_across_runs(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["ok"] is True
        assert payload["fault_rates"] == [0.0, 0.3]
        assert len(payload["runs"]) == 4  # 1 seed x 2 rates x 2 workloads

    def test_kill_resume_roundtrip_flag(self, tmp_path, capsys):
        journal = tmp_path / "wal.jsonl"
        assert main(self.ARGS + ["--kill-every", "2", "--journal",
                                 str(journal), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kill_resume"]["identical"] is True
        assert payload["kill_resume"]["crashes"] > 0
        assert journal.exists()

    def test_rejects_out_of_range_rate(self, capsys):
        assert main(["chaos", "--fault-rate", "1.5"]) == 2
