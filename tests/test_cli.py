"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_args(self):
        args = build_parser().parse_args(["match", "a", "b", "--model", "gpt-4o"])
        assert args.left == "a" and args.model == "gpt-4o"


class TestCommands:
    def test_match(self, capsys):
        assert main(["match", "Jabra Evolve 80", "Jabra Evolve-80 stereo"]) == 0
        out = capsys.readouterr().out.strip()
        assert out in ("MATCH", "NO MATCH")

    def test_datasets_prints_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "wdc-small" in out
        assert "8471" in out  # wdc-large train positives

    def test_zero_shot(self, capsys):
        assert main(["zero-shot", "--model", "gpt-4o-mini",
                     "--datasets", "abt-buy"]) == 0
        assert "abt-buy" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--dataset", "abt-buy", "--out", str(tmp_path / "d")]) == 0
        assert (tmp_path / "d" / "train.jsonl").exists()


class TestValidateCommand:
    def test_builtin_dataset_ok(self, capsys):
        assert main(["validate", "--dataset", "abt-buy"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, capsys):
        assert main(["validate"]) == 2
        assert main(["validate", "--dataset", "abt-buy", "--path", "x"]) == 2

    def test_exported_dataset_roundtrip(self, tmp_path, capsys):
        main(["export", "--dataset", "abt-buy", "--out", str(tmp_path / "d")])
        capsys.readouterr()
        assert main(["validate", "--path", str(tmp_path / "d")]) == 0
