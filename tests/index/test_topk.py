"""Top-k ranking: ordering contract, cut-offs, validation."""

import numpy as np
import pytest

from repro.index import MinHasher, RankedCandidate, rank_candidates

HASHER = MinHasher(num_perm=128, seed=0)


def _sig(*tokens):
    return HASHER.signature(list(tokens))


class TestRanking:
    def test_orders_by_similarity_descending(self):
        probe = _sig("a", "b", "c", "d")
        ranked = rank_candidates(
            probe,
            [
                ("far", _sig("x", "y", "z")),
                ("near", _sig("a", "b", "c", "e")),
                ("exact", _sig("a", "b", "c", "d")),
            ],
        )
        assert [entry.record_id for entry in ranked] == [
            "exact", "near", "far",
        ]
        assert ranked[0].similarity == 1.0
        similarities = [entry.similarity for entry in ranked]
        assert similarities == sorted(similarities, reverse=True)

    def test_ties_break_by_ascending_record_id(self):
        probe = _sig("a", "b")
        same = _sig("a", "b")
        ranked = rank_candidates(
            probe, [("zeta", same), ("alpha", same), ("mid", same)]
        )
        assert [entry.record_id for entry in ranked] == [
            "alpha", "mid", "zeta",
        ]

    def test_k_truncates(self):
        probe = _sig("a", "b")
        others = [(f"r{i}", _sig("a", f"t{i}")) for i in range(10)]
        assert len(rank_candidates(probe, others, k=3)) == 3
        assert len(rank_candidates(probe, others, k=None)) == 10

    def test_min_similarity_filters(self):
        probe = _sig("a", "b", "c", "d")
        ranked = rank_candidates(
            probe,
            [("near", _sig("a", "b", "c", "d", "e")),
             ("far", _sig("q", "r", "s"))],
            min_similarity=0.5,
        )
        assert [entry.record_id for entry in ranked] == ["near"]

    def test_empty_others(self):
        assert rank_candidates(_sig("a"), []) == ()

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be positive"):
            rank_candidates(_sig("a"), [("b", _sig("b"))], k=0)

    def test_result_type(self):
        ranked = rank_candidates(_sig("a"), [("b", _sig("a"))])
        assert ranked == (RankedCandidate("b", 1.0),)

    def test_deterministic(self):
        probe = _sig("a", "b", "c")
        others = [(f"r{i}", _sig(f"t{i}", "a")) for i in range(20)]
        assert rank_candidates(probe, others) == rank_candidates(
            probe, others
        )
