"""LSH banding: S-curve arithmetic, solver behaviour, band-key mixing."""

import numpy as np
import pytest

from repro.index import (
    LSHBanding,
    collision_probability,
    solve_banding,
    threshold_at,
)


class TestScurve:
    def test_threshold_formula(self):
        assert threshold_at(1, 1) == 1.0
        assert threshold_at(32, 4) == pytest.approx((1 / 32) ** 0.25)

    def test_collision_probability_endpoints(self):
        assert collision_probability(0.0, 25, 5) == 0.0
        assert collision_probability(1.0, 25, 5) == 1.0

    def test_collision_probability_monotone_in_similarity(self):
        probabilities = [
            collision_probability(s / 20, 25, 5) for s in range(21)
        ]
        assert probabilities == sorted(probabilities)

    def test_more_bands_loosen_more_rows_tighten(self):
        base = threshold_at(16, 4)
        assert threshold_at(32, 4) < base  # more bands -> looser
        assert threshold_at(16, 8) > base  # more rows -> stricter

    def test_validation(self):
        with pytest.raises(ValueError):
            threshold_at(0, 4)
        with pytest.raises(ValueError):
            collision_probability(1.5, 25, 5)
        with pytest.raises(ValueError):
            collision_probability(0.5, 25, 0)


class TestSolver:
    def test_fits_the_budget(self):
        for target in (0.1, 0.3, 0.5, 0.7, 0.9):
            bands, rows = solve_banding(128, target)
            assert 1 <= bands * rows <= 128

    def test_characteristic_threshold_close_to_target(self):
        for target in (0.3, 0.5, 0.7):
            bands, rows = solve_banding(128, target)
            assert abs(threshold_at(bands, rows) - target) < 0.1

    def test_monotone_in_target(self):
        """A stricter target never yields a looser banding."""
        achieved = [
            threshold_at(*solve_banding(128, target / 20))
            for target in range(1, 20)
        ]
        assert achieved == sorted(achieved)

    def test_deterministic(self):
        assert solve_banding(128, 0.5) == solve_banding(128, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_perm"):
            solve_banding(0, 0.5)
        with pytest.raises(ValueError, match="threshold"):
            solve_banding(128, 1.0)
        with pytest.raises(ValueError, match="threshold"):
            solve_banding(128, 0.0)


class TestBandKeys:
    def test_deterministic_across_instances(self):
        signature = np.arange(96, dtype=np.uint64)
        assert (
            LSHBanding(32, 3).band_keys(signature)
            == LSHBanding(32, 3).band_keys(signature)
        )

    def test_one_key_per_band(self):
        signature = np.arange(96, dtype=np.uint64)
        assert len(LSHBanding(32, 3).band_keys(signature)) == 32

    def test_equal_slices_in_different_bands_do_not_collide(self):
        """A constant signature must still produce distinct band keys."""
        signature = np.full(96, 7, dtype=np.uint64)
        keys = LSHBanding(32, 3).band_keys(signature)
        assert len(set(keys)) == 32

    def test_equal_band_values_collide_across_signatures(self):
        banding = LSHBanding(4, 2)
        a = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=np.uint64)
        b = np.array([1, 2, 9, 9, 9, 9, 9, 9], dtype=np.uint64)
        keys_a = banding.band_keys(a)
        keys_b = banding.band_keys(b)
        assert keys_a[0] == keys_b[0]
        assert keys_a[1:] != keys_b[1:]

    def test_width_validation(self):
        with pytest.raises(ValueError, match="signature width"):
            LSHBanding(32, 3).band_keys(np.arange(95, dtype=np.uint64))

    def test_from_threshold(self):
        banding = LSHBanding.from_threshold(128, 0.5)
        assert (banding.bands, banding.rows) == solve_banding(128, 0.5)
        assert banding.num_perm == banding.bands * banding.rows

    def test_validation(self):
        with pytest.raises(ValueError, match="bands and rows"):
            LSHBanding(0, 3)
