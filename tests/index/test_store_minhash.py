"""ResolutionStore over MinHash blocking: order invariance, parity with
exhaustive resolution.

The shuffle tests mirror ``tests/resolve/test_incremental.py`` but swap
the injected candidate index for :class:`repro.index
.MinHashCandidateIndex` — the store's 5-shuffle invariant must hold for
*any* pairwise-symmetric predicate, and these tests pin that the
MinHash/LSH predicate actually is one.
"""

import pytest

from repro._util import derive_rng
from repro.datasets.synthetic import synthetic_dedup_corpus
from repro.engine import MatchingEngine
from repro.index import MinHashCandidateIndex
from repro.index.protocol import CandidateIndex
from repro.resolve import ResolutionStore

from tests.engine.doubles import JaccardBackend, ParityBackend


def _minhash_index():
    return MinHashCandidateIndex(bands=32, rows=3, min_similarity=0.35)


def _store(engine=None, **kwargs):
    kwargs.setdefault("chunk_size", 4)
    kwargs.setdefault("index", _minhash_index())
    if engine is None:
        engine = MatchingEngine(backend=ParityBackend())
    return ResolutionStore(engine, **kwargs)


def _records(n=40, seed=5):
    return list(synthetic_dedup_corpus(n, seed=seed).records)


class ExhaustiveIndex(CandidateIndex):
    """Every indexed record is a candidate — quadratic ground truth."""

    def __init__(self):
        self._ids = []

    def add(self, record_id, description):
        self._ids.append(record_id)

    def candidates(self, description, exclude=None):
        return tuple(sorted(i for i in self._ids if i != exclude))


class TestOrderInvariance:
    @pytest.mark.parametrize("order_seed", range(5))
    def test_insertion_order_invariance(self, order_seed):
        records = _records()
        reference = _store(short_circuit=False)
        reference.ingest_all(records)

        shuffled = list(records)
        derive_rng(4242, "minhash-ingest-order", order_seed).shuffle(shuffled)
        store = _store(short_circuit=False)
        store.ingest_all(shuffled)

        assert store.clustering() == reference.clustering()
        assert store.decisions() == reference.decisions()
        assert store.golden_records() == reference.golden_records()

    @pytest.mark.parametrize("order_seed", range(3))
    def test_short_circuit_preserves_the_clustering(self, order_seed):
        records = _records()
        derive_rng(4243, "minhash-sc-order", order_seed).shuffle(records)
        exhaustive = _store(short_circuit=False)
        exhaustive.ingest_all(records)
        shortcut = _store(short_circuit=True)
        shortcut.ingest_all(records)

        assert shortcut.clustering() == exhaustive.clustering()


class TestParityWithExhaustiveResolution:
    def test_minhash_blocking_reproduces_exhaustive_clustering(self):
        """On a small corpus the MinHash-blocked store's clustering is
        byte-identical to deciding every pair.

        The matcher is the Jaccard oracle (match iff overlap >= 0.5): a
        symmetric, deterministic function of the pair, so the only way
        the clusterings can differ is a positive edge the MinHash
        predicate failed to propose — the end-to-end acceptance bar for
        swapping the blocking backend under the store.
        """
        records = _records(n=60, seed=3)
        exhaustive = ResolutionStore(
            MatchingEngine(backend=JaccardBackend(threshold=0.5)),
            index=ExhaustiveIndex(), chunk_size=8, short_circuit=False,
        )
        exhaustive.ingest_all(records)

        blocked = ResolutionStore(
            MatchingEngine(backend=JaccardBackend(threshold=0.5)),
            index=MinHashCandidateIndex(bands=42, rows=3),
            chunk_size=8, short_circuit=False,
        )
        blocked.ingest_all(records)

        assert blocked.clustering() == exhaustive.clustering()
        # And it got there with strictly fewer engine decisions.
        assert blocked.engine_calls < exhaustive.engine_calls

    def test_min_shared_untouched_by_injection(self):
        """The default token index still honours min_shared."""
        store = ResolutionStore(MatchingEngine(backend=ParityBackend()))
        from repro.resolve import TokenCandidateIndex

        assert isinstance(store._index, TokenCandidateIndex)
