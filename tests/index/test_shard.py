"""Sharded band-bucket postings: merge equivalence, thread safety."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro._util import derive_rng
from repro.index import ShardedBandIndex


def _workload(n_records=200, keys_per_record=8):
    rng = derive_rng(17, "shard-workload")
    return [
        (
            f"r{i:03d}",
            [int(k) for k in rng.integers(0, 500, size=keys_per_record)],
        )
        for i in range(n_records)
    ]


class TestMergeEquivalence:
    @pytest.mark.parametrize("shards", [1, 3, 8, 17])
    def test_any_shard_count_answers_like_single_shard(self, shards):
        """Partitioning is invisible: K shards ≡ 1 shard on every query."""
        workload = _workload()
        reference = ShardedBandIndex(shards=1)
        sharded = ShardedBandIndex(shards=shards)
        for record_id, keys in workload:
            reference.add(record_id, keys)
            sharded.add(record_id, keys)
        for _, keys in workload:
            assert sharded.query(keys) == reference.query(keys)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_merged_stats_are_shard_count_independent(self, shards):
        index = ShardedBandIndex(shards=shards)
        for record_id, keys in _workload():
            index.add(record_id, keys)
        stats = index.stats()
        assert stats["shards"] == shards
        reference = ShardedBandIndex(shards=1)
        for record_id, keys in _workload():
            reference.add(record_id, keys)
        expected = reference.stats()
        assert stats["buckets"] == expected["buckets"]
        assert stats["postings"] == expected["postings"]
        assert stats["max_bucket"] == expected["max_bucket"]
        assert sum(stats["buckets_per_shard"]) == stats["buckets"]


class TestQueries:
    def test_query_returns_sorted_distinct_ids(self):
        index = ShardedBandIndex(shards=4)
        index.add("b", [1, 2])
        index.add("a", [2, 3])
        # key 2 holds both; keys [1, 2, 3] reach each id twice.
        assert index.query([1, 2, 3]) == ("a", "b")

    def test_missing_keys_are_empty(self):
        index = ShardedBandIndex(shards=4)
        index.add("a", [1])
        assert index.query([999]) == ()

    def test_shard_count_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedBandIndex(shards=0)


class TestThreadSafety:
    def test_concurrent_adds_merge_completely(self):
        """Parallel ingestion over the per-shard locks loses nothing."""
        workload = _workload(n_records=400)
        index = ShardedBandIndex(shards=4)
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda item: index.add(*item), workload))
        reference = ShardedBandIndex(shards=4)
        for record_id, keys in workload:
            reference.add(record_id, keys)
        for _, keys in workload:
            assert index.query(keys) == reference.query(keys)
        assert index.stats()["postings"] == reference.stats()["postings"]
