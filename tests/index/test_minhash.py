"""MinHash signatures: determinism, invariances, Jaccard error bounds."""

import math

import numpy as np
import pytest

from repro._util import derive_rng
from repro.index import MinHasher, estimated_jaccard, exact_jaccard

NUM_PERM = 128


def _vocab(rng, size):
    return [f"tok{int(i):04d}" for i in rng.choice(10_000, size, replace=False)]


class TestSignature:
    def test_deterministic_across_instances(self):
        a = MinHasher(num_perm=NUM_PERM, seed=3)
        b = MinHasher(num_perm=NUM_PERM, seed=3)
        tokens = ["acme", "widget", "pro", "64gb"]
        np.testing.assert_array_equal(a.signature(tokens), b.signature(tokens))

    def test_seed_changes_signature(self):
        tokens = ["acme", "widget", "pro"]
        a = MinHasher(num_perm=NUM_PERM, seed=0).signature(tokens)
        b = MinHasher(num_perm=NUM_PERM, seed=1).signature(tokens)
        assert not np.array_equal(a, b)

    def test_order_and_multiplicity_invariant(self):
        hasher = MinHasher(num_perm=NUM_PERM, seed=0)
        base = hasher.signature(["a", "b", "c"])
        np.testing.assert_array_equal(base, hasher.signature(["c", "a", "b"]))
        np.testing.assert_array_equal(
            base, hasher.signature(["a", "a", "b", "c", "c"])
        )

    def test_shape_and_dtype(self):
        signature = MinHasher(num_perm=64, seed=0).signature(["x"])
        assert signature.shape == (64,)
        assert signature.dtype == np.uint64

    def test_empty_token_set_has_no_signature(self):
        assert MinHasher(num_perm=NUM_PERM).signature([]) is None
        assert MinHasher(num_perm=NUM_PERM).signature(()) is None

    def test_num_perm_validation(self):
        with pytest.raises(ValueError, match="num_perm"):
            MinHasher(num_perm=0)


class TestJaccardEstimate:
    def test_identical_sets_estimate_one(self):
        hasher = MinHasher(num_perm=NUM_PERM, seed=0)
        a = hasher.signature(["p", "q", "r"])
        assert estimated_jaccard(a, a) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        hasher = MinHasher(num_perm=NUM_PERM, seed=0)
        a = hasher.signature([f"a{i}" for i in range(20)])
        b = hasher.signature([f"b{i}" for i in range(20)])
        assert estimated_jaccard(a, b) <= 0.05

    def test_estimate_tracks_exact_jaccard_within_error_bound(self):
        """|est - J| stays within ~4 standard errors across many pairs.

        The per-position agreement probability is J, so the estimator's
        standard error is sqrt(J(1-J)/num_perm); a 4-sigma band over 60
        seeded pairs is a deterministic (seeded) but statistically
        honest bound, and the mean absolute error must be far tighter.
        """
        hasher = MinHasher(num_perm=NUM_PERM, seed=0)
        rng = derive_rng(99, "minhash-error-bound")
        errors = []
        for trial in range(60):
            shared = _vocab(rng, int(rng.integers(2, 30)))
            only_a = _vocab(rng, int(rng.integers(1, 20)))
            only_b = _vocab(rng, int(rng.integers(1, 20)))
            set_a = set(shared) | set(only_a)
            set_b = set(shared) | set(only_b)
            exact = exact_jaccard(set_a, set_b)
            estimate = estimated_jaccard(
                hasher.signature(set_a), hasher.signature(set_b)
            )
            sigma = math.sqrt(max(exact * (1 - exact), 1e-9) / NUM_PERM)
            assert abs(estimate - exact) <= 4 * sigma + 1e-9, (
                f"trial {trial}: est {estimate:.3f} vs exact {exact:.3f}"
            )
            errors.append(abs(estimate - exact))
        assert sum(errors) / len(errors) < 0.04

    def test_shape_mismatch_rejected(self):
        a = MinHasher(num_perm=64, seed=0).signature(["x"])
        b = MinHasher(num_perm=128, seed=0).signature(["x"])
        with pytest.raises(ValueError, match="widths differ"):
            estimated_jaccard(a, b)


class TestExactJaccard:
    def test_basic(self):
        assert exact_jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_two_empties_are_identical(self):
        assert exact_jaccard([], []) == 1.0

    def test_one_empty(self):
        assert exact_jaccard(["a"], []) == 0.0
