"""CLI front door for the MinHash/LSH subsystem: ``repro-em index`` and
``repro-em resolve --blocking minhash``.

JSON output must be byte-identical across runs — the payloads exclude
wall-clock measurements precisely so the CLI can be snapshot-tested.
"""

import json

from repro.cli import main


class TestIndexCommand:
    ARGS = ["index", "--synthetic", "300", "--stats", "--format", "json"]

    def test_json_output_is_byte_identical_across_runs(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema_version"] == 1
        assert payload["records"] == 300
        assert payload["index"]["records"] == 300

    def test_recall_curve_uses_the_shared_metric(self, capsys):
        # the benchmark's primary operating point (32x3, floor 0.35)
        assert main(self.ARGS + ["--top-k", "5", "--bands", "32",
                                 "--rows", "3",
                                 "--min-similarity", "0.35"]) == 0
        payload = json.loads(capsys.readouterr().out)
        curve = payload["recall_curve"]
        # ks filtered to the cut-off, plus the no-cut-off point
        assert [point["k"] for point in curve] == [1, 2, 5, None]
        recalls = [point["recall"] for point in curve]
        assert recalls == sorted(recalls)
        assert payload["true_pairs"] > 0
        # the tuned operating point recalls nearly everything at 300
        assert curve[-1]["recall"] >= 0.9

    def test_dataset_mode_prefixes_sides(self, capsys):
        args = ["index", "--dataset", "abt-buy", "--split", "test",
                "--stats", "--format", "json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "abt-buy/test"
        assert payload["true_pairs"] > 0

    def test_text_format_renders_ingest_and_curve(self, capsys):
        assert main(["index", "--synthetic", "200", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "records/sec" in out
        assert "recall" in out

    def test_bands_without_rows_rejected(self, capsys):
        assert main(["index", "--synthetic", "50", "--bands", "16"]) == 2
        assert "--bands/--rows" in capsys.readouterr().out

    def test_nonpositive_top_k_rejected(self, capsys):
        assert main(["index", "--synthetic", "50", "--top-k", "0"]) == 2

    def test_nonpositive_synthetic_rejected(self, capsys):
        assert main(["index", "--synthetic", "0"]) == 2

    def test_explicit_banding_overrides_solver(self, capsys):
        args = ["index", "--synthetic", "100", "--bands", "16",
                "--rows", "4", "--format", "json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["index"]["bands"] == 16
        assert payload["index"]["rows"] == 4
        assert payload["index"]["num_perm"] == 64


class TestResolveMinhashBlocking:
    ARGS = ["resolve", "--dataset", "abt-buy", "--limit", "60",
            "--blocking", "minhash"]

    def test_json_output_is_byte_identical_across_runs(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["blocker"] == "minhash"
        assert payload["clusters"] >= 1

    def test_top_k_bounds_the_candidate_set(self, capsys):
        assert main(
            self.ARGS + ["--top-k", "1", "--format", "json"]
        ) == 0
        narrow = json.loads(capsys.readouterr().out)
        assert main(
            self.ARGS + ["--top-k", "10", "--format", "json"]
        ) == 0
        wide = json.loads(capsys.readouterr().out)
        assert narrow["candidates"] <= wide["candidates"]
