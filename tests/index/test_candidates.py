"""MinHashCandidateIndex: the incremental predicate and its invariants."""

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_dedup_corpus
from repro.index import MinHashCandidateIndex, MinHashBlocker, rank_candidates


def _index(**kwargs):
    kwargs.setdefault("bands", 32)
    kwargs.setdefault("rows", 3)
    return MinHashCandidateIndex(**kwargs)


def _corpus(n=120, seed=11):
    return synthetic_dedup_corpus(n, seed=seed)


class TestAdd:
    def test_duplicate_id_rejected(self):
        index = _index()
        index.add("a", "acme widget")
        with pytest.raises(ValueError, match="already indexed"):
            index.add("a", "acme widget")

    def test_token_less_records_are_unindexable(self):
        index = _index()
        index.add("empty", "!!! ...")
        index.add("real", "acme widget")
        assert index.unindexable == 1
        assert len(index) == 2
        assert index.signature_of("empty") is None
        # A token-less record never blocks with anything — including
        # another token-less record (no degenerate universal bucket).
        assert index.candidates("??? !!!") == ()

    def test_len_counts_everything(self):
        index = _index()
        for i, description in enumerate(["acme widget", "zenix gadget", "..."]):
            index.add(f"r{i}", description)
        assert len(index) == 3


class TestPredicate:
    def test_near_duplicates_are_candidates(self):
        index = _index()
        index.add("a", "acme widget pro 64gb black edition")
        index.add("b", "acme widget pro 64gb black")
        assert "b" in index.candidates(
            "acme widget pro 64gb black edition", exclude="a"
        )

    def test_exclude_drops_self(self):
        index = _index()
        index.add("a", "acme widget pro")
        found = index.candidates("acme widget pro", exclude="a")
        assert "a" not in found

    def test_candidates_sorted(self):
        index = _index()
        for record_id in ("r3", "r1", "r2"):
            index.add(record_id, "acme widget pro 64gb")
        found = index.candidates("acme widget pro 64gb")
        assert list(found) == sorted(found)

    def test_predicate_is_symmetric_over_a_corpus(self):
        """a sees b iff b sees a — the order-invariance prerequisite."""
        corpus = _corpus()
        index = _index(min_similarity=0.35)
        by_id = {record.record_id: record for record in corpus.records}
        for record in corpus.records:
            index.add(record.record_id, record.description)
        for record in corpus.records:
            for other in index.candidates(
                record.description, exclude=record.record_id
            ):
                assert record.record_id in index.candidates(
                    by_id[other].description, exclude=other
                )

    def test_min_similarity_floor_filters(self):
        loose = _index(min_similarity=0.0)
        tight = _index(min_similarity=0.9)
        for index in (loose, tight):
            index.add("a", "acme widget pro 64gb black")
            index.add("b", "acme widget lite 32gb")
        probe = "acme widget pro 64gb black"
        assert "b" in loose.candidates(probe, exclude="a")
        assert "b" not in tight.candidates(probe, exclude="a")

    def test_min_similarity_validation(self):
        with pytest.raises(ValueError, match="min_similarity"):
            _index(min_similarity=1.5)

    def test_bands_rows_must_come_together(self):
        with pytest.raises(ValueError, match="bands/rows"):
            MinHashCandidateIndex(bands=32)


class TestTopCandidates:
    def test_matches_rank_candidates_contract(self):
        """The matrix-backed ranking equals the reference implementation."""
        corpus = _corpus()
        index = _index(min_similarity=0.2)
        for record in corpus.records:
            index.add(record.record_id, record.description)
        for record in corpus.records[:25]:
            signature = index.signature_of(record.record_id)
            found = [
                other
                for other in index._postings.query(
                    index.banding.band_keys(signature)
                )
                if other != record.record_id
            ]
            expected = rank_candidates(
                signature,
                [(other, index.signature_of(other)) for other in found],
                k=5,
                min_similarity=index.min_similarity,
            )
            assert index.top_candidates(record.record_id, k=5) == expected

    def test_unknown_record_is_empty(self):
        assert _index().top_candidates("ghost") == ()

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be positive"):
            _index().top_candidates("a", k=0)


class TestStats:
    def test_snapshot_shape(self):
        index = _index(shards=4)
        index.add("a", "acme widget")
        index.add("b", "...")
        stats = index.stats()
        assert stats["records"] == 2
        assert stats["indexed"] == 1
        assert stats["unindexable"] == 1
        assert stats["bands"] == 32 and stats["rows"] == 3
        assert stats["shards"] == 4
        assert stats["postings"] == 32  # one signature, one posting per band

    def test_signature_of_returns_a_copy(self):
        index = _index()
        index.add("a", "acme widget")
        signature = index.signature_of("a")
        signature[:] = 0
        assert not np.array_equal(index.signature_of("a"), signature)


class TestBlocker:
    def test_blocks_near_duplicate_pairs(self):
        from repro.datasets.schema import Record

        def rec(record_id, description):
            return Record(
                record_id=record_id,
                attributes={"title": description},
                description=description,
            )

        left = [
            rec("0", "acme widget pro 64gb"),
            rec("1", "zenix gadget mini red"),
        ]
        right = [
            rec("0", "acme widget pro 64gb black"),
            rec("1", "zenix gadget mini"),
            rec("2", "wholly unrelated thing"),
        ]
        result = MinHashBlocker(k=2, threshold=0.3).block(left, right)
        assert (0, 0) in result.candidates
        assert (1, 1) in result.candidates
        assert all(j != 2 for _, j in result.candidates)

    def test_deterministic(self):
        corpus = _corpus(n=60)
        records = list(corpus.records)
        left, right = records[:30], records[30:]
        first = MinHashBlocker(k=5, threshold=0.3).block(left, right)
        second = MinHashBlocker(k=5, threshold=0.3).block(left, right)
        assert first.candidates == second.candidates

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be positive"):
            MinHashBlocker(k=0)
        with pytest.raises(ValueError, match="bands/rows"):
            MinHashBlocker(bands=8)
