#!/usr/bin/env python
"""Scenario: squeezing more F1 out of a fixed labelling budget (Dimension 2).

Compares the paper's data-centric strategies on Llama-3.1-8B with the same
2,500-example WDC budget: standard fine-tuning, error-based filtering,
relevancy filtering, and LLM example generation with filtering.

Usage::

    python examples/data_centric_tuning.py
"""

from repro.core.pipeline import TailorMatch
from repro.core.selection import error_based_filter, relevancy_filter
from repro.datasets.registry import load_dataset


def main() -> None:
    tm = TailorMatch("llama-3.1-8b")
    train = load_dataset("wdc-small").train

    print("training-set variants (paper §5.1/§5.2):")
    filtered = error_based_filter(train)
    relevancy = relevancy_filter(filtered)
    print(f"  WDC-small          {len(train):6d} examples")
    print(f"  error-filtered     {len(filtered):6d} examples")
    print(f"  + relevancy        {len(relevancy):6d} examples")

    results = {}
    print("\nfine-tuning each variant …")
    results["standard"] = tm.evaluate(tm.fine_tune("wdc-small"), "wdc-small").f1
    results["error-filter"] = tm.evaluate(
        tm.fine_tune("wdc-small", selection="error-filter"), "wdc-small"
    ).f1
    results["error+relevancy"] = tm.evaluate(
        tm.fine_tune("wdc-small", selection="error-filter+relevancy"), "wdc-small"
    ).f1
    results["generation+filter"] = tm.evaluate(
        tm.fine_tune("wdc-small", selection="error-filter", generation=True),
        "wdc-small",
    ).f1

    zero = tm.evaluate(None, "wdc-small").f1
    print()
    print(f"{'variant':20s} {'F1':>7s} {'vs zero-shot':>13s}")
    print(f"{'zero-shot':20s} {zero:7.2f} {'-':>13s}")
    for name, f1 in results.items():
        print(f"{name:20s} {f1:7.2f} {f1 - zero:+13.2f}")

    best = max(results, key=results.get)
    print(f"\nbest data-centric strategy here: {best}")
    print("(paper §5: quality beats quantity — filtered small sets rival the")
    print(" 20k-example WDC-large training set)")


if __name__ == "__main__":
    main()
