#!/usr/bin/env python
"""Quickstart: match entity descriptions with zero-shot and fine-tuned LLMs.

Runs in well under a minute:

1. match two individual product descriptions through the chat interface;
2. evaluate a zero-shot model on a benchmark;
3. fine-tune Llama-3.1-8B (simulated) on WDC Products and compare.

Usage::

    python examples/quickstart.py
"""

from repro import TailorMatch


def main() -> None:
    tm = TailorMatch("llama-3.1-8b")

    # -- 1. single-pair matching (Figure 2 of the paper) --------------------
    pairs = [
        ("Jabra EVOLVE 80 MS Stereo (7899-823-109)",
         "Jabra Evolve 80 UC stereo Skype for Business"),
        ("CLARKS Sram, PG-730, 7sp cassette, 12-32T",
         "Sram PG 1130 11sp cassette 11-36T"),
    ]
    print("== single-pair matching (zero-shot Llama-3.1-8B) ==")
    for left, right in pairs:
        verdict = tm.match(left, right)
        print(f"  {'MATCH   ' if verdict else 'NO MATCH'}  {left!r}  vs  {right!r}")

    # -- 2. zero-shot benchmark evaluation ----------------------------------
    print("\n== zero-shot F1 on WDC Products (80% corner cases) ==")
    zero = tm.evaluate(None, "wdc-small")
    print(f"  P={zero.scores.precision:.2f}  R={zero.scores.recall:.2f}  "
          f"F1={zero.f1:.2f}")

    # -- 3. standard fine-tuning (paper §3) ----------------------------------
    print("\n== fine-tuning on WDC small (LoRA, provider defaults) ==")
    tuned = tm.fine_tune("wdc-small")
    after = tm.evaluate(tuned, "wdc-small")
    print(f"  fine-tuned F1={after.f1:.2f}  (gain {after.f1 - zero.f1:+.2f})")

    # in-domain transfer to another product benchmark
    ab_zero = tm.evaluate(None, "abt-buy")
    ab_tuned = tm.evaluate(tuned, "abt-buy")
    print(f"  transfer to Abt-Buy: {ab_zero.f1:.2f} -> {ab_tuned.f1:.2f} "
          f"({ab_tuned.f1 - ab_zero.f1:+.2f})")


if __name__ == "__main__":
    main()
