#!/usr/bin/env python
"""Scenario: how robust is a matcher to prompt wording? (paper §3.3)

Evaluates one model under the paper's four prompt variants before and
after fine-tuning, showing the stabilizing effect of fine-tuning that the
paper reports (Llama-8B: std 15.76 → 1.87).

Usage::

    python examples/prompt_sensitivity_study.py
"""

from repro.core.pipeline import TailorMatch
from repro.core.sensitivity import prompt_sensitivity


def main() -> None:
    tm = TailorMatch("llama-3.1-8b")

    print("== zero-shot: F1 per prompt on WDC Products ==")
    before = prompt_sensitivity(tm.zero_shot, "wdc-small")
    for prompt, f1 in before.f1_by_prompt.items():
        print(f"  {prompt:14s} {f1:6.2f}")
    print(f"  std = {before.std:.2f}")

    print("\nfine-tuning on WDC small …")
    tuned = tm.fine_tune("wdc-small")

    print("\n== fine-tuned: F1 per prompt ==")
    after = prompt_sensitivity(tuned, "wdc-small")
    for prompt, f1 in after.f1_by_prompt.items():
        print(f"  {prompt:14s} {f1:6.2f}")
    print(f"  std = {after.std:.2f}")

    print(f"\nsensitivity reduced {before.std:.2f} -> {after.std:.2f} "
          f"({before.std / max(after.std, 1e-9):.1f}x more stable)")
    best = after.best_prompt
    note = "" if best == "default" else " (not the fine-tuning prompt!)"
    print(f"best query prompt after fine-tuning: {best}{note}")


if __name__ == "__main__":
    main()
