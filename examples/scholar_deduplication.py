#!/usr/bin/env python
"""Scenario: deduplicating bibliographic records across two databases.

Matches DBLP-style entries against noisy Google-Scholar-style entries — the
paper's scholar domain — and demonstrates the cross-domain warning from the
paper: a model fine-tuned on *products* is the wrong tool for this job,
while a model fine-tuned on in-domain bibliographic data excels.

Usage::

    python examples/scholar_deduplication.py
"""

from repro.core.pipeline import TailorMatch
from repro.datasets.registry import load_dataset


def main() -> None:
    tm = TailorMatch("llama-3.1-8b")
    test = "dblp-scholar"

    print("== zero-shot baseline ==")
    zero = tm.evaluate(None, test)
    print(f"  F1 {zero.f1:.2f}")

    print("\n== in-domain fine-tuning (DBLP-Scholar training split) ==")
    scholar_model = tm.fine_tune("dblp-scholar")
    in_domain = tm.evaluate(scholar_model, test)
    print(f"  F1 {in_domain.f1:.2f}  ({in_domain.f1 - zero.f1:+.2f} vs zero-shot)")

    print("\n== cross-domain model (fine-tuned on WDC products) ==")
    product_model = tm.fine_tune("wdc-small")
    cross = tm.evaluate(product_model, test)
    print(f"  F1 {cross.f1:.2f}  ({cross.f1 - zero.f1:+.2f} vs zero-shot)")

    print("\nconclusion: fine-tuning specializes — use in-domain training data")
    print("(paper §3.2: cross-domain transfer usually falls below zero-shot).")

    # transfer inside the scholar domain still works
    acm = tm.evaluate(scholar_model, "dblp-acm")
    acm_zero = tm.evaluate(None, "dblp-acm")
    print(f"\nin-domain transfer to DBLP-ACM: {acm_zero.f1:.2f} -> {acm.f1:.2f}")


if __name__ == "__main__":
    main()
