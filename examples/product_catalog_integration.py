#!/usr/bin/env python
"""Scenario: deduplicating product offers from two shops.

A data-integration pipeline in the style the paper's introduction
motivates: offers from two web shops must be matched before being merged
into one catalog.  The pipeline uses a fine-tuned model with structured
explanations (the paper's best representation for small models), served
through the batched local runner, and reports precision/recall so an
operator can pick a trust level.

Usage::

    python examples/product_catalog_integration.py
"""

from repro.core.pipeline import TailorMatch
from repro.datasets.registry import load_dataset
from repro.eval.metrics import f1_score
from repro.llm.parsing import parse_yes_no
from repro.prompts.templates import DEFAULT_PROMPT
from repro.serving.local_runner import LocalRunner

import numpy as np


def main() -> None:
    # Fine-tune once with the paper's best Dimension-1 representation.
    print("fine-tuning Llama-3.1-8B with structured explanations …")
    tm = TailorMatch("llama-3.1-8b")
    matcher = tm.fine_tune("wdc-small", explanations="structured")

    # Candidate offer pairs arriving from the two shops (we reuse a slice of
    # the Walmart-Amazon benchmark as the incoming workload).
    workload = load_dataset("walmart-amazon").test.subset(range(400), "intake")
    print(f"matching {len(workload)} candidate offer pairs …")

    runner = LocalRunner(matcher, batch_size=64)
    prompts = [
        DEFAULT_PROMPT.render(p.left.description, p.right.description)
        for p in workload
    ]
    answers = runner.generate(prompts)
    predictions = np.array([bool(parse_yes_no(a)) for a in answers])

    labels = np.array(workload.labels())
    scores = f1_score(labels, predictions)
    print(f"precision {scores.precision:.1f}  recall {scores.recall:.1f}  "
          f"F1 {scores.f1:.1f}")

    merged = int(predictions.sum())
    print(f"{merged} offer pairs would be merged into the catalog;")
    print(f"{scores.fp} of them are false merges — review before committing.")

    print("\nsample decisions:")
    for pair, answer in list(zip(workload, answers))[:5]:
        print(f"  [{answer.split('.')[0]:>3s}] {pair.left.description!r}")
        print(f"        {pair.right.description!r}")


if __name__ == "__main__":
    main()
