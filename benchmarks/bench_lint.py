"""Lint walker throughput: parallel shallow pass, cold vs warm ``--deep``.

Two measurements:

* The per-file parse+walk phase of :func:`repro.lint.run_lint` fans out
  over a thread pool when ``jobs`` > 1.  This benchmark times the
  shallow lint of the default roots at a sweep of worker counts, asserts
  every parallel run produces byte-identical output to the serial run,
  and reports wall-clock plus speedup.  ``ast.parse`` releases the GIL
  poorly, so the expected win is modest — the point of the numbers is
  honesty, not marketing.
* The whole-program ``--deep`` analysis through the incremental cache
  (:mod:`repro.lint.cache`): one cold run populating a fresh cache
  directory, then a warm run against it.  The warm run must return
  byte-identical findings and summary (modulo the ``cache`` stats block)
  and must be at least ``DEEP_WARM_SPEEDUP_FLOOR``× faster — the gate CI
  enforces.

Runs standalone (CI smoke) or under pytest-benchmark::

    PYTHONPATH=src python -m benchmarks.bench_lint --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_lint.py -q
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

from repro.lint import DEFAULT_ROOTS, run_lint
from repro.lint.cache import AnalysisCache
from repro.lint.deep import run_deep
from repro.lint.findings import format_json

from benchmarks._output import emit, emit_json
from repro.eval.reports import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
FULL_REPEATS = 3
SMOKE_REPEATS = 1
#: acceptance gate: a warm cache hit must beat the cold run by this much.
DEEP_WARM_SPEEDUP_FLOOR = 3.0


def _time_run(jobs: int | None, repeats: int) -> tuple[float, str]:
    """Best-of-*repeats* wall-clock plus the rendered JSON output."""
    best = float("inf")
    payload = ""
    for _ in range(repeats):
        start = time.perf_counter()
        findings = run_lint(REPO_ROOT, paths=list(DEFAULT_ROOTS), jobs=jobs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        payload = format_json(findings)
    return best, payload


def run_sweep(repeats: int) -> dict[str, object]:
    """Serial baseline, then a jobs sweep; outputs must be identical."""
    serial_s, serial_out = _time_run(None, repeats)
    rows: list[dict[str, object]] = [
        {"jobs": "serial", "wall_s": round(serial_s, 4), "speedup": 1.0}
    ]
    cpus = os.cpu_count() or 1
    for jobs in sorted({2, 4, cpus}):
        if jobs < 2:
            continue
        wall, out = _time_run(jobs, repeats)
        if out != serial_out:
            raise AssertionError(f"jobs={jobs} output diverged from serial run")
        rows.append(
            {
                "jobs": jobs,
                "wall_s": round(wall, 4),
                "speedup": round(serial_s / wall, 2),
            }
        )
    return {"cpus": cpus, "repeats": repeats, "rows": rows}


def run_deep_cold_warm() -> dict[str, object]:
    """Cold ``--deep`` into a fresh cache, then a warm hit against it.

    Asserts the byte-identity and speedup contracts the cache promises;
    a regression here is a correctness bug, not just a slowdown.
    """
    with tempfile.TemporaryDirectory(prefix="bench-lint-cache-") as tmp:
        start = time.perf_counter()
        cold = AnalysisCache(tmp)
        cold_findings, cold_summary = run_deep(REPO_ROOT, cache=cold)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = AnalysisCache(tmp)
        warm_findings, warm_summary = run_deep(REPO_ROOT, cache=warm)
        warm_s = time.perf_counter() - start

    if not warm.stats["deep_hit"]:
        raise AssertionError("warm --deep run missed the cache")
    if format_json(warm_findings) != format_json(cold_findings):
        raise AssertionError("warm --deep findings diverged from cold run")
    def strip(summary: dict) -> dict:
        return {k: v for k, v in summary.items() if k != "cache"}

    if strip(warm_summary) != strip(cold_summary):
        raise AssertionError("warm --deep summary diverged from cold run")
    speedup = cold_s / warm_s
    if speedup < DEEP_WARM_SPEEDUP_FLOOR:
        raise AssertionError(
            f"warm --deep only {speedup:.2f}x faster than cold "
            f"(floor {DEEP_WARM_SPEEDUP_FLOOR}x)"
        )
    return {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "floor": DEEP_WARM_SPEEDUP_FLOOR,
        "findings": len(cold_findings),
        "files": cold_summary["cache"]["files"],
    }


def render(result: dict[str, object]) -> str:
    rows = [
        [row["jobs"], f"{row['wall_s']:.4f}", f"{row['speedup']:.2f}x"]
        for row in result["rows"]
    ]
    table = format_table(
        ["jobs", "wall_s", "speedup"],
        rows,
        title=(
            "lint walker: shallow pass over default roots "
            f"(cpus={result['cpus']}, best of {result['repeats']})"
        ),
    )
    deep = result.get("deep")
    if deep:
        table += "\n\n" + format_table(
            ["run", "wall_s", "speedup"],
            [
                ["cold", f"{deep['cold_s']:.4f}", "1.00x"],
                ["warm", f"{deep['warm_s']:.4f}", f"{deep['speedup']:.2f}x"],
            ],
            title=(
                "--deep with --cache: cold populate vs warm hit "
                f"({deep['files']} files, {deep['findings']} findings, "
                f"floor {deep['floor']:.0f}x)"
            ),
        )
    return table


def test_parallel_output_identical_and_measured() -> None:
    result = run_sweep(SMOKE_REPEATS)
    assert len(result["rows"]) >= 2
    assert all(row["wall_s"] > 0 for row in result["rows"])


def test_deep_warm_cache_identical_and_fast() -> None:
    deep = run_deep_cold_warm()  # asserts identity + speedup internally
    assert deep["speedup"] >= DEEP_WARM_SPEEDUP_FLOOR


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="single repeat")
    parser.add_argument(
        "--no-deep",
        action="store_true",
        help="skip the --deep cold/warm cache measurement",
    )
    args = parser.parse_args()
    result = run_sweep(SMOKE_REPEATS if args.smoke else FULL_REPEATS)
    if not args.no_deep:
        result["deep"] = run_deep_cold_warm()
    emit("bench_lint", render(result))
    emit_json("bench_lint", result)


if __name__ == "__main__":
    main()
