"""Lint walker throughput: serial vs thread-pooled per-file phase.

The per-file parse+walk phase of :func:`repro.lint.run_lint` fans out
over a thread pool when ``jobs`` > 1.  This benchmark times the shallow
lint of the default roots at a sweep of worker counts, asserts every
parallel run produces byte-identical output to the serial run, and
reports wall-clock plus speedup.  ``ast.parse`` releases the GIL poorly,
so the expected win is modest — the point of the numbers is honesty, not
marketing.

Runs standalone (CI smoke) or under pytest-benchmark::

    PYTHONPATH=src python -m benchmarks.bench_lint --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_lint.py -q
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from repro.lint import DEFAULT_ROOTS, run_lint
from repro.lint.findings import format_json

from benchmarks._output import emit, emit_json
from repro.eval.reports import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
FULL_REPEATS = 3
SMOKE_REPEATS = 1


def _time_run(jobs: int | None, repeats: int) -> tuple[float, str]:
    """Best-of-*repeats* wall-clock plus the rendered JSON output."""
    best = float("inf")
    payload = ""
    for _ in range(repeats):
        start = time.perf_counter()
        findings = run_lint(REPO_ROOT, paths=list(DEFAULT_ROOTS), jobs=jobs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        payload = format_json(findings)
    return best, payload


def run_sweep(repeats: int) -> dict[str, object]:
    """Serial baseline, then a jobs sweep; outputs must be identical."""
    serial_s, serial_out = _time_run(None, repeats)
    rows: list[dict[str, object]] = [
        {"jobs": "serial", "wall_s": round(serial_s, 4), "speedup": 1.0}
    ]
    cpus = os.cpu_count() or 1
    for jobs in sorted({2, 4, cpus}):
        if jobs < 2:
            continue
        wall, out = _time_run(jobs, repeats)
        if out != serial_out:
            raise AssertionError(f"jobs={jobs} output diverged from serial run")
        rows.append(
            {
                "jobs": jobs,
                "wall_s": round(wall, 4),
                "speedup": round(serial_s / wall, 2),
            }
        )
    return {"cpus": cpus, "repeats": repeats, "rows": rows}


def render(result: dict[str, object]) -> str:
    rows = [
        [row["jobs"], f"{row['wall_s']:.4f}", f"{row['speedup']:.2f}x"]
        for row in result["rows"]
    ]
    return format_table(
        ["jobs", "wall_s", "speedup"],
        rows,
        title=(
            "lint walker: shallow pass over default roots "
            f"(cpus={result['cpus']}, best of {result['repeats']})"
        ),
    )


def test_parallel_output_identical_and_measured() -> None:
    result = run_sweep(SMOKE_REPEATS)
    assert len(result["rows"]) >= 2
    assert all(row["wall_s"] > 0 for row in result["rows"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="single repeat")
    args = parser.parse_args()
    result = run_sweep(SMOKE_REPEATS if args.smoke else FULL_REPEATS)
    emit("bench_lint", render(result))
    emit_json("bench_lint", result)


if __name__ == "__main__":
    main()
