"""Extra: classical baselines vs the LLMs (context for the intro's claims).

Not a paper table — a sanity floor showing where five decades of classical
matching land on the same benchmarks, and that the fine-tuned simulated
LLMs clear it where the paper's narrative expects them to.
"""

import numpy as np

from repro.baselines import FellegiSunterMatcher, ThresholdMatcher
from repro.core.finetuning import finetune_model, zero_shot_model
from repro.datasets.registry import load_dataset
from repro.eval.evaluator import evaluate_model
from repro.eval.metrics import f1_score
from repro.eval.reports import format_table

from benchmarks._output import emit


def test_baselines_vs_llms(benchmark):
    def run():
        rows = []
        for name in ("wdc-small", "abt-buy", "dblp-acm"):
            dataset = load_dataset(name)
            labels = np.array(dataset.test.labels())
            threshold = ThresholdMatcher().fit(dataset.train)
            fs = FellegiSunterMatcher().fit(dataset.train)
            zs = evaluate_model(zero_shot_model("gpt-4o"), dataset.test).f1
            ft = evaluate_model(
                finetune_model("llama-3.1-8b", name).model, dataset.test
            ).f1
            rows.append([
                name,
                f"{f1_score(labels, threshold.predict(dataset.test)).f1:.2f}",
                f"{f1_score(labels, fs.predict(dataset.test)).f1:.2f}",
                f"{zs:.2f}",
                f"{ft:.2f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "baselines",
        format_table(
            ["dataset", "threshold", "fellegi-sunter", "gpt-4o zero-shot",
             "llama-8b fine-tuned"],
            rows,
            title="Classical baselines vs (simulated) LLMs",
        ),
    )
