"""Extension: mixed-domain fine-tuning (the paper's future-work direction).

The paper's conclusion names "strategies to improve cross-domain
generalization" as future work.  The obvious candidate — fine-tuning on a
mixture of both topical domains — works in this reproduction: both domains
stay rehearsed, so neither suffers the interference that single-domain
fine-tuning causes.
"""

from repro.core.finetuning import (
    combine_training_sets,
    evaluate_on,
    finetune_model,
    zero_shot_model,
)
from repro.datasets.registry import load_dataset
from repro.eval.reports import format_table

from benchmarks._output import emit

EVALS = ["wdc-small", "abt-buy", "dblp-acm", "dblp-scholar"]


def test_extension_mixed_domain(benchmark):
    def run():
        zero = {n: r.f1 for n, r in
                evaluate_on(zero_shot_model("llama-3.1-8b"), EVALS).items()}
        product_only = finetune_model("llama-3.1-8b", "wdc-small").model
        product_f1 = {n: r.f1 for n, r in evaluate_on(product_only, EVALS).items()}
        mixed_train = combine_training_sets(["wdc-small", "dblp-acm"])
        mixed = finetune_model(
            "llama-3.1-8b", mixed_train,
            valid=load_dataset("wdc-small").valid, tag="mixed-domain",
        ).model
        mixed_f1 = {n: r.f1 for n, r in evaluate_on(mixed, EVALS).items()}
        return zero, product_f1, mixed_f1

    zero, product_f1, mixed_f1 = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, f"{zero[n]:.2f}", f"{product_f1[n]:.2f}", f"{mixed_f1[n]:.2f}"]
        for n in EVALS
    ]
    emit(
        "extension_mixed_domain",
        format_table(
            ["test set", "zero-shot", "ft on WDC only", "ft on WDC+DBLP-ACM"],
            rows,
            title="Extension: mixed-domain fine-tuning fixes cross-domain "
            "degradation (Llama-8B)",
        ),
    )

    # mixed-domain training keeps the product gains …
    assert mixed_f1["wdc-small"] > zero["wdc-small"] + 5
    # … while repairing the scholar side that product-only training hurt
    scholar_product = sum(product_f1[n] - zero[n] for n in ("dblp-acm", "dblp-scholar"))
    scholar_mixed = sum(mixed_f1[n] - zero[n] for n in ("dblp-acm", "dblp-scholar"))
    assert scholar_mixed > scholar_product
    assert mixed_f1["dblp-acm"] > zero["dblp-acm"] - 2
