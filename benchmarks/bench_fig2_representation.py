"""Figure 2: the standard training-example representation."""

from repro.datasets.registry import load_dataset
from repro.prompts.builder import build_matching_prompt

from benchmarks._output import emit


def test_fig2_standard_representation(benchmark):
    train = load_dataset("wdc-small").train
    match = next(p for p in train if p.label)
    nonmatch = next(p for p in train if not p.label)

    def render():
        return [
            (build_matching_prompt(pair), "Yes." if pair.label else "No.")
            for pair in (match, nonmatch)
        ]

    examples = benchmark.pedantic(render, rounds=1, iterations=1)
    lines = ["Figure 2: standard fine-tuning example representation", ""]
    for prompt, completion in examples:
        lines.append("Prompt:")
        lines.extend("  " + line for line in prompt.splitlines())
        lines.append(f"Completion: {completion!r}")
        lines.append("")
    emit("fig2_representation", "\n".join(lines))
    assert examples[0][1] == "Yes."
    assert examples[1][1] == "No."
