"""Robustness: match quality and fallback share under injected faults.

An abt-buy workload runs through the matching engine while a seeded
:class:`~repro.faults.FaultyBackend` injects transport errors, timeouts,
garbled completions, and malformed batch responses at swept rates.  For
each rate the benchmark reports F1 against the split labels, the share
of requests answered by the degraded threshold fallback, and the
engine's error accounting split by class — the degradation curve the
chaos harness's invariants guarantee is graceful rather than silent.

The rate-0 row doubles as a regression gate: with injection disabled the
wrapper must be fully transparent (no faults observed, no fallbacks).

Runs standalone (CI smoke) or under pytest-benchmark::

    PYTHONPATH=src python -m benchmarks.bench_faults --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -q
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.datasets.registry import load_dataset
from repro.datasets.schema import Split
from repro.engine import make_backend
from repro.eval.metrics import f1_score
from repro.eval.reports import format_table
from repro.faults import FaultPlan, build_chaos_engine

from benchmarks._output import emit, emit_json

MODEL = "llama-3.1-8b"
RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
FULL_PAIRS = 240
SMOKE_PAIRS = 96
SEED = 0


def _workload(pairs: int) -> Split:
    return Split(
        name="abt-buy-faults",
        pairs=load_dataset("abt-buy").test.pairs[:pairs],
    )


def run_fault_sweep(pairs: int, seed: int = SEED) -> dict[str, object]:
    """Sweep fault rates over one workload; F1 + fallback share per rate."""
    split = _workload(pairs)
    labels = np.array(split.labels(), dtype=bool)

    rows: list[dict[str, object]] = []
    for rate in RATES:
        plan = FaultPlan(seed=seed, fault_rate=rate)
        engine, backend, _clock = build_chaos_engine(plan, inner=make_backend(MODEL))
        predictions = engine.predict_split(split)
        scores = f1_score(labels, predictions)
        stats = engine.stats.as_dict()
        stats.pop("latency", None)
        requests = int(stats["requests"])
        fallback_share = stats["fallbacks"] / requests if requests else 0.0
        rows.append(
            {
                "fault_rate": rate,
                "f1": round(scores.f1, 2),
                "precision": round(scores.precision, 2),
                "recall": round(scores.recall, 2),
                "fallback_share": round(fallback_share, 4),
                "injected": backend.injected_counts(),
                "stats": stats,
            }
        )

    clean = rows[0]
    assert clean["fault_rate"] == 0
    # Rate 0 must be transparent: nothing injected, nothing degraded.
    assert sum(clean["injected"].values()) == 0
    assert clean["stats"]["fallbacks"] == 0

    return {
        "model": MODEL,
        "pairs": pairs,
        "seed": seed,
        "clean_f1": clean["f1"],
        "rates": rows,
    }


def _render(payload: dict[str, object]) -> str:
    rows = []
    for row in payload["rates"]:
        stats = row["stats"]
        errors = (
            f"t={stats['timeouts']} x={stats['transport_errors']} "
            f"c={stats['circuit_open']} m={stats['malformed']}"
        )
        rows.append(
            [
                f"{row['fault_rate']:.1f}",
                f"{row['f1']:.2f}",
                f"{row['fallback_share']:.1%}",
                f"{sum(row['injected'].values())}",
                f"{stats['retries']}",
                errors,
            ]
        )
    return format_table(
        ["fault rate", "F1", "fallback share", "injected", "retries",
         "errors (t/x/c/m)"],
        rows,
        title=(
            f"Degradation under injected faults ({payload['model']}, "
            f"{payload['pairs']} pairs, seed {payload['seed']})"
        ),
    )


def test_fault_degradation(benchmark):
    payload = benchmark.pedantic(
        lambda: run_fault_sweep(SMOKE_PAIRS), rounds=1, iterations=1
    )
    faulted = payload["rates"][-1]
    assert sum(faulted["injected"].values()) > 0  # injection must engage
    emit_json("bench_faults", payload)
    emit("bench_faults", _render(payload))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small CI workload ({SMOKE_PAIRS} pairs instead of {FULL_PAIRS})",
    )
    args = parser.parse_args(argv)
    payload = run_fault_sweep(SMOKE_PAIRS if args.smoke else FULL_PAIRS)
    if sum(payload["rates"][-1]["injected"].values()) == 0:
        print("bench_faults: fault injection never engaged")
        return 1
    emit_json("bench_faults", payload)
    emit("bench_faults", _render(payload))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
