"""Table 4: training-set sizes after filtration and generation."""

from repro.core.generation import inspection_report
from repro.experiments.render import render_size_table
from repro.experiments.table45 import _generated_pool, compute_table4
from repro.paper_reference import TABLE4

from benchmarks._output import emit


def test_table4_set_sizes(benchmark):
    sizes = benchmark.pedantic(compute_table4, rounds=1, iterations=1)

    text = render_size_table(
        "Table 4: training-set sizes after filtration/generation "
        "(ours vs paper)",
        sizes,
        paper_sizes=TABLE4,
    )
    report = inspection_report(list(_generated_pool().pairs))
    text += "\n\nGenerated-example inspection (paper §5.2, simulated ground truth):\n"
    for method, stats in report.items():
        text += (
            f"  {method:14s} count={stats['count']:6.0f} "
            f"pos={stats['positive_rate']:.2f} corner={stats['corner_rate']:.2f} "
            f"mislabeled={stats['mislabeled_rate']:.2f}\n"
        )
    emit("table4_set_sizes", text)

    # shape: error-based filtering removes a minority of WDC-small …
    assert sizes["WDC-small"][2] == 2500
    assert 0.6 * 2500 < sizes["WDC-filtered"][2] < 2500
    # … relevancy filtering is much more aggressive and keeps mostly
    # positives/corner cases (paper: 608 of 2500, mostly positives)
    assert sizes["WDC-filtered-rel"][2] < sizes["WDC-filtered"][2]
    pos, neg, _ = sizes["WDC-filtered-rel"]
    assert pos > 0.4 * 500
    # generation adds far more data than the seeds
    assert sizes["Syn"][2] > 4 * 2500
    # filtering the generated pool removes the (mislabeled) part
    assert sizes["Syn-filtered"][2] < sizes["Syn"][2]
    assert sizes["Syn-filtered-rel"][2] < sizes["Syn-filtered"][2]
    # brief generation has the worst label quality (paper's inspection)
    assert report["brief"]["mislabeled_rate"] > report["detailed"]["mislabeled_rate"]
