"""Ablation: checkpoint-window validation (hosted vs open-source policy).

The paper notes OpenAI exposes only the final checkpoint plus two
intermediate ones, "limiting the validation process".  This ablation
quantifies the cost of that limitation: best-of-all-epochs versus
best-of-last-3 versus final-epoch-only, on the same training run.
"""

from dataclasses import replace

import numpy as np

from repro.core.finetuning import make_training_examples
from repro.datasets.registry import load_dataset
from repro.eval.evaluator import evaluate_model
from repro.eval.reports import format_table
from repro.llm.model import build_model
from repro.training.config import open_source_defaults

from benchmarks._output import emit


def test_ablation_checkpoint_window(benchmark):
    wdc = load_dataset("wdc-small")
    examples = make_training_examples(wdc.train)

    def run():
        rows = []
        for window, label in ((None, "all epochs (open-source)"),
                              (3, "last 3 (hosted)"),
                              (1, "final only")):
            config = replace(open_source_defaults(), checkpoint_window=window)
            tuned, result = build_model("llama-3.1-8b").fine_tune(
                examples, valid=wdc.valid, config=config,
                training_set=f"ckpt-window-{window}",
            )
            f1 = evaluate_model(tuned, wdc.test).f1
            rows.append([label, result.best_epoch, f"{f1:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_checkpoints",
        format_table(
            ["visible checkpoints", "selected epoch", "WDC F1"],
            rows,
            title="Ablation: checkpoint visibility for validation "
            "(paper §2: hosted models expose only 3 checkpoints)",
        ),
    )
    # wider visibility can only help (weakly)
    f1s = [float(r[2]) for r in rows]
    assert f1s[0] >= f1s[2] - 1.5
