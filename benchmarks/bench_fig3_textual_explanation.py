"""Figure 3: Wadhwa-style textual explanation in a training example."""

from repro.core.explanations import ExplanationGenerator
from repro.datasets.registry import load_dataset
from repro.llm.tokenizer import count_tokens
from repro.prompts.builder import build_matching_prompt

from benchmarks._output import emit


def test_fig3_textual_explanation(benchmark):
    train = load_dataset("wdc-small").train
    match = next(p for p in train if p.label)
    generator = ExplanationGenerator()

    explanation = benchmark.pedantic(
        lambda: generator.explain(match, "wadhwa"), rounds=1, iterations=1
    )

    # paper: Wadhwa-style ≈ 90 tokens, long textual ≈ 293 tokens
    long_exp = generator.explain(match, "long-textual")
    avg_wadhwa = sum(
        generator.explain(p, "wadhwa").token_count for p in train.pairs[:100]
    ) / 100
    avg_long = sum(
        generator.explain(p, "long-textual").token_count for p in train.pairs[:100]
    ) / 100

    lines = [
        "Figure 3: training example with a Wadhwa et al. textual explanation",
        "",
        "User:",
        *("  " + l for l in build_matching_prompt(match).splitlines()),
        "AI:",
        f"  Yes. {explanation.text}",
        "",
        f"avg token length (100 examples): wadhwa={avg_wadhwa:.0f} (paper ~90), "
        f"long-textual={avg_long:.0f} (paper ~293)",
    ]
    emit("fig3_textual_explanation", "\n".join(lines))
    assert 30 < avg_wadhwa < 200
    assert avg_long > avg_wadhwa
    assert long_exp.token_count > explanation.token_count
