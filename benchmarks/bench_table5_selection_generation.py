"""Table 5: fine-tuning with example selection and generation."""

from repro.experiments.render import render_results_table
from repro.experiments.table45 import compute_table5
from repro.paper_reference import TABLE5, TABLE5_GAINS

from benchmarks._output import emit

COLUMNS = ["wdc", "abt-buy", "amazon-google", "walmart-amazon",
           "dblp-acm", "dblp-scholar"]


def test_table5_selection_generation(benchmark):
    result = benchmark.pedantic(compute_table5, rounds=1, iterations=1)
    rows, gains = result["rows"], result["gains"]

    emit(
        "table5_selection_generation",
        render_results_table(
            "Table 5: example selection and generation "
            "(ours, deltas vs WDC-small fine-tuning; paper underneath)",
            COLUMNS, rows, gains,
            paper_rows=TABLE5, paper_gains=TABLE5_GAINS,
            reference_key="wdc-small",
        ),
    )

    # --- shape assertions (paper §5) ---------------------------------------
    def f1(model, train, column="wdc"):
        return rows[(model, train)][column]

    # error-based filtering helps Llama-8B beyond the unfiltered baseline …
    assert f1("llama-3.1-8b", "wdc-s-filter") > f1("llama-3.1-8b", "wdc-small")
    # … and the filtered small sets rival training on the large set
    assert f1("llama-3.1-8b", "wdc-s-filter") > f1("llama-3.1-8b", "wdc-large") - 3

    # error-based filtering HURTS the filter model itself (GPT-4o-mini):
    # it removes exactly the examples it needs to learn from
    assert f1("gpt-4o-mini", "wdc-s-filter") < f1("gpt-4o-mini", "wdc-small")

    # generation + filtering helps Llama-8B
    assert f1("llama-3.1-8b", "syn-filter-rel") > f1("llama-3.1-8b", "wdc-small")
    # … but not GPT-4o-mini (paper: -6.4; ours lands near zero — we assert
    # "no meaningful improvement", see EXPERIMENTS.md)
    assert f1("gpt-4o-mini", "syn-filter") < f1("gpt-4o-mini", "wdc-small") + 1.5

    # error-based selection is among the best Llama-8B configurations
    err_sel = f1("llama-3.1-8b", "wdc-s-err-sel")
    assert err_sel > f1("llama-3.1-8b", "wdc-small")
