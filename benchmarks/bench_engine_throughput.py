"""Extension: online engine throughput vs the sequential chat loop.

A WDC-style workload with repeated candidate pairs (online matching sees
the same hot pairs again and again — think head products re-checked on
every catalog update) is pushed through (a) the plain sequential
``ChatModel.complete`` loop and (b) the :class:`MatchingEngine` with its
micro-batching scheduler and result cache.  Reports pairs/sec for both
paths, the speedup, and the engine's cache hit rate, as text and as JSON.
"""

import time

import numpy as np

from repro._util import derive_rng
from repro.datasets.registry import load_dataset
from repro.engine import MatchingEngine
from repro.eval.reports import format_table
from repro.llm.model import build_model
from repro.llm.parsing import parse_yes_no
from repro.prompts.templates import DEFAULT_PROMPT

from benchmarks._output import emit, emit_json

MODEL = "llama-3.1-8b"
UNIQUE_PAIRS = 600
REPEATED_REQUESTS = 600


def _workload():
    """WDC-style online stream: unique pairs plus a hot repeated tail."""
    base = load_dataset("wdc-small").test.pairs[:UNIQUE_PAIRS]
    rng = derive_rng(4242, "engine-throughput")
    repeats = [base[int(i)] for i in
               rng.integers(0, len(base), size=REPEATED_REQUESTS)]
    return list(base) + repeats


def test_engine_vs_sequential_throughput(benchmark):
    workload = _workload()
    model = build_model(MODEL)

    def run():
        sequential = []
        sequential_latencies = []
        started = time.perf_counter()
        for p in workload:
            pair_started = time.perf_counter()
            sequential.append(bool(parse_yes_no(model.complete(
                DEFAULT_PROMPT.render(p.left.description, p.right.description)
            ))))
            sequential_latencies.append(time.perf_counter() - pair_started)
        sequential_seconds = time.perf_counter() - started

        engine = MatchingEngine.for_model(model)
        started = time.perf_counter()
        results = engine.match_pairs(workload)
        engine_seconds = time.perf_counter() - started

        assert [r.decision for r in results] == sequential  # same answers
        return (
            sequential_seconds, sequential_latencies, engine_seconds,
            engine.stats,
        )

    sequential_seconds, sequential_latencies, engine_seconds, stats = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    n = len(workload)
    sequential_rate = n / sequential_seconds
    engine_rate = n / engine_seconds
    seq_p50, seq_p99 = (
        float(v) for v in np.percentile(sequential_latencies, (50, 99))
    )
    # Engine per-pair latency comes from the engine's own recorder; the
    # sequential loop is timed around each complete() call above.
    engine_latency = stats.latency_percentiles((50, 99))
    payload = {
        "model": MODEL,
        "requests": n,
        "unique_pairs": UNIQUE_PAIRS,
        "sequential_pairs_per_sec": round(sequential_rate, 1),
        "engine_pairs_per_sec": round(engine_rate, 1),
        "speedup": round(engine_rate / sequential_rate, 2),
        "sequential_latency": {
            "p50": round(seq_p50, 6), "p99": round(seq_p99, 6),
        },
        "engine_latency": {
            name: round(seconds, 6)
            for name, seconds in engine_latency.items()
        },
        "engine_stats": stats.as_dict(),
    }
    emit_json("bench_engine_throughput", payload)

    def _ms(seconds: float) -> str:
        return f"{seconds * 1e3:.3f}ms"

    emit(
        "bench_engine_throughput",
        format_table(
            ["path", "pairs/sec", "p50", "p99", "cache hit rate"],
            [
                ["sequential complete()", f"{sequential_rate:,.0f}",
                 _ms(seq_p50), _ms(seq_p99), "—"],
                ["MatchingEngine", f"{engine_rate:,.0f}",
                 _ms(engine_latency.get("p50", 0.0)),
                 _ms(engine_latency.get("p99", 0.0)),
                 f"{stats.hit_rate:.1%}"],
            ],
            title=f"Online engine throughput ({MODEL}, {n} requests, "
            f"{UNIQUE_PAIRS} unique)",
        ),
    )
