"""Benchmark output helper: print tables and persist them under results/."""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered result table and save it to results/<name>.txt."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result to results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
