"""Figure 4: structured explanation in a training example."""

from repro.core.explanations import ExplanationGenerator
from repro.datasets.registry import load_dataset
from repro.prompts.builder import build_matching_prompt

from benchmarks._output import emit


def test_fig4_structured_explanation(benchmark):
    train = load_dataset("wdc-small").train
    match = next(p for p in train if p.label)
    generator = ExplanationGenerator()

    explanation = benchmark.pedantic(
        lambda: generator.explain(match, "structured"), rounds=1, iterations=1
    )

    lines = [
        "Figure 4: training example with a structured explanation",
        "",
        "User:",
        *("  " + l for l in build_matching_prompt(match).splitlines()),
        "AI:",
        "  Yes.",
        *("  " + l for l in explanation.text.splitlines()),
    ]
    emit("fig4_structured_explanation", "\n".join(lines))
    for line in explanation.text.splitlines():
        assert line.startswith("attribute=")
        assert "importance=" in line and "similarity=" in line and "###" in line
