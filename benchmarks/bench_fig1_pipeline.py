"""Figure 1: the fine-tuning and inference setup, traced end to end.

Exercises every stage of the pipeline diagram on a reduced workload:
explanation generation, example generation, filtration, fine-tuning
(through the hosted API for GPT models), and inference via the batch API.
"""

from repro.core.finetuning import make_training_examples
from repro.core.generation import generate_examples
from repro.core.selection import error_based_filter
from repro.datasets.registry import load_dataset
from repro.llm.model import build_model
from repro.prompts.templates import DEFAULT_PROMPT
from repro.serving.batch_api import BatchAPI, BatchRequest
from repro.serving.finetune_api import FineTuneAPI

from benchmarks._output import emit


def test_fig1_pipeline_trace(benchmark):
    wdc = load_dataset("wdc-small")
    seeds = wdc.train.subset(range(50), name="fig1-seeds")

    def run_pipeline():
        trace = []
        generated = generate_examples(seeds, methods=("detailed",))
        trace.append(f"example generation: {len(seeds)} seeds -> {len(generated)} pairs")
        pool = seeds.extended(generated, name="fig1-pool")
        filtered = error_based_filter(pool)
        trace.append(f"filtration: {len(pool)} -> {len(filtered)} examples")
        examples = make_training_examples(filtered, explanation_style="structured")
        trace.append(f"explanation generation: {len(examples)} augmented examples")
        job = FineTuneAPI().create(
            "gpt-4o-mini", examples, validation=wdc.valid, suffix="fig1"
        )
        trace.append(f"fine-tuning job {job.job_id}: {job.status}, "
                     f"checkpoints {[e for e, _ in job.visible_checkpoints]}")
        api = BatchAPI()
        name = api.register_model(job.fine_tuned_model)
        requests = [
            BatchRequest(f"r{i}", DEFAULT_PROMPT.render(p.left.description,
                                                        p.right.description))
            for i, p in enumerate(wdc.test.pairs[:20])
        ]
        batch = api.submit(name, requests)
        responses = api.run_to_completion(batch.job_id)
        trace.append(f"batch inference: {len(responses)} completions, "
                     f"sample: {responses[0].content!r}")
        return trace, job

    (trace, job) = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    emit("fig1_pipeline", "\n".join(
        ["Figure 1: fine-tuning and inference setup (pipeline trace)", ""] + trace
    ))
    assert job.status == "succeeded"
