"""Gateway saturation: latency and goodput vs offered load.

A seeded open-loop Poisson workload (WDC test pairs, two tenants) is
replayed against the threaded request gateway at swept offered loads and
worker counts.  For each point the benchmark reports p50/p99
schedule-to-completion latency, goodput (answered requests per second),
and how many requests were degraded or shed — the saturation curve: flat
latency while capacity holds, then the queue fills, latency climbs, and
the gateway starts answering from the threshold baseline instead of
collapsing.

Every point also re-checks the gateway's conservation invariants
(funnel + engine reconciliation), and the run ends with the gateway
chaos gate: a fault-free run must be byte-transparent and a faulted run
must keep every counter conserved (see :mod:`repro.serve.chaos`).

Runs standalone (CI smoke) or under pytest-benchmark::

    PYTHONPATH=src python -m benchmarks.bench_serve_saturation --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_serve_saturation.py -q
"""

from __future__ import annotations

import argparse
import asyncio
import time

from repro.datasets.registry import load_dataset
from repro.engine import MatchingEngine
from repro.eval.reports import format_table
from repro.serve import (
    Gateway,
    LoadProfile,
    PersonaRouter,
    chaos_serve,
    generate_arrivals,
    replay,
    summarize,
)

from benchmarks._output import emit, emit_json

MODEL = "llama-3.1-8b"
OFFERED_LOADS = (500.0, 2000.0, 8000.0)
WORKER_COUNTS = (1, 4)
FULL_REQUESTS = 400
SMOKE_REQUESTS = 120
BATCH_SIZE = 16
QUEUE_CAPACITY = 64
TENANTS = 2
SEED = 0
CHAOS_FAULT_RATE = 0.25


def _pairs():
    return load_dataset("wdc-small").test.pairs


async def _run_point(
    workers: int, offered_load: float, requests: int
) -> dict[str, object]:
    profile = LoadProfile(
        offered_load=offered_load,
        requests=requests,
        tenants=TENANTS,
        seed=SEED,
    )
    arrivals = generate_arrivals(profile, _pairs())
    router = PersonaRouter(
        default=MODEL,
        personas=(MODEL,),
        engine_factory=lambda name: MatchingEngine.for_model(
            name, batch_size=BATCH_SIZE
        ),
    )
    gateway = Gateway(
        router,
        queue_capacity=QUEUE_CAPACITY,
        batch_size=BATCH_SIZE,
        workers=workers,
    )
    async with gateway:
        outcomes = await replay(
            gateway, arrivals, clock=time.monotonic, sleep_async=asyncio.sleep
        )
    summary = summarize(outcomes)
    violations = gateway.stats.violations()
    violations += gateway.stats.reconcile_engines(router.engines())
    assert not violations, violations
    stats = gateway.stats.as_dict()
    return {
        "workers": workers,
        "offered_load": offered_load,
        **summary,
        "degraded": stats["total"]["degraded"],
        "shed": stats["total"]["shed"],
        "queue_high_water": stats["queue_high_water"],
    }


def run_chaos_gate(requests: int) -> list[dict[str, object]]:
    """The gateway chaos smoke: transparency at rate 0, conservation above."""
    reports = [
        chaos_serve(seed=SEED, fault_rate=rate, requests=requests)
        for rate in (0.0, CHAOS_FAULT_RATE)
    ]
    for report in reports:
        assert report.ok, report.violations
    return [
        {
            "seed": report.seed,
            "fault_rate": report.fault_rate,
            "sources": dict(report.sources),
            "fingerprint": report.fingerprint,
            "ok": report.ok,
        }
        for report in reports
    ]


def run_saturation(requests: int) -> dict[str, object]:
    """Sweep the full (workers x offered load) grid, then the chaos gate."""
    # Warm the (process-cached) model and dataset once, so the first grid
    # point doesn't charge construction cost to its latency percentiles.
    pair = _pairs()[0]
    MatchingEngine.for_model(MODEL).match_pairs(
        [(pair.left.description, pair.right.description)]
    )
    points = [
        asyncio.run(_run_point(workers, load, requests))
        for workers in WORKER_COUNTS
        for load in OFFERED_LOADS
    ]
    return {
        "model": MODEL,
        "requests": requests,
        "tenants": TENANTS,
        "seed": SEED,
        "batch_size": BATCH_SIZE,
        "queue_capacity": QUEUE_CAPACITY,
        "offered_loads": list(OFFERED_LOADS),
        "worker_counts": list(WORKER_COUNTS),
        "points": points,
        "chaos": run_chaos_gate(requests),
    }


def _render(payload: dict[str, object]) -> str:
    rows = []
    for point in payload["points"]:
        latency = point["latency"]
        rows.append(
            [
                point["workers"],
                f"{point['offered_load']:,.0f}",
                f"{point['goodput']:,.0f}",
                f"{latency.get('p50', 0.0) * 1e3:.2f}ms",
                f"{latency.get('p99', 0.0) * 1e3:.2f}ms",
                point["degraded"],
                point["shed"],
                point["queue_high_water"],
            ]
        )
    return format_table(
        ["workers", "offered req/s", "goodput req/s", "p50", "p99",
         "degraded", "shed", "queue hw"],
        rows,
        title=(
            f"Gateway saturation ({payload['model']}, "
            f"{payload['requests']} requests/point, "
            f"{payload['tenants']} tenants, seed {payload['seed']})"
        ),
    )


def test_serve_saturation(benchmark):
    payload = benchmark.pedantic(
        lambda: run_saturation(SMOKE_REQUESTS), rounds=1, iterations=1
    )
    assert all(entry["ok"] for entry in payload["chaos"])
    emit_json("bench_serve_saturation", payload)
    emit("bench_serve_saturation", _render(payload))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small CI workload ({SMOKE_REQUESTS} requests per point "
        f"instead of {FULL_REQUESTS})",
    )
    args = parser.parse_args(argv)
    payload = run_saturation(SMOKE_REQUESTS if args.smoke else FULL_REQUESTS)
    emit_json("bench_serve_saturation", payload)
    emit("bench_serve_saturation", _render(payload))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
