"""Extra: in-context learning vs fine-tuning (the paper's framing).

The paper motivates fine-tuning as the step beyond prompt engineering and
in-context learning.  This benchmark quantifies that ladder on WDC
Products for Llama-8B: zero-shot < few-shot (random/knn demonstrations) <
standard fine-tuning.
"""

import numpy as np

from repro.core.finetuning import finetune_model
from repro.datasets.registry import load_dataset
from repro.eval.metrics import f1_score
from repro.eval.reports import format_table
from repro.llm.incontext import FewShotMatcher
from repro.llm.model import build_model

from benchmarks._output import emit


def test_icl_ladder(benchmark):
    wdc = load_dataset("wdc-small")
    labels = np.array(wdc.test.labels())
    model = build_model("llama-3.1-8b")

    def run():
        rows = []
        rows.append(["zero-shot",
                     f"{f1_score(labels, model.predict_pairs(wdc.test.pairs)).f1:.2f}"])
        for selection in ("random", "knn"):
            matcher = FewShotMatcher(model, wdc.train, k=6, selection=selection)
            f1 = f1_score(labels, matcher.predict_pairs(wdc.test.pairs)).f1
            rows.append([f"few-shot ({selection}, k=6)", f"{f1:.2f}"])
        tuned = finetune_model("llama-3.1-8b", "wdc-small").model
        rows.append(["fine-tuned (LoRA)",
                     f"{f1_score(labels, tuned.predict_pairs(wdc.test.pairs)).f1:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "icl_vs_finetuning",
        format_table(["regime", "WDC F1"], rows,
                     title="In-context learning vs fine-tuning (Llama-8B)"),
    )
    f1s = [float(r[1]) for r in rows]
    assert f1s[1] > f1s[0]          # few-shot beats zero-shot
    assert f1s[-1] > max(f1s[1:3])  # fine-tuning beats few-shot
