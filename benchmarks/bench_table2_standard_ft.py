"""Table 2: standard fine-tuning — the paper's headline experiment grid.

Regenerates the full matrix: 4 models × {zero-shot, per-dataset fine-tunes}
× 6 test sets plus product/scholar transfer gains, printed next to the
paper's reported values.  Shape assertions check the paper's headline
conclusions rather than absolute F1.
"""

from repro.experiments.render import render_results_table
from repro.experiments.table2 import compute_table2
from repro.paper_reference import TABLE2, TABLE2_GAINS

from benchmarks._output import emit

COLUMNS = ["abt-buy", "amazon-google", "walmart-amazon", "wdc",
           "dblp-acm", "dblp-scholar"]


def test_table2_standard_finetuning(benchmark):
    result = benchmark.pedantic(compute_table2, rounds=1, iterations=1)
    rows, gains = result["rows"], result["gains"]

    emit(
        "table2_standard_ft",
        render_results_table(
            "Table 2: F1 after standard fine-tuning (ours, deltas vs zero-shot; "
            "paper values underneath)",
            COLUMNS, rows, gains,
            paper_rows=TABLE2, paper_gains=TABLE2_GAINS,
        ),
    )

    # --- headline shape assertions (paper §3.1/§3.2) -----------------------
    def gain(model, train, column):
        return rows[(model, train)][column] - rows[(model, "zero-shot")][column]

    # 1. fine-tuning significantly improves the small models on their source
    assert gain("llama-3.1-8b", "wdc-small", "wdc") > 8
    assert gain("llama-3.1-8b", "abt-buy", "abt-buy") > 5
    assert gain("gpt-4o-mini", "amazon-google", "amazon-google") > 8

    # 2. results for the larger models are mixed: 70B gains little/none,
    #    GPT-4o improves on WDC
    assert gain("llama-3.1-70b", "wdc-small", "wdc") < 5
    assert gain("gpt-4o", "wdc-small", "wdc") > 3

    # 3. in-domain generalization works for Llama-8B (positive avg gain on
    #    other product datasets after WDC fine-tuning)
    in_domain = [gain("llama-3.1-8b", "wdc-small", c)
                 for c in ("abt-buy", "amazon-google", "walmart-amazon")]
    assert sum(in_domain) / len(in_domain) > 2

    # 4. cross-domain transfer (product -> scholar) does not help
    cross = [gain("llama-3.1-8b", "wdc-small", c)
             for c in ("dblp-acm", "dblp-scholar")]
    assert sum(cross) / len(cross) < 0
    cross_mini = [gain("gpt-4o-mini", "wdc-small", c)
                  for c in ("dblp-acm", "dblp-scholar")]
    assert sum(cross_mini) / len(cross_mini) < 0

    # 5. scholar-trained models dominate their own domain
    assert gain("llama-3.1-8b", "dblp-scholar", "dblp-scholar") > 10
    assert gain("llama-3.1-8b", "dblp-acm", "dblp-acm") > 5
