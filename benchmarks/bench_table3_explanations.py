"""Table 3: fine-tuning with explanation-augmented training sets."""

from repro.experiments.render import render_results_table
from repro.experiments.table3 import compute_table3
from repro.paper_reference import TABLE3, TABLE3_GAINS

from benchmarks._output import emit

COLUMNS = ["wdc", "abt-buy", "amazon-google", "walmart-amazon",
           "dblp-acm", "dblp-scholar"]


def test_table3_explanations(benchmark):
    result = benchmark.pedantic(compute_table3, rounds=1, iterations=1)
    rows, gains = result["rows"], result["gains"]

    emit(
        "table3_explanations",
        render_results_table(
            "Table 3: explanation fine-tuning on WDC small "
            "(ours, deltas vs standard WDC fine-tuning; paper underneath)",
            COLUMNS, rows, gains,
            paper_rows=TABLE3, paper_gains=TABLE3_GAINS,
            reference_key="wdc-small",
        ),
    )

    # --- shape assertions (paper §4) ---------------------------------------
    def f1(model, train, column="wdc"):
        return rows[(model, train)][column]

    # structured explanations beat standard fine-tuning for 3 of 4 models on
    # the source dataset; we require it for Llama-8B and allow the aggregate
    # check for the rest
    assert f1("llama-3.1-8b", "structured") > f1("llama-3.1-8b", "wdc-small")
    better = sum(
        f1(m, "structured") > f1(m, "wdc-small")
        for m in ("llama-3.1-8b", "gpt-4o-mini", "llama-3.1-70b", "gpt-4o")
    )
    assert better >= 2

    # structured explanations help in-domain generalization for Llama-8B
    # (paper: 91% vs 72% transfer gain)
    base_gain = gains[("llama-3.1-8b", "wdc-small")][0]
    structured_gain = gains[("llama-3.1-8b", "structured")][0]
    assert structured_gain is not None and base_gain is not None
    assert structured_gain > base_gain - 0.05

    # long textual explanations are the weakest representation for Llama-8B
    assert f1("llama-3.1-8b", "structured") >= f1("llama-3.1-8b", "long-textual")
