"""§3.3: prompt sensitivity before and after fine-tuning."""

from repro.eval.reports import format_table
from repro.experiments.sensitivity_study import compute_sensitivity_study
from repro.paper_reference import SENSITIVITY

from benchmarks._output import emit


def test_prompt_sensitivity(benchmark):
    study = benchmark.pedantic(
        lambda: compute_sensitivity_study(
            training_sets=("wdc-small", "abt-buy", "dblp-acm")
        ),
        rounds=1, iterations=1,
    )

    rows = []
    for model in ("llama-3.1-8b", "gpt-4o-mini"):
        rows.append([
            model,
            f"{study['zero-shot'][model]:.2f}",
            f"{study['non-transfer'][model]:.2f}",
            f"{study['in-domain'][model]:.2f}",
            f"{study['all'][model]:.2f}",
            f"{study['ft_prompt_best_rate'][model]:.0%}",
        ])
        rows.append([
            "  (paper)",
            f"{SENSITIVITY[(model, 'zero-shot')]:.2f}",
            f"{SENSITIVITY[(model, 'fine-tuned-non-transfer')]:.2f}",
            "-",
            f"{SENSITIVITY[(model, 'fine-tuned-all')]:.2f}",
            "69%" if model == "llama-3.1-8b" else "50%",
        ])
    emit(
        "sensitivity",
        format_table(
            ["model", "zero-shot std", "non-transfer std", "in-domain std",
             "all std", "ft prompt best"],
            rows,
            title="Prompt sensitivity (std of F1 across the four prompts)",
        ),
    )

    # fine-tuning reduces prompt sensitivity (the paper's core §3.3 finding)
    for model in ("llama-3.1-8b", "gpt-4o-mini"):
        assert study["non-transfer"][model] < study["zero-shot"][model]
        assert study["all"][model] < study["zero-shot"][model]
    # the weaker model is more prompt-sensitive zero-shot
    assert study["zero-shot"]["llama-3.1-8b"] > study["zero-shot"]["gpt-4o-mini"]
