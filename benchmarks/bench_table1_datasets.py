"""Table 1: dataset statistics (must reproduce the paper verbatim)."""

from repro.datasets.registry import DATASET_NAMES, load_dataset, table1_statistics
from repro.eval.reports import format_table
from repro.paper_reference import TABLE1

from benchmarks._output import emit


def test_table1_statistics(benchmark):
    stats = benchmark.pedantic(table1_statistics, rounds=1, iterations=1)

    rows = []
    for name in DATASET_NAMES:
        ours = stats[name]
        paper = TABLE1[name]
        row = [name]
        for split in ("train", "valid", "test"):
            row.append(f"{ours[split][0]}/{ours[split][1]}")
        row.append("OK" if ours == paper else "MISMATCH")
        rows.append(row)
    emit(
        "table1_datasets",
        format_table(
            ["dataset", "train +/-", "valid +/-", "test +/-", "vs paper"],
            rows,
            title="Table 1: dataset statistics (ours; paper values identical where OK)",
        ),
    )
    assert all(stats[name] == TABLE1[name] for name in DATASET_NAMES)


def test_dataset_generation_speed(benchmark):
    """Micro-benchmark: rebuilding the WDC small dataset from scratch."""
    from repro.datasets.products import build_wdc

    benchmark.pedantic(lambda: build_wdc("small"), rounds=1, iterations=1)
