"""Ablation: LoRA rank and alpha (the paper fixes rank 64, alpha 16).

Sweeps the adapter capacity knobs on the WDC-small fine-tune of Llama-8B
to show the plateau the paper's defaults sit on.
"""

from dataclasses import replace

from repro.core.finetuning import finetune_model
from repro.datasets.registry import load_dataset
from repro.eval.evaluator import evaluate_model
from repro.eval.reports import format_table
from repro.training.config import open_source_defaults

from benchmarks._output import emit


def test_ablation_lora_rank_alpha(benchmark):
    wdc = load_dataset("wdc-small")
    base_config = open_source_defaults()

    def run():
        results = []
        for rank in (2, 8, 64):
            config = replace(base_config, lora_rank=rank)
            outcome = finetune_model(
                "llama-3.1-8b", "wdc-small", config=config,
                tag=f"ablate-rank{rank}", use_cache=False,
            )
            results.append(("rank", rank, evaluate_model(outcome.model, wdc.test).f1))
        for alpha in (4.0, 16.0, 64.0):
            config = replace(base_config, lora_alpha=alpha)
            outcome = finetune_model(
                "llama-3.1-8b", "wdc-small", config=config,
                tag=f"ablate-alpha{alpha}", use_cache=False,
            )
            results.append(("alpha", alpha, evaluate_model(outcome.model, wdc.test).f1))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_lora",
        format_table(
            ["knob", "value", "WDC F1"],
            [[k, v, f"{f1:.2f}"] for k, v, f1 in results],
            title="Ablation: LoRA rank/alpha (Llama-8B on WDC small; "
            "paper defaults rank=64, alpha=16)",
        ),
    )
    f1s = [f1 for *_, f1 in results]
    # the adapter-capacity curve is a plateau around the paper's defaults:
    # no rank/alpha choice moves WDC F1 by more than a few points
    assert max(f1s) - min(f1s) < 6.0
