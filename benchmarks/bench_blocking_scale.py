"""Extension: blocking at scale — MinHash/LSH vs token candidate generation.

A seeded synthetic dedup corpus (100k records full, 5k smoke) is
ingested into the incremental candidate indexes behind
:class:`~repro.resolve.incremental.ResolutionStore`: the shared-token
inverted index and :class:`repro.index.MinHashCandidateIndex` across a
(bands, rows, min-similarity) grid.  For every backend the benchmark
measures ingest records/sec and — through the same
:func:`repro.blocking.base.recall_curve` code path the ``repro-em index
--stats`` command uses — pair recall against the corpus ground truth at
several top-k cut-offs, alongside the candidate-set size those cut-offs
cost.

The token backend enumerates every record sharing a token, so its
candidate sets grow linearly with the corpus while MinHash banding's
stay bounded by the similarity structure; in full mode the token
backend is therefore measured on a capped prefix of the corpus (its
quadratic candidate scan is exactly the pathology the index subsystem
replaces) and compared per record.

Runs standalone (CI smoke) or under pytest-benchmark::

    PYTHONPATH=src python -m benchmarks.bench_blocking_scale --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_blocking_scale.py -q
"""

from __future__ import annotations

import argparse
import time

from repro.blocking.base import recall_curve
from repro.datasets.synthetic import synthetic_dedup_corpus
from repro.eval.reports import format_table
from repro.index import MinHashCandidateIndex
from repro.resolve.incremental import TokenCandidateIndex

from benchmarks._output import emit, emit_json

FULL_RECORDS = 100_000
SMOKE_RECORDS = 5_000
#: full mode caps the token backend here — its per-record candidate scan
#: is O(corpus) and the full corpus would take hours, which is the point.
TOKEN_CAP = 10_000
SEED = 7
CORRUPTION = 0.25
#: deepest ranked cut-off in the recall curves.
K_MAX = 20
KS = (1, 2, 5, 10, K_MAX, None)

#: the (bands, rows, min-similarity) grid.  32x3 with a 0.35 floor is
#: the operating point the CI smoke gate pins; 42x3 trades ingest speed
#: for the loosest banding threshold; 25x5 is the solver's pick for a
#: 0.5 threshold with no similarity floor (banding alone).
GRID = (
    {"label": "minhash-32x3-f35", "bands": 32, "rows": 3,
     "min_similarity": 0.35},
    {"label": "minhash-42x3-f35", "bands": 42, "rows": 3,
     "min_similarity": 0.35},
    {"label": "minhash-25x5-f00", "bands": 25, "rows": 5,
     "min_similarity": 0.0},
)
PRIMARY = "minhash-32x3-f35"

#: smoke-mode acceptance bars (the CI gate).
SMOKE_MIN_RECALL = 0.95
SMOKE_MAX_CANDIDATES_PER_RECORD = 50.0


def _ingest(index, records) -> float:
    """Feed *records* into *index*; returns ingest records/sec."""
    started = time.perf_counter()
    for record in records:
        index.add(record.record_id, record.description)
    return len(records) / (time.perf_counter() - started)


def _predicate_point(index, records, true_pairs) -> dict[str, object]:
    """Recall and candidate volume of the raw (un-ranked) predicate.

    Streams the per-record candidate lists instead of materializing a
    ranked mapping — the token backend yields thousands of candidates
    per record, which is exactly what this point is here to show.
    Distinct pair count is ``total/2``: the predicate is symmetric, so
    every unordered pair is enumerated exactly twice.
    """
    total = 0
    hit: set[tuple[str, str]] = set()
    for record in records:
        found = index.candidates(
            record.description, exclude=record.record_id
        )
        total += len(found)
        for other in found:
            pair = (
                (record.record_id, other)
                if record.record_id < other
                else (other, record.record_id)
            )
            if pair in true_pairs:
                hit.add(pair)
    return {
        "k": None,
        "recall": len(hit) / len(true_pairs) if true_pairs else 1.0,
        "candidates": total // 2,
        # Distinct pairs per record, matching recall_curve's definition.
        "candidates_per_record": (
            total / 2 / len(records) if records else 0.0
        ),
    }


def run_blocking_scale(
    n_records: int, token_cap: int
) -> dict[str, object]:
    """Ingest + recall/candidate measurements for every backend."""
    corpus = synthetic_dedup_corpus(
        n_records, seed=SEED, corruption=CORRUPTION
    )
    backends: list[dict[str, object]] = []

    token_records = corpus.records[:token_cap]
    token_ids = {record.record_id for record in token_records}
    token_truth = {
        pair for pair in corpus.true_pairs
        if pair[0] in token_ids and pair[1] in token_ids
    }
    token_index = TokenCandidateIndex(min_shared=1)
    token_rate = _ingest(token_index, token_records)
    token_point = _predicate_point(token_index, token_records, token_truth)
    backends.append({
        "label": "token",
        "records": len(token_records),
        "true_pairs": len(token_truth),
        "ingest_records_per_sec": round(token_rate, 1),
        "recall_curve": [token_point],
    })

    for config in GRID:
        index = MinHashCandidateIndex(
            bands=int(config["bands"]),
            rows=int(config["rows"]),
            min_similarity=float(config["min_similarity"]),
            seed=SEED,
            shards=8,
        )
        rate = _ingest(index, corpus.records)
        # One ranked pass serves every cut-off: recall at k comes from
        # recall_curve over top-K_MAX lists (the None point is "every
        # candidate within the top K_MAX ranks").
        ranked = {
            record.record_id: [
                entry.record_id
                for entry in index.top_candidates(record.record_id, k=K_MAX)
            ]
            for record in corpus.records
        }
        backends.append({
            "label": config["label"],
            "bands": config["bands"],
            "rows": config["rows"],
            "min_similarity": config["min_similarity"],
            "records": len(corpus.records),
            "true_pairs": len(corpus.true_pairs),
            "ingest_records_per_sec": round(rate, 1),
            "recall_curve": recall_curve(
                ranked, corpus.true_pairs, list(KS)
            ),
        })

    return {
        "seed": SEED,
        "corruption": CORRUPTION,
        "records": n_records,
        "token_cap": len(token_records),
        "clusters": len(corpus.clusters),
        "true_pairs": len(corpus.true_pairs),
        "k_max": K_MAX,
        "backends": backends,
    }


def _deepest(backend: dict[str, object]) -> dict[str, object]:
    """The deepest (un-truncated) point of a backend's recall curve."""
    return backend["recall_curve"][-1]


def check_smoke(payload: dict[str, object]) -> list[str]:
    """CI acceptance: recall floor, bounded candidates, real reduction."""
    backends = {b["label"]: b for b in payload["backends"]}
    primary = _deepest(backends[PRIMARY])
    token = _deepest(backends["token"])
    failures = []
    if primary["recall"] < SMOKE_MIN_RECALL:
        failures.append(
            f"{PRIMARY} recall {primary['recall']:.4f} "
            f"< {SMOKE_MIN_RECALL}"
        )
    if primary["candidates_per_record"] > SMOKE_MAX_CANDIDATES_PER_RECORD:
        failures.append(
            f"{PRIMARY} candidates/record "
            f"{primary['candidates_per_record']:.1f} "
            f"> {SMOKE_MAX_CANDIDATES_PER_RECORD}"
        )
    if (
        primary["candidates_per_record"] * 10
        > token["candidates_per_record"]
    ):
        failures.append(
            f"{PRIMARY} candidates/record "
            f"{primary['candidates_per_record']:.1f} is not 10x below "
            f"token's {token['candidates_per_record']:.1f}"
        )
    return failures


def _render(payload: dict[str, object]) -> str:
    rows = []
    for backend in payload["backends"]:
        point = _deepest(backend)
        rows.append([
            backend["label"],
            f"{backend['records']:,}",
            f"{backend['ingest_records_per_sec']:,.0f}",
            f"{point['recall']:.4f}",
            f"{point['candidates_per_record']:.1f}",
            f"{point['candidates']:,}",
        ])
    return format_table(
        ["backend", "records", "ingest rec/s", "recall",
         "cand/record", "cand pairs"],
        rows,
        title=(
            f"Blocking at scale (synthetic dedup corpus, "
            f"{payload['records']:,} records, "
            f"{payload['true_pairs']:,} true pairs; token capped at "
            f"{payload['token_cap']:,} records)"
        ),
    )


def test_blocking_scale(benchmark):
    payload = benchmark.pedantic(
        lambda: run_blocking_scale(SMOKE_RECORDS, SMOKE_RECORDS),
        rounds=1, iterations=1,
    )
    assert not check_smoke(payload)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small CI workload ({SMOKE_RECORDS:,} records instead of "
        f"{FULL_RECORDS:,})",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        payload = run_blocking_scale(SMOKE_RECORDS, SMOKE_RECORDS)
    else:
        payload = run_blocking_scale(FULL_RECORDS, TOKEN_CAP)
    failures = check_smoke(payload)
    for failure in failures:
        print(f"bench_blocking_scale: {failure}")
    if not args.smoke:
        # The checked-in results come from the full corpus only; smoke
        # runs are a CI gate, not a measurement.
        emit_json("bench_blocking_scale", payload)
        emit("bench_blocking_scale", _render(payload))
    else:
        print(_render(payload))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
