"""Extension: entity-resolution throughput and short-circuit savings.

A dedup workload (the record collections behind an abt-buy split) runs
through the full resolution pipeline — blocking, engine decisions,
transitive-closure clustering — under both blocking backends (the
shared-token inverted index and the MinHash/LSH top-k blocker from
``repro.index``), each twice: once deciding every candidate pair, once
with cluster-aware short-circuiting (pairs whose endpoints earlier
decisions already co-clustered are skipped before they cost an engine
call).  For every backend the benchmark asserts the exhaustive and
short-circuited runs produce the *identical* clustering and reports
candidate volume, records/sec, and the engine-call saving.

Runs standalone (CI smoke) or under pytest-benchmark::

    PYTHONPATH=src python -m benchmarks.bench_resolve --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_resolve.py -q
"""

from __future__ import annotations

import argparse
import time

from repro.blocking import TokenBlocker
from repro.datasets.registry import load_dataset
from repro.datasets.schema import Split
from repro.engine import MatchingEngine
from repro.eval.reports import format_table
from repro.index import MinHashBlocker
from repro.resolve import cluster_scores, gold_clustering, resolve_blocking, split_records

from benchmarks._output import emit, emit_json

MODEL = "llama-3.1-8b"
FULL_PAIRS = 400
SMOKE_PAIRS = 120
#: MinHash blocking operating point for this workload: k deep enough to
#: cover abt-buy's near-duplicates, solver threshold loose enough for
#: its noisy descriptions.
MINHASH_K = 10
MINHASH_THRESHOLD = 0.35


def _workload(pairs: int) -> Split:
    return Split(
        name="abt-buy-dedup",
        pairs=load_dataset("abt-buy").test.pairs[:pairs],
    )


def _blockers() -> tuple[tuple[str, object], ...]:
    return (
        ("token", TokenBlocker()),
        ("minhash", MinHashBlocker(k=MINHASH_K, threshold=MINHASH_THRESHOLD)),
    )


def run_resolution(pairs: int) -> dict[str, object]:
    """Resolve the workload per blocker, exhaustively and short-circuited."""
    split = _workload(pairs)
    left, right = split_records(split)
    gold = gold_clustering(split)

    payload: dict[str, object] = {
        "model": MODEL,
        "pairs": pairs,
        "minhash_k": MINHASH_K,
        "minhash_threshold": MINHASH_THRESHOLD,
        "blockers": {},
    }
    for name, blocker in _blockers():
        blocking = blocker.block(left, right)
        runs: dict[bool, dict[str, object]] = {}
        for short_circuit in (False, True):
            engine = MatchingEngine.for_model(MODEL)
            # Warm process-global lazy state (tokenizer/embedding
            # tables) so the first timed run is not charged for
            # one-off setup.
            engine.match_pair(
                left[0].description, right[0].description
            )
            engine.reset_stats()
            started = time.perf_counter()
            report = resolve_blocking(
                engine, blocking, short_circuit=short_circuit
            )
            elapsed = time.perf_counter() - started
            runs[short_circuit] = {
                "report": report,
                "seconds": elapsed,
                "stats": engine.stats,
            }

        exhaustive = runs[False]["report"]
        shortcut = runs[True]["report"]
        # The acceptance bar: skipping co-clustered pairs must not
        # change the final clustering, only the number of engine calls.
        assert shortcut.clustering == exhaustive.clustering
        assert (
            shortcut.engine_calls + shortcut.short_circuited
            == exhaustive.engine_calls
        )

        records = len(shortcut.clustering.elements)
        saving = (
            shortcut.short_circuited / exhaustive.engine_calls
            if exhaustive.engine_calls
            else 0.0
        )
        scores = cluster_scores(shortcut.clustering, gold)
        payload["blockers"][name] = {
            "records": records,
            "candidates": len(blocking.candidates),
            "clusters": len(shortcut.clustering),
            "exhaustive_engine_calls": exhaustive.engine_calls,
            "short_circuit_engine_calls": shortcut.engine_calls,
            "short_circuited": shortcut.short_circuited,
            "engine_call_saving": round(saving, 4),
            "exhaustive_records_per_sec": round(
                records / runs[False]["seconds"], 1
            ),
            "short_circuit_records_per_sec": round(
                records / runs[True]["seconds"], 1
            ),
            "cluster_scores": scores.as_dict(),
            "engine_stats": runs[True]["stats"].as_dict(),
        }
    return payload


def _render(payload: dict[str, object]) -> str:
    rows = []
    for name, result in payload["blockers"].items():
        rows.append([
            name, "exhaustive", f"{result['candidates']:,}",
            f"{result['exhaustive_engine_calls']:,}",
            f"{result['exhaustive_records_per_sec']:,.0f}", "—",
        ])
        rows.append([
            name, "short-circuit", f"{result['candidates']:,}",
            f"{result['short_circuit_engine_calls']:,}",
            f"{result['short_circuit_records_per_sec']:,.0f}",
            f"{result['engine_call_saving']:.1%}",
        ])
    token = payload["blockers"]["token"]
    return format_table(
        ["blocker", "path", "candidates", "engine calls", "records/sec",
         "calls saved"],
        rows,
        title=(
            f"Entity resolution ({MODEL}, {token['records']} records; "
            f"short-circuiting preserves each blocker's clustering)"
        ),
    )


def test_resolve_short_circuit(benchmark):
    payload = benchmark.pedantic(
        lambda: run_resolution(SMOKE_PAIRS), rounds=1, iterations=1
    )
    # The optimisation must engage on the dense token candidate graph;
    # minhash's top-k graph is deliberately sparse and only develops
    # redundant (co-clustered) pairs at the full workload size.
    assert payload["blockers"]["token"]["short_circuited"] > 0
    emit_json("bench_resolve", payload)
    emit("bench_resolve", _render(payload))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small CI workload ({SMOKE_PAIRS} pairs instead of {FULL_PAIRS})",
    )
    args = parser.parse_args(argv)
    payload = run_resolution(SMOKE_PAIRS if args.smoke else FULL_PAIRS)
    if payload["blockers"]["token"]["short_circuited"] == 0:
        print("bench_resolve: short-circuiting never engaged (token)")
        return 1
    emit_json("bench_resolve", payload)
    emit("bench_resolve", _render(payload))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
