"""Durability: sharded recovery time — full journal replay vs snapshot.

One journal-writer **process per shard** (``multiprocessing`` fork, the
deployment shape the sharded store is built for) ingests a seeded
synthetic corpus routed by blocking key, each worker journaling — and,
in the snapshot variants, compacting — its own shard independently.
The parent then measures :meth:`ShardedResolutionStore.recover` wall
time over the resulting directory at three snapshot coverages of the
same corpus:

* ``replay``   — no snapshot: recovery replays the full journal history.
* ``half``     — each shard compacted halfway through ingest: recovery
  loads the snapshot and replays only the second half of the history.
* ``snapshot`` — each shard compacted at the end: recovery loads live
  state and replays a near-empty suffix.

Recovery cost therefore tracks the journal *suffix past the snapshot*,
not the total history: the ``snapshot`` row stays near the live-state
floor as history grows, while ``replay`` grows with every entry ever
journaled.  Every recovery is verified byte-identical (clusters and
golden records) against an unsharded uninterrupted reference before its
timing is reported.  The smoke gate asserts snapshot recovery is ≥3×
faster than full replay.

Runs standalone (CI smoke) or under pytest-benchmark::

    PYTHONPATH=src python -m benchmarks.bench_shard_recovery --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_shard_recovery.py -q
"""

from __future__ import annotations

import argparse
import multiprocessing
import tempfile
import time
from pathlib import Path

from repro.engine.engine import MatchingEngine
from repro.engine.retry import RetryPolicy
from repro.eval.reports import format_table
from repro.faults.harness import (
    ParityBackend,
    resolution_snapshot,
    synthetic_records,
)
from repro.resolve.incremental import ResolutionStore, TokenCandidateIndex
from repro.resolve.sharded import (
    ShardedResolutionStore,
    route_record,
    shard_journal_path,
)

from benchmarks._output import emit, emit_json

SHARDS = 4
SEED = 0
FULL_SCALES = (240, 480, 960)
SMOKE_SCALES = (240,)
COVERAGES = (("replay", 0.0), ("half", 0.5), ("snapshot", 1.0))
TRIALS = 5
GATE_RATIO = 3.0


def _engine() -> MatchingEngine:
    return MatchingEngine(
        backend=ParityBackend(),
        retry=RetryPolicy(timeout=1.0, seed=SEED),
    )


def _ingest_shard_worker(
    directory: str, shard: int, shards: int,
    record_count: int, seed: int, compact_at: int,
) -> None:
    """One shard's journal-writer process: ingest its routed subset.

    Workers share no state — each owns exactly one journal file — so the
    only cross-process contract is the routing function.  ``compact_at``
    records (of the *global* corpus position) triggers this shard's own
    mid-run compaction; 0 disables it.
    """
    router = TokenCandidateIndex()
    store = ResolutionStore(
        _engine(),
        index=TokenCandidateIndex(),
        journal=shard_journal_path(directory, shard),
        journal_meta={"shard": shard, "shards": shards},
    )
    try:
        for position, record in enumerate(
            synthetic_records(record_count, seed=seed)
        ):
            if compact_at and position == compact_at:
                store.compact()
            if shard in route_record(record, shards, router):
                store.ingest(record)
    finally:
        store.close()


def _build_directory(
    directory: Path, record_count: int, coverage: float,
) -> None:
    """Multi-process ingest into *directory*, then one settling recovery.

    The settle pass delivers the cross-shard must-links the independent
    writer processes could not exchange and journals them, so the timed
    recoveries below all start from the same caught-up on-disk state a
    single-process run would have left behind.  Full coverage compacts
    *inside* the settle pass — after those deliveries — so the snapshot
    really covers the final state and the replay suffix is empty.
    """
    compact_at = int(record_count * coverage) if 0.0 < coverage < 1.0 else 0
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(
            target=_ingest_shard_worker,
            args=(
                str(directory), shard, SHARDS,
                record_count, SEED, compact_at,
            ),
        )
        for shard in range(SHARDS)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
        if worker.exitcode != 0:
            raise RuntimeError(
                f"shard ingest worker exited with {worker.exitcode}"
            )
    with ShardedResolutionStore.recover(
        directory, _engine(), shards=SHARDS
    ) as store:
        if coverage >= 1.0:
            store.compact()


def _reference(record_count: int) -> dict:
    """Clusters and golden records of an unsharded uninterrupted run."""
    with ResolutionStore(_engine()) as store:
        store.ingest_all(synthetic_records(record_count, seed=SEED))
        return resolution_snapshot(store)


def _journal_entries(directory: Path) -> int:
    return sum(
        max(len(path.read_bytes().splitlines()) - 1, 0)
        for path in directory.glob("shard-*.journal")
    )


def _timed_recovery(directory: Path, reference: dict, trials: int) -> float:
    """Best-of-*trials* wall time of one full sharded recovery (seconds)."""
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        store = ShardedResolutionStore.recover(
            directory, _engine(), shards=SHARDS
        )
        elapsed = time.perf_counter() - start
        try:
            recovered = resolution_snapshot(store)
        finally:
            store.close()
        assert recovered["clusters"] == reference["clusters"]
        assert recovered["golden"] == reference["golden"]
        best = min(best, elapsed)
    return best


def run_recovery_sweep(
    scales: tuple = FULL_SCALES, trials: int = TRIALS
) -> dict:
    """Recovery time per (history length × snapshot coverage) cell."""
    rows: list[dict] = []
    for record_count in scales:
        reference = _reference(record_count)
        by_coverage: dict[str, float] = {}
        entries: dict[str, int] = {}
        for label, coverage in COVERAGES:
            with tempfile.TemporaryDirectory() as tmp:
                directory = Path(tmp)
                _build_directory(directory, record_count, coverage)
                entries[label] = _journal_entries(directory)
                by_coverage[label] = _timed_recovery(
                    directory, reference, trials
                )
        rows.append(
            {
                "records": record_count,
                "journal_entries": entries["replay"],
                "suffix_entries": entries,
                "recover_s": {k: round(v, 4) for k, v in by_coverage.items()},
                "speedup_snapshot": round(
                    by_coverage["replay"] / by_coverage["snapshot"], 2
                ),
                "speedup_half": round(
                    by_coverage["replay"] / by_coverage["half"], 2
                ),
            }
        )
    return {
        "shards": SHARDS,
        "seed": SEED,
        "trials": trials,
        "gate_ratio": GATE_RATIO,
        "rows": rows,
    }


def _render(payload: dict) -> str:
    rows = []
    for row in payload["rows"]:
        recover = row["recover_s"]
        rows.append(
            [
                row["records"],
                row["journal_entries"],
                f"{recover['replay'] * 1000:.1f}",
                f"{recover['half'] * 1000:.1f}",
                f"{recover['snapshot'] * 1000:.1f}",
                f"{row['speedup_snapshot']:.2f}x",
            ]
        )
    return format_table(
        ["records", "history", "replay ms", "half ms", "snapshot ms",
         "speedup"],
        rows,
        title=(
            f"Sharded recovery vs journal history "
            f"({payload['shards']} shards, one writer process per shard, "
            f"best of {payload['trials']})"
        ),
    )


def test_snapshot_recovery_speedup(benchmark):
    payload = benchmark.pedantic(
        lambda: run_recovery_sweep(SMOKE_SCALES), rounds=1, iterations=1
    )
    assert payload["rows"][0]["speedup_snapshot"] >= GATE_RATIO
    emit_json("bench_shard_recovery", payload)
    emit("bench_shard_recovery", _render(payload))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            f"small CI workload (scales {SMOKE_SCALES} instead of "
            f"{FULL_SCALES}) with the ≥{GATE_RATIO:.0f}x snapshot gate"
        ),
    )
    args = parser.parse_args(argv)
    payload = run_recovery_sweep(SMOKE_SCALES if args.smoke else FULL_SCALES)
    gate = payload["rows"][0]["speedup_snapshot"]
    emit_json("bench_shard_recovery", payload)
    emit("bench_shard_recovery", _render(payload))
    if gate < GATE_RATIO:
        print(
            f"bench_shard_recovery: snapshot recovery only {gate:.2f}x "
            f"faster than full replay (gate: {GATE_RATIO:.0f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
