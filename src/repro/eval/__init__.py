"""Evaluation: precision/recall/F1 metrics, the evaluator, table rendering."""

from repro.eval.metrics import MatchingScores, confusion, f1_score
from repro.eval.evaluator import evaluate_model, EvaluationResult
from repro.eval.reports import format_table, format_delta

__all__ = [
    "EvaluationResult",
    "MatchingScores",
    "confusion",
    "evaluate_model",
    "f1_score",
    "format_delta",
    "format_table",
]
