"""Running a model over a test split and scoring it."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import Split
from repro.eval.metrics import MatchingScores, f1_score
from repro.llm.model import ChatModel
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate

__all__ = ["EvaluationResult", "evaluate_model"]


@dataclass(frozen=True)
class EvaluationResult:
    """Scores of one model on one split under one prompt."""

    model_name: str
    training_set: str
    split_name: str
    prompt_name: str
    scores: MatchingScores

    @property
    def f1(self) -> float:
        return self.scores.f1


def evaluate_model(
    model: ChatModel,
    split: Split,
    template: PromptTemplate = DEFAULT_PROMPT,
) -> EvaluationResult:
    """Prompt *model* with every pair of *split*, parse answers, score.

    Uses the vectorized prediction path (identical in outcome to prompting
    pair-by-pair through :meth:`ChatModel.complete`; the agreement of the
    two paths is covered by tests).
    """
    labels = np.array(split.labels(), dtype=bool)
    predictions = model.predict_pairs(split.pairs, template)
    return EvaluationResult(
        model_name=model.name,
        training_set=model.training_set,
        split_name=split.name,
        prompt_name=template.name,
        scores=f1_score(labels, predictions),
    )
