"""Running a model over a test split and scoring it.

Long evaluations can be journaled (``journal=`` below): every scored
pair is appended to a crash-safe write-ahead log
(:mod:`repro.faults.journal`) as it is decided, and re-running the same
evaluation against an existing journal replays the finished pairs and
predicts only the remainder — so a run killed at any chunk boundary
resumes to the exact scores an uninterrupted run produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.datasets.schema import Split
from repro.eval.metrics import MatchingScores, f1_score
from repro.llm.model import ChatModel
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.engine.engine import MatchingEngine

__all__ = ["EvaluationResult", "evaluate_model"]


@dataclass(frozen=True)
class EvaluationResult:
    """Scores of one model on one split under one prompt."""

    model_name: str
    training_set: str
    split_name: str
    prompt_name: str
    scores: MatchingScores

    @property
    def f1(self) -> float:
        return self.scores.f1


def evaluate_model(
    model: ChatModel,
    split: Split,
    template: PromptTemplate = DEFAULT_PROMPT,
    engine: "MatchingEngine | None" = None,
    journal: "str | Path | None" = None,
    journal_chunk: int = 32,
) -> EvaluationResult:
    """Prompt *model* with every pair of *split*, parse answers, score.

    By default uses the vectorized prediction path (identical in outcome to
    prompting pair-by-pair through :meth:`ChatModel.complete`; the agreement
    of the two paths is covered by tests).  When *engine* is given, pairs
    are routed through the online :class:`~repro.engine.MatchingEngine`
    instead — batched, cached, retry-hardened — which is test-verified to
    produce pair-for-pair identical predictions when the engine wraps the
    same model and prompt template.

    When *journal* is given, per-pair decisions are write-ahead logged in
    chunks of *journal_chunk* and a killed run resumes from the same path
    (see module docstring).  The journal header pins the split, model,
    and prompt, so a journal cannot be replayed into the wrong evaluation.
    """
    labels = np.array(split.labels(), dtype=bool)
    if engine is not None and engine.template.name != template.name:
        raise ValueError(
            f"engine renders prompt {engine.template.name!r} but the "
            f"evaluation requested {template.name!r}"
        )
    if journal is not None:
        predictions = _journaled_predictions(
            model, split, template, engine, Path(journal), journal_chunk
        )
    elif engine is not None:
        predictions = engine.predict_split(split)
    else:
        predictions = model.predict_pairs(split.pairs, template)
    return EvaluationResult(
        model_name=model.name,
        training_set=model.training_set,
        split_name=split.name,
        prompt_name=template.name,
        scores=f1_score(labels, predictions),
    )


def _journaled_predictions(
    model: ChatModel,
    split: Split,
    template: PromptTemplate,
    engine: "MatchingEngine | None",
    path: Path,
    chunk_size: int,
) -> np.ndarray:
    """Predict *split* with a write-ahead journal, resuming if one exists."""
    # Imported lazily: the journal is pure stdlib, but pulling in the
    # repro.faults package at module scope would cycle through the chaos
    # harness, which imports the engine and resolution layers.
    from repro.faults.journal import JournalError, JournalWriter, read_journal, repair

    if chunk_size <= 0:
        raise ValueError("journal_chunk must be positive")
    header = {
        "kind": "eval",
        "split": split.name,
        "model": model.name,
        "prompt": template.name,
        "pairs": len(split.pairs),
    }
    done: dict[int, bool] = {}
    if path.exists() and path.stat().st_size:
        entries, _ = read_journal(path, expect=header)
        repair(path)
        for entry in entries:
            if entry.get("type") != "prediction":
                raise JournalError(
                    f"{path}: unexpected journal entry type "
                    f"{entry.get('type')!r} in an eval journal"
                )
            done[int(entry["index"])] = bool(entry["decision"])
    missing = [i for i in range(len(split.pairs)) if i not in done]
    with JournalWriter(path, header=header) as writer:
        for start in range(0, len(missing), chunk_size):
            chunk = missing[start : start + chunk_size]
            pairs = [split.pairs[i] for i in chunk]
            if engine is not None:
                decisions = [r.decision for r in engine.match_pairs(pairs)]
            else:
                decisions = [bool(d) for d in model.predict_pairs(pairs, template)]
            # Journal the chunk only after every decision in it exists:
            # a crash mid-chunk re-predicts the whole chunk on resume.
            for index, decision in zip(chunk, decisions):
                writer.append(
                    {
                        "type": "prediction",
                        "index": index,
                        "pair_id": split.pairs[index].pair_id,
                        "decision": bool(decision),
                    }
                )
                done[index] = bool(decision)
    return np.array([done[i] for i in range(len(split.pairs))], dtype=bool)
