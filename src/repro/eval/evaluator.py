"""Running a model over a test split and scoring it."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.datasets.schema import Split
from repro.eval.metrics import MatchingScores, f1_score
from repro.llm.model import ChatModel
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.engine.engine import MatchingEngine

__all__ = ["EvaluationResult", "evaluate_model"]


@dataclass(frozen=True)
class EvaluationResult:
    """Scores of one model on one split under one prompt."""

    model_name: str
    training_set: str
    split_name: str
    prompt_name: str
    scores: MatchingScores

    @property
    def f1(self) -> float:
        return self.scores.f1


def evaluate_model(
    model: ChatModel,
    split: Split,
    template: PromptTemplate = DEFAULT_PROMPT,
    engine: "MatchingEngine | None" = None,
) -> EvaluationResult:
    """Prompt *model* with every pair of *split*, parse answers, score.

    By default uses the vectorized prediction path (identical in outcome to
    prompting pair-by-pair through :meth:`ChatModel.complete`; the agreement
    of the two paths is covered by tests).  When *engine* is given, pairs
    are routed through the online :class:`~repro.engine.MatchingEngine`
    instead — batched, cached, retry-hardened — which is test-verified to
    produce pair-for-pair identical predictions when the engine wraps the
    same model and prompt template.
    """
    labels = np.array(split.labels(), dtype=bool)
    if engine is not None:
        if engine.template.name != template.name:
            raise ValueError(
                f"engine renders prompt {engine.template.name!r} but the "
                f"evaluation requested {template.name!r}"
            )
        predictions = engine.predict_split(split)
    else:
        predictions = model.predict_pairs(split.pairs, template)
    return EvaluationResult(
        model_name=model.name,
        training_set=model.training_set,
        split_name=split.name,
        prompt_name=template.name,
        scores=f1_score(labels, predictions),
    )
