"""Matching metrics: precision, recall, F1 (reported as percentages).

F1 of the positive (match) class, following the standard evaluation
protocol of the entity-matching literature that the paper adopts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MatchingScores", "confusion", "f1_score"]


@dataclass(frozen=True)
class MatchingScores:
    """Precision / recall / F1 in percent, plus the confusion counts."""

    precision: float
    recall: float
    f1: float
    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        if total == 0:
            return 0.0
        return 100.0 * (self.tp + self.tn) / total


def confusion(
    labels: np.ndarray, predictions: np.ndarray
) -> tuple[int, int, int, int]:
    """(tp, fp, fn, tn) for boolean label/prediction arrays."""
    labels = np.asarray(labels, dtype=bool)
    predictions = np.asarray(predictions, dtype=bool)
    if labels.shape != predictions.shape:
        raise ValueError(
            f"labels shape {labels.shape} != predictions shape {predictions.shape}"
        )
    tp = int(np.sum(labels & predictions))
    fp = int(np.sum(~labels & predictions))
    fn = int(np.sum(labels & ~predictions))
    tn = int(np.sum(~labels & ~predictions))
    return tp, fp, fn, tn


def f1_score(labels: np.ndarray, predictions: np.ndarray) -> MatchingScores:
    """Positive-class precision/recall/F1 (in percent)."""
    tp, fp, fn, tn = confusion(labels, predictions)
    precision = 100.0 * tp / (tp + fp) if (tp + fp) else 0.0
    recall = 100.0 * tp / (tp + fn) if (tp + fn) else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    return MatchingScores(
        precision=precision, recall=recall, f1=f1, tp=tp, fp=fp, fn=fn, tn=tn
    )
