"""Rendering result tables in the paper's style.

The paper reports F1 with deltas against a reference row in parentheses,
e.g. ``87.34 (+30.77)``.  These helpers format individual cells and whole
tables as aligned ASCII suitable for benchmark output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_delta", "format_table", "format_percent"]


def format_delta(value: float, reference: float | None) -> str:
    """``87.34 (+30.77)`` — F1 with the delta to a reference value."""
    if reference is None:
        return f"{value:.2f}"
    delta = value - reference
    return f"{value:.2f} ({delta:+.2f})"


def format_percent(value: float | None) -> str:
    """Transfer-gain style percentage cell (``72%`` / ``-`` for absent)."""
    if value is None:
        return "-"
    return f"{round(value * 100):d}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_mapping(title: str, mapping: Mapping[str, object]) -> str:
    """Simple two-column key/value table."""
    return format_table(
        ["key", "value"], [[k, v] for k, v in mapping.items()], title=title
    )
