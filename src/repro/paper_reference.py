"""The paper's reported results, verbatim.

Reference values transcribed from Steiner, Peeters & Bizer: Table 1
(dataset statistics), Table 2 (standard fine-tuning), §3.3 (prompt
sensitivity), Table 3 (explanation representations), Table 4 (training-set
sizes after filtration/generation) and Table 5 (selection & generation).

Benchmarks print these next to the reproduction's measurements;
EXPERIMENTS.md records the comparison.  Column keys use the repository's
dataset names; ``wdc`` refers to the shared WDC test set.
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE2_GAINS",
    "TABLE3",
    "TABLE3_GAINS",
    "TABLE4",
    "TABLE5",
    "TABLE5_GAINS",
    "SENSITIVITY",
    "EVAL_COLUMNS",
]

#: Evaluation columns in paper order.
EVAL_COLUMNS = (
    "abt-buy", "amazon-google", "walmart-amazon", "wdc", "dblp-acm", "dblp-scholar"
)

#: Table 1 — (positives, negatives) per split.
TABLE1 = {
    "wdc-small": {"train": (500, 2000), "valid": (500, 2000), "test": (500, 4000)},
    "wdc-medium": {"train": (1500, 4500), "valid": (500, 3000), "test": (500, 4000)},
    "wdc-large": {"train": (8471, 11364), "valid": (500, 4000), "test": (500, 4000)},
    "abt-buy": {"train": (822, 6837), "valid": (206, 1710), "test": (206, 1710)},
    "amazon-google": {"train": (933, 8234), "valid": (234, 2059), "test": (234, 2059)},
    "walmart-amazon": {"train": (769, 7424), "valid": (193, 1856), "test": (193, 1856)},
    "dblp-scholar": {"train": (4277, 18688), "valid": (1070, 4672), "test": (1070, 4672)},
    "dblp-acm": {"train": (1776, 8114), "valid": (444, 2029), "test": (444, 2029)},
}

#: Table 2 — F1 per (model, training set) row over the six test sets.
TABLE2 = {
    ("llama-3.1-8b", "zero-shot"):
        {"abt-buy": 56.57, "amazon-google": 49.16, "walmart-amazon": 42.04,
         "wdc": 53.36, "dblp-acm": 85.52, "dblp-scholar": 67.69},
    ("llama-3.1-8b", "abt-buy"):
        {"abt-buy": 87.34, "amazon-google": 59.16, "walmart-amazon": 60.39,
         "wdc": 66.07, "dblp-acm": 79.60, "dblp-scholar": 42.89},
    ("llama-3.1-8b", "amazon-google"):
        {"abt-buy": 67.48, "amazon-google": 50.00, "walmart-amazon": 44.73,
         "wdc": 39.53, "dblp-acm": 76.28, "dblp-scholar": 60.89},
    ("llama-3.1-8b", "walmart-amazon"):
        {"abt-buy": 86.24, "amazon-google": 60.41, "walmart-amazon": 65.65,
         "wdc": 57.80, "dblp-acm": 71.71, "dblp-scholar": 51.19},
    ("llama-3.1-8b", "wdc-small"):
        {"abt-buy": 81.78, "amazon-google": 52.29, "walmart-amazon": 53.74,
         "wdc": 69.19, "dblp-acm": 74.52, "dblp-scholar": 67.40},
    ("llama-3.1-8b", "dblp-acm"):
        {"abt-buy": 58.02, "amazon-google": 49.66, "walmart-amazon": 40.82,
         "wdc": 39.63, "dblp-acm": 97.42, "dblp-scholar": 79.56},
    ("llama-3.1-8b", "dblp-scholar"):
        {"abt-buy": 65.71, "amazon-google": 46.22, "walmart-amazon": 42.35,
         "wdc": 52.00, "dblp-acm": 96.70, "dblp-scholar": 92.95},
    ("gpt-4o-mini", "zero-shot"):
        {"abt-buy": 87.68, "amazon-google": 59.20, "walmart-amazon": 65.06,
         "wdc": 81.61, "dblp-acm": 94.16, "dblp-scholar": 87.96},
    ("gpt-4o-mini", "abt-buy"):
        {"abt-buy": 94.09, "amazon-google": 67.18, "walmart-amazon": 68.81,
         "wdc": 82.69, "dblp-acm": 96.94, "dblp-scholar": 88.85},
    ("gpt-4o-mini", "amazon-google"):
        {"abt-buy": 83.51, "amazon-google": 80.25, "walmart-amazon": 68.97,
         "wdc": 73.99, "dblp-acm": 96.28, "dblp-scholar": 85.60},
    ("gpt-4o-mini", "walmart-amazon"):
        {"abt-buy": 92.08, "amazon-google": 67.50, "walmart-amazon": 78.85,
         "wdc": 78.52, "dblp-acm": 95.58, "dblp-scholar": 86.97},
    ("gpt-4o-mini", "wdc-small"):
        {"abt-buy": 91.44, "amazon-google": 64.11, "walmart-amazon": 68.92,
         "wdc": 84.38, "dblp-acm": 85.35, "dblp-scholar": 76.33},
    ("gpt-4o-mini", "dblp-acm"):
        {"abt-buy": 88.94, "amazon-google": 67.32, "walmart-amazon": 67.51,
         "wdc": 81.34, "dblp-acm": 99.10, "dblp-scholar": 89.93},
    ("gpt-4o-mini", "dblp-scholar"):
        {"abt-buy": 89.76, "amazon-google": 65.71, "walmart-amazon": 68.46,
         "wdc": 70.87, "dblp-acm": 95.36, "dblp-scholar": 96.22},
    ("llama-3.1-70b", "zero-shot"):
        {"abt-buy": 79.12, "amazon-google": 51.44, "walmart-amazon": 55.62,
         "wdc": 75.19, "dblp-acm": 80.50, "dblp-scholar": 69.47},
    ("llama-3.1-70b", "wdc-small"):
        {"abt-buy": 77.94, "amazon-google": 55.36, "walmart-amazon": 60.56,
         "wdc": 72.66, "dblp-acm": 69.90, "dblp-scholar": 63.85},
    ("gpt-4o", "zero-shot"):
        {"abt-buy": 92.20, "amazon-google": 63.45, "walmart-amazon": 70.67,
         "wdc": 81.64, "dblp-acm": 87.18, "dblp-scholar": 74.59},
    ("gpt-4o", "wdc-small"):
        {"abt-buy": 91.99, "amazon-google": 65.12, "walmart-amazon": 68.55,
         "wdc": 87.07, "dblp-acm": 89.27, "dblp-scholar": 80.74},
}

#: Table 2 — (product transfer gain, scholar transfer gain) per row, in %.
TABLE2_GAINS = {
    ("llama-3.1-8b", "abt-buy"): (102, -83),
    ("llama-3.1-8b", "amazon-google"): (-1, -43),
    ("llama-3.1-8b", "walmart-amazon"): (96, -82),
    ("llama-3.1-8b", "wdc-small"): (72, -30),
    ("llama-3.1-8b", "dblp-acm"): (-20, 47),
    ("llama-3.1-8b", "dblp-scholar"): (7, 94),
    ("gpt-4o-mini", "abt-buy"): (35, 28),
    ("gpt-4o-mini", "amazon-google"): (-36, -2),
    ("gpt-4o-mini", "walmart-amazon"): (33, 3),
    ("gpt-4o-mini", "wdc-small"): (9, -155),
    ("gpt-4o-mini", "dblp-acm"): (27, 24),
    ("gpt-4o-mini", "dblp-scholar"): (3, 24),
}

#: §3.3 prompt sensitivity (std of F1 across the four prompts).
SENSITIVITY = {
    ("llama-3.1-8b", "zero-shot"): 15.76,
    ("llama-3.1-8b", "fine-tuned-non-transfer"): 1.87,
    ("llama-3.1-8b", "fine-tuned-all"): 3.54,
    ("gpt-4o-mini", "zero-shot"): 2.72,
    ("gpt-4o-mini", "fine-tuned-non-transfer"): 0.26,
    ("gpt-4o-mini", "fine-tuned-all"): 1.31,
}

#: Table 3 — explanation fine-tuning (training sets per model; WDC = source).
TABLE3 = {
    ("llama-3.1-8b", "zero-shot"):
        {"wdc": 53.36, "abt-buy": 56.57, "amazon-google": 49.16,
         "walmart-amazon": 42.04, "dblp-acm": 85.52, "dblp-scholar": 67.69},
    ("llama-3.1-8b", "wdc-small"):
        {"wdc": 69.19, "abt-buy": 81.78, "amazon-google": 52.29,
         "walmart-amazon": 53.74, "dblp-acm": 74.52, "dblp-scholar": 67.40},
    ("llama-3.1-8b", "long-textual"):
        {"wdc": 70.67, "abt-buy": 83.33, "amazon-google": 45.95,
         "walmart-amazon": 46.53, "dblp-acm": 51.11, "dblp-scholar": 47.92},
    ("llama-3.1-8b", "wadhwa"):
        {"wdc": 73.20, "abt-buy": 79.00, "amazon-google": 50.30,
         "walmart-amazon": 48.90, "dblp-acm": 69.14, "dblp-scholar": 63.35},
    ("llama-3.1-8b", "no-imp-sim"):
        {"wdc": 73.58, "abt-buy": 85.25, "amazon-google": 52.56,
         "walmart-amazon": 55.76, "dblp-acm": 55.55, "dblp-scholar": 51.14},
    ("llama-3.1-8b", "no-importance"):
        {"wdc": 73.82, "abt-buy": 84.82, "amazon-google": 54.26,
         "walmart-amazon": 60.00, "dblp-acm": 86.06, "dblp-scholar": 69.19},
    ("llama-3.1-8b", "structured"):
        {"wdc": 74.13, "abt-buy": 86.89, "amazon-google": 51.84,
         "walmart-amazon": 59.32, "dblp-acm": 79.88, "dblp-scholar": 63.67},
    ("gpt-4o-mini", "zero-shot"):
        {"wdc": 81.61, "abt-buy": 87.68, "amazon-google": 59.20,
         "walmart-amazon": 65.06, "dblp-acm": 94.16, "dblp-scholar": 87.96},
    ("gpt-4o-mini", "wdc-small"):
        {"wdc": 83.41, "abt-buy": 90.45, "amazon-google": 62.29,
         "walmart-amazon": 67.45, "dblp-acm": 85.35, "dblp-scholar": 76.33},
    ("gpt-4o-mini", "long-textual"):
        {"wdc": 81.30, "abt-buy": 88.94, "amazon-google": 61.37,
         "walmart-amazon": 64.23, "dblp-acm": 89.75, "dblp-scholar": 88.10},
    ("gpt-4o-mini", "wadhwa"):
        {"wdc": 80.81, "abt-buy": 84.12, "amazon-google": 59.03,
         "walmart-amazon": 64.19, "dblp-acm": 93.18, "dblp-scholar": 87.77},
    ("gpt-4o-mini", "no-imp-sim"):
        {"wdc": 81.04, "abt-buy": 90.95, "amazon-google": 61.30,
         "walmart-amazon": 66.40, "dblp-acm": 92.80, "dblp-scholar": 85.73},
    ("gpt-4o-mini", "no-importance"):
        {"wdc": 83.17, "abt-buy": 90.26, "amazon-google": 60.71,
         "walmart-amazon": 65.09, "dblp-acm": 90.51, "dblp-scholar": 84.82},
    ("gpt-4o-mini", "structured"):
        {"wdc": 84.38, "abt-buy": 91.44, "amazon-google": 64.11,
         "walmart-amazon": 68.92, "dblp-acm": 88.87, "dblp-scholar": 79.45},
    ("llama-3.1-70b", "zero-shot"):
        {"wdc": 75.20, "abt-buy": 79.10, "amazon-google": 51.40,
         "walmart-amazon": 55.60, "dblp-acm": 80.50, "dblp-scholar": 69.50},
    ("llama-3.1-70b", "wdc-small"):
        {"wdc": 72.70, "abt-buy": 77.90, "amazon-google": 55.40,
         "walmart-amazon": 60.60, "dblp-acm": 69.90, "dblp-scholar": 63.90},
    ("llama-3.1-70b", "structured"):
        {"wdc": 76.70, "abt-buy": 84.80, "amazon-google": 52.80,
         "walmart-amazon": 65.80, "dblp-acm": 70.10, "dblp-scholar": 62.10},
    ("gpt-4o", "zero-shot"):
        {"wdc": 81.60, "abt-buy": 92.20, "amazon-google": 63.45,
         "walmart-amazon": 70.67, "dblp-acm": 87.18, "dblp-scholar": 74.59},
    ("gpt-4o", "wdc-small"):
        {"wdc": 87.10, "abt-buy": 92.00, "amazon-google": 65.10,
         "walmart-amazon": 68.50, "dblp-acm": 89.27, "dblp-scholar": 80.74},
    ("gpt-4o", "structured"):
        {"wdc": 83.20, "abt-buy": 90.60, "amazon-google": 62.80,
         "walmart-amazon": 66.50, "dblp-acm": 84.69, "dblp-scholar": 74.90},
}

#: Table 3 — (in-domain transfer gain, cross-domain transfer gain) in %.
TABLE3_GAINS = {
    ("llama-3.1-8b", "wdc-small"): (72, -30),
    ("llama-3.1-8b", "long-textual"): (51, -146),
    ("llama-3.1-8b", "wadhwa"): (55, -56),
    ("llama-3.1-8b", "no-imp-sim"): (83, -125),
    ("llama-3.1-8b", "no-importance"): (93, 5),
    ("llama-3.1-8b", "structured"): (91, -26),
    ("gpt-4o-mini", "wdc-small"): (13, -55),
    ("gpt-4o-mini", "long-textual"): (5, -11),
    ("gpt-4o-mini", "wadhwa"): (-14, -3),
    ("gpt-4o-mini", "no-imp-sim"): (7, -10),
    ("gpt-4o-mini", "no-importance"): (4, -18),
    ("gpt-4o-mini", "structured"): (23, -37),
}

#: Table 4 — training-set sizes (positives, negatives, total).
TABLE4 = {
    "WDC-small": (500, 2000, 2500),
    "WDC-filtered": (445, 1561, 2006),
    "WDC-filtered-rel": (442, 166, 608),
    "Syn": (4932, 15208, 20140),
    "Syn-filtered": (3264, 10560, 13824),
    "Syn-filtered-rel": (2182, 6718, 8900),
}

#: Table 5 — selection & generation F1 per (model, training set).
TABLE5 = {
    ("llama-3.1-8b", "zero-shot"):
        {"wdc": 53.36, "abt-buy": 56.57, "amazon-google": 49.16,
         "walmart-amazon": 42.04, "dblp-acm": 85.52, "dblp-scholar": 67.69},
    ("llama-3.1-8b", "wdc-small"):
        {"wdc": 69.19, "abt-buy": 81.78, "amazon-google": 52.29,
         "walmart-amazon": 53.74, "dblp-acm": 74.52, "dblp-scholar": 67.40},
    ("llama-3.1-8b", "wdc-medium"):
        {"wdc": 67.45, "abt-buy": 78.80, "amazon-google": 52.93,
         "walmart-amazon": 54.89, "dblp-acm": 75.06, "dblp-scholar": 65.22},
    ("llama-3.1-8b", "wdc-large"):
        {"wdc": 72.13, "abt-buy": 70.06, "amazon-google": 44.89,
         "walmart-amazon": 48.50, "dblp-acm": 78.47, "dblp-scholar": 56.95},
    ("llama-3.1-8b", "wdc-s-filter"):
        {"wdc": 73.92, "abt-buy": 85.12, "amazon-google": 49.47,
         "walmart-amazon": 54.51, "dblp-acm": 80.89, "dblp-scholar": 74.29},
    ("llama-3.1-8b", "wdc-s-filter-rel"):
        {"wdc": 72.37, "abt-buy": 79.43, "amazon-google": 54.73,
         "walmart-amazon": 55.68, "dblp-acm": 76.49, "dblp-scholar": 66.11},
    ("llama-3.1-8b", "syn-filter"):
        {"wdc": 72.54, "abt-buy": 80.98, "amazon-google": 51.25,
         "walmart-amazon": 56.65, "dblp-acm": 68.37, "dblp-scholar": 57.23},
    ("llama-3.1-8b", "syn-filter-rel"):
        {"wdc": 74.04, "abt-buy": 86.00, "amazon-google": 54.73,
         "walmart-amazon": 59.48, "dblp-acm": 75.06, "dblp-scholar": 67.20},
    ("llama-3.1-8b", "wdc-s-err-sel"):
        {"wdc": 74.37, "abt-buy": 85.19, "amazon-google": 52.88,
         "walmart-amazon": 55.80, "dblp-acm": 61.99, "dblp-scholar": 55.32},
    ("gpt-4o-mini", "zero-shot"):
        {"wdc": 77.44, "abt-buy": 85.47, "amazon-google": 57.20,
         "walmart-amazon": 64.03, "dblp-acm": 94.16, "dblp-scholar": 87.96},
    ("gpt-4o-mini", "wdc-small"):
        {"wdc": 83.31, "abt-buy": 90.25, "amazon-google": 62.34,
         "walmart-amazon": 62.42, "dblp-acm": 75.65, "dblp-scholar": 76.33},
    ("gpt-4o-mini", "wdc-s-filter"):
        {"wdc": 77.06, "abt-buy": 81.38, "amazon-google": 44.67,
         "walmart-amazon": 49.84, "dblp-acm": 92.89, "dblp-scholar": 78.34},
    ("gpt-4o-mini", "syn-filter"):
        {"wdc": 76.89, "abt-buy": 84.84, "amazon-google": 60.29,
         "walmart-amazon": 61.67, "dblp-acm": 94.84, "dblp-scholar": 79.32},
}

#: Table 5 — (in-domain transfer gain, cross-domain transfer gain) in %.
TABLE5_GAINS = {
    ("llama-3.1-8b", "wdc-small"): (72, -30),
    ("llama-3.1-8b", "wdc-medium"): (70, -35),
    ("llama-3.1-8b", "wdc-large"): (28, -48),
    ("llama-3.1-8b", "wdc-s-filter"): (75, 5),
    ("llama-3.1-8b", "wdc-s-filter-rel"): (76, -29),
    ("llama-3.1-8b", "syn-filter"): (74, -74),
    ("llama-3.1-8b", "syn-filter-rel"): (97, -29),
    ("llama-3.1-8b", "wdc-s-err-sel"): (83, -97),
    ("gpt-4o-mini", "wdc-small"): (9, -55),
    ("gpt-4o-mini", "wdc-s-filter"): (-61, -29),
    ("gpt-4o-mini", "syn-filter"): (-2, -21),
}
