"""Deep rule: exception types crossing protocol boundaries must be typed.

The engine calls ``Backend.generate`` under ``run_with_retry`` and
catches ``(BackendError, CircuitOpenError)``.  Any other exception type
escaping an implementation's ``generate`` sails past those typed
handlers, skips the fallback path, and kills the calling thread — the
exact bug class this rule exists for (a ``KeyError`` from re-ordering a
batch response by id, a ``ValueError`` from a malformed prompt).

The boundary contract is declarative: :data:`BOUNDARY_CONTRACTS` maps a
(protocol name, method name) pair to the exception base classes an
implementation may let escape.  Matching is by simple class name so the
contract applies to any package defining the same convention (fixtures
included).  Escapes are computed inter-procedurally by
:class:`repro.lint.dataflow.ExceptionAnalysis`, so a leak three helpers
deep is still attributed to the boundary method.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import rule

#: (protocol simple name, method name) → allowed escaping exception bases.
BOUNDARY_CONTRACTS: dict[tuple[str, str], tuple[str, ...]] = {
    ("Backend", "generate"): ("BackendError",),
}


@rule(
    "deep-exception-boundary",
    family="engine",
    scope="project",
    description="untyped exception escaping a protocol boundary method",
)
def check_exception_boundaries(ctx) -> Iterator[Finding]:
    for protocol in ctx.table.classes.values():
        if not protocol.is_protocol:
            continue
        for method_name in protocol.methods:
            allowed = BOUNDARY_CONTRACTS.get((protocol.name, method_name))
            if allowed is None:
                continue
            for impl in ctx.table.protocol_implementations(protocol):
                method = ctx.table.lookup_method(impl.qualname, method_name)
                if method is None:
                    continue
                escapes = ctx.escapes.escapes_of(method.qualname)
                for exc_name, provenance in sorted(escapes.items()):
                    if any(
                        ctx.escapes.is_subclass(exc_name, base)
                        for base in allowed
                    ):
                        continue
                    allowed_text = "/".join(allowed)
                    yield Finding(
                        rule="deep-exception-boundary",
                        severity="error",
                        path=method.relpath,
                        line=method.line,
                        message=(
                            f"{method.qualname} may leak {exc_name} across "
                            f"the {protocol.name}.{method_name} boundary "
                            f"(contract allows {allowed_text}): {provenance}"
                        ),
                        hint=f"catch it inside the implementation and "
                        f"re-raise as a {allowed_text} subclass",
                    )
