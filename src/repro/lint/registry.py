"""Rule registry and the per-file context rules run against.

A rule is a named checker with a scope:

* ``file`` rules receive a :class:`FileContext` (path + source + AST) and
  run once per linted file;
* ``repo`` rules receive the repository root and run once per lint
  invocation — they introspect declared artifacts (prompt templates,
  response phrase tables) rather than walking syntax;
* ``project`` rules receive a :class:`repro.lint.deep.DeepContext`
  (symbol table, call graph, dataflow results) and run only under
  ``repro-em lint --deep`` — they reason across files.

Registration is declarative via :func:`rule`; the CLI's ``--rule`` filter
and the test suite both enumerate :data:`RULES`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.lint.findings import Finding

__all__ = ["FileContext", "Rule", "RULES", "rule", "iter_rules"]


@dataclass
class FileContext:
    """Everything a file-scoped rule needs to inspect one source file."""

    path: Path
    #: path relative to the repo root, POSIX-style — rules scope on this.
    relpath: str
    source: str
    tree: ast.Module
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def from_source(cls, source: str, relpath: str, path: Path | None = None) -> "FileContext":
        tree = ast.parse(source)
        ctx = cls(
            path=path if path is not None else Path(relpath),
            relpath=relpath.replace("\\", "/"),
            source=source,
            tree=tree,
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[child] = parent
        return ctx

    # ------------------------------------------------------------- helpers

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing_function(self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self._parents.get(current)
        return None

    def in_package(self, *fragments: str) -> bool:
        """Whether this file lives under any of the given path fragments."""
        return any(fragment in self.relpath for fragment in fragments)

    def finding(
        self,
        rule_id: str,
        severity: str,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        return Finding(
            rule=rule_id,
            severity=severity,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            message=message,
            hint=hint,
        )


@dataclass(frozen=True)
class Rule:
    """One registered invariant checker."""

    id: str
    family: str
    scope: str  # "file" | "repo" | "project"
    description: str
    check: Callable[..., Iterable[Finding]]

    def __post_init__(self) -> None:
        if self.scope not in ("file", "repo", "project"):
            raise ValueError(
                f"scope must be 'file', 'repo', or 'project', got {self.scope!r}"
            )


RULES: dict[str, Rule] = {}


def rule(id: str, family: str, scope: str, description: str):
    """Register the decorated checker under *id*."""

    def decorate(fn: Callable[..., Iterable[Finding]]):
        if id in RULES:
            raise ValueError(f"duplicate rule id {id!r}")
        RULES[id] = Rule(
            id=id, family=family, scope=scope, description=description, check=fn
        )
        return fn

    return decorate


def iter_rules(ids: Iterable[str] | None = None) -> Iterator[Rule]:
    """Yield the selected rules (all when *ids* is None).

    Raises ``ValueError`` for an unknown id so the CLI can report a usage
    error instead of silently linting nothing.
    """
    if ids is None:
        yield from RULES.values()
        return
    for rule_id in ids:
        try:
            yield RULES[rule_id]
        except KeyError:
            known = ", ".join(sorted(RULES))
            raise ValueError(f"unknown rule {rule_id!r}; known rules: {known}") from None
