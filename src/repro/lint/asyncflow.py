"""Async-aware whole-program analysis: the thread↔loop boundary, checked.

``repro.serve`` made the reproduction an asyncio service whose
correctness rests on invariants the earlier ``--deep`` analyses stop
short of: coroutines must never block the event loop, futures created on
the loop may only be completed through ``call_soon_threadsafe`` from
worker threads, and fields shared between dispatch threads and
coroutines need an explicit happens-before edge.  This module extends
the symbol table / call graph with async metadata and runs three
analyses over it:

**Context classification** (the lattice ``unknown < loop, thread <
both``): coroutine defs and ``call_soon_threadsafe`` callbacks seed
*loop*; ``threading.Thread(target=...)`` targets and callables handed to
``run_in_executor`` / ``asyncio.to_thread`` / ``Executor.submit`` seed
*thread*; the classification of a *sync* function is the join of its
callers' contexts, propagated over resolved call edges to a fixpoint.
Coroutines never leave *loop* — their bodies always run on the owning
event loop, wherever they were created.

**Loop-blocking**: inside every coroutine, any call that transitively
blocks — ``time.sleep``, file I/O, un-awaited ``wait``/``join``/
``acquire``, blocking ``queue.Queue`` operations, or any path reaching a
Protocol-declared I/O method (the sync engine dispatch) — is flagged
unless the work hops to a thread via an executor.  Findings carry the
same provenance chains as the taint analysis: the call site in the
coroutine, the helper hops, and the intrinsic blocker at the end.
Acquiring a *slow* lock (one some other holder blocks under, per
:class:`~repro.lint.locks.LockAnalysis`) is also flagged — a fast
bounded critical section is fine on the loop, a lock held across backend
I/O is not.

**Future discipline**: a future born on the loop (``loop.create_future``
/ ``asyncio.Future()``-typed values) may only be completed
(``set_result`` / ``set_exception``) from loop context; thread-classified
code must route completion through ``call_soon_threadsafe``.  Coroutine
objects must be awaited or handed to a tracking call
(``ensure_future``, ``create_task``, ``gather``, ...) — a discarded or
never-awaited coroutine is dead code that looks like work.

**Thread↔loop happens-before**: a field mutated from thread context and
accessed from loop context (or vice versa) needs a ``guarded_by``
declaration (held-ness is then enforced by ``deep-lock-field``) or a
``call_soon_threadsafe`` hand-off — accesses inside registered
``call_soon_threadsafe`` callbacks are exempt, because the edge itself
establishes the ordering.  Construction (``__init__``/``__post_init__``)
is exempt: it happens-before publication.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph, CallSite, _Resolver
from repro.lint.locks import LockAnalysis
from repro.lint.symbols import FunctionSymbol, SymbolTable

__all__ = [
    "LOOP",
    "THREAD",
    "BOTH",
    "AsyncFlowAnalysis",
    "BlockingFinding",
    "FutureViolation",
    "UnawaitedCoroutine",
    "RaceFinding",
]

LOOP = "loop"
THREAD = "thread"
BOTH = "both"

#: asyncio callables a coroutine object may be handed to and count as
#: tracked (awaited-or-scheduled).
_TASK_FUNCS = frozenset(
    {
        "ensure_future", "create_task", "gather", "wait", "wait_for",
        "shield", "run", "run_until_complete", "run_coroutine_threadsafe",
        "as_completed",
    }
)

#: attribute-call names that block the calling thread when not awaited.
_BLOCKING_ATTRS = frozenset({"sleep", "wait", "wait_for", "join", "acquire"})

#: attribute-call names that are synchronous file/OS I/O.
_BLOCKING_IO_ATTRS = frozenset(
    {"read_text", "write_text", "readlines", "flush", "fsync"}
)

#: container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "pop", "popleft",
        "popitem", "remove", "clear", "add", "discard", "update",
        "setdefault", "put", "put_nowait", "sort", "reverse", "move_to_end",
    }
)

#: construction-time methods exempt from happens-before checks.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class BlockingFinding:
    """One transitively-blocking call inside a coroutine."""

    fn: str
    relpath: str
    line: int
    #: what blocks, with the provenance chain down to the intrinsic cause.
    reason: str


@dataclass
class FutureViolation:
    """A loop-owned future completed from thread-classified context."""

    fn: str
    relpath: str
    line: int
    #: "set_result" | "set_exception"
    method: str
    receiver: str
    context: str


@dataclass
class UnawaitedCoroutine:
    """A coroutine object that is neither awaited nor handed to a task."""

    fn: str
    relpath: str
    line: int
    callee: str
    #: "discarded" (bare expression) | "never-awaited" (dead assignment)
    how: str


@dataclass
class _Access:
    fn: str
    relpath: str
    line: int
    context: str
    #: "read" | "write"
    kind: str
    #: access happens inside a call_soon_threadsafe callback.
    via_cst: bool


@dataclass
class RaceFinding:
    """A field shared across the thread↔loop boundary without ordering."""

    cls: str
    field_name: str
    write: _Access
    other: _Access


@dataclass
class _BlockSummary:
    """Why one function may block the thread running it, or None."""

    reason: str | None = None


class AsyncFlowAnalysis:
    """Async metadata + the three thread↔loop analyses, computed once."""

    def __init__(
        self, table: SymbolTable, graph: CallGraph, locks: LockAnalysis
    ) -> None:
        self.table = table
        self.graph = graph
        self.locks = locks
        #: function qualname → "loop" | "thread" | "both".
        self.context: dict[str, str] = {}
        #: callback qualnames registered via call_soon(_threadsafe).
        self.cst_callbacks: set[str] = set()
        #: thread-root qualnames (Thread targets, executor callables).
        self.thread_roots: set[str] = set()
        #: caller qualname → lines of executor hops seen in it.
        self.executor_hops: dict[str, list[int]] = {}
        #: await expression count per coroutine.
        self.await_sites: dict[str, int] = {}
        #: per-function blocking summaries (sync functions only propagate).
        self.summaries: dict[str, _BlockSummary] = {}
        self.blocking: list[BlockingFinding] = []
        self.future_violations: list[FutureViolation] = []
        self.unawaited: list[UnawaitedCoroutine] = []
        self.races: list[RaceFinding] = []
        #: lock tokens some holder blocks under ("slow" locks).
        self._slow_tokens = {v.held for v in locks.blocking_violations}
        #: resolution accounting for the ``--deep`` summary.
        self._classified_sites = 0
        self._candidate_sites = 0
        self._classified_awaits = 0
        self._total_awaits = 0

        self._parents: dict[str, dict[ast.AST, ast.AST]] = {}
        self._collect_metadata()
        self._classify_contexts()
        self._compute_block_summaries()
        self._check_loop_blocking()
        self._check_future_discipline()
        self._check_races()
        self._account_resolution()

    # ------------------------------------------------------------- utilities

    def _parent_map(self, fn: FunctionSymbol) -> dict[ast.AST, ast.AST]:
        cached = self._parents.get(fn.qualname)
        if cached is None:
            cached = {}
            for parent in ast.walk(fn.node):
                for child in ast.iter_child_nodes(parent):
                    cached[child] = parent
            self._parents[fn.qualname] = cached
        return cached

    def is_coroutine(self, qualname: str) -> bool:
        fn = self.table.functions.get(qualname)
        return fn is not None and fn.is_coroutine

    def _resolve_callback(
        self, fn: FunctionSymbol, expr: ast.expr
    ) -> str | None:
        """Qualname of a function handed somewhere as a first-class value."""
        if isinstance(expr, ast.Lambda):
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and fn.cls is not None
        ):
            found = self.table.lookup_method(fn.cls, expr.attr)
            return found.qualname if found is not None else None
        try:
            text = ast.unparse(expr)
        except Exception:  # pragma: no cover
            return None
        mod = self.table.modules[fn.module]
        qual = self.table.resolve_dotted(mod, text)
        if qual in self.table.functions:
            return qual
        return None

    @staticmethod
    def _callee_name(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""

    # ------------------------------------------------------- async metadata

    def _collect_metadata(self) -> None:
        for qualname, fn in self.table.functions.items():
            if isinstance(fn.node, ast.AsyncFunctionDef):
                self.await_sites[qualname] = sum(
                    isinstance(n, ast.Await) for n in ast.walk(fn.node)
                )
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = self._callee_name(node)
                if name == "Thread":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            target = self._resolve_callback(fn, kw.value)
                            if target is not None:
                                self.thread_roots.add(target)
                elif name in {"call_soon_threadsafe", "call_soon"}:
                    if node.args:
                        cb = self._resolve_callback(fn, node.args[0])
                        if cb is not None:
                            self.cst_callbacks.add(cb)
                elif name in {"run_in_executor", "to_thread", "submit"}:
                    site = self._site_for(fn, node)
                    if site is not None and site.status == "resolved":
                        continue  # a project method that shares the name.
                    arg_idx = 1 if name == "run_in_executor" else 0
                    if len(node.args) > arg_idx:
                        hopped = self._resolve_callback(fn, node.args[arg_idx])
                        if hopped is not None:
                            self.thread_roots.add(hopped)
                    self.executor_hops.setdefault(qualname, []).append(
                        node.lineno
                    )

    def _site_for(self, fn: FunctionSymbol, call: ast.Call) -> CallSite | None:
        for site in self.graph.sites.get(fn.qualname, []):
            if site.node is call:
                return site
        return None

    # -------------------------------------------------------- classification

    def _classify_contexts(self) -> None:
        def join(qualname: str, ctx: str) -> bool:
            if self.is_coroutine(qualname):
                ctx = LOOP  # coroutine bodies always run on the loop.
            cur = self.context.get(qualname)
            new = ctx if cur is None or cur == ctx else BOTH
            if new != cur:
                self.context[qualname] = new
                return True
            return False

        for qualname in self.table.functions:
            if self.is_coroutine(qualname):
                join(qualname, LOOP)
        for qualname in self.cst_callbacks:
            join(qualname, LOOP)
        for qualname in self.thread_roots:
            join(qualname, THREAD)

        # Propagate caller context into resolved *sync* callees.
        for _ in range(len(self.table.functions) + 1):
            changed = False
            for caller, sites in self.graph.sites.items():
                ctx = self.context.get(caller)
                if ctx is None:
                    continue
                for site in sites:
                    if site.status != "resolved":
                        continue
                    for target in site.targets:
                        if self.is_coroutine(target):
                            continue
                        changed |= join(target, ctx)
            if not changed:
                break

    def contexts(self) -> dict[str, int]:
        counts = {LOOP: 0, THREAD: 0, BOTH: 0}
        for ctx in self.context.values():
            counts[ctx] += 1
        return counts

    # --------------------------------------------------- blocking summaries

    def _compute_block_summaries(self) -> None:
        for qualname in self.table.functions:
            self.summaries[qualname] = _BlockSummary()
        for _ in range(10):
            changed = False
            for qualname, fn in self.table.functions.items():
                reason = self._summarize_blocking(fn)
                if reason != self.summaries[qualname].reason:
                    self.summaries[qualname] = _BlockSummary(reason)
                    changed = True
            if not changed:
                break

    def _summarize_blocking(self, fn: FunctionSymbol) -> str | None:
        parents = self._parent_map(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                reason = self._intrinsic_block(fn, node, parents)
                if reason is not None:
                    return reason
        for site in self.graph.sites.get(fn.qualname, []):
            if site.status != "resolved":
                continue
            if isinstance(parents.get(site.node), ast.Await):
                continue  # awaiting suspends; the callee blocks on its own.
            for target in site.targets:
                if self.is_coroutine(target):
                    continue
                if target in self.locks._protocol_methods:
                    return (
                        f"protocol I/O call {site.callee_text}(...) at "
                        f"{fn.relpath}:{site.line}"
                    )
                summary = self.summaries.get(target)
                if summary is not None and summary.reason is not None:
                    return f"{target} (line {site.line}) -> {summary.reason}"
        return None

    def _intrinsic_block(
        self,
        fn: FunctionSymbol,
        call: ast.Call,
        parents: dict[ast.AST, ast.AST],
    ) -> str | None:
        """Why *call* intrinsically blocks, ignoring resolved project calls."""
        site = self._site_for(fn, call)
        if site is not None and site.status == "resolved":
            return None  # project callee: its own summary decides.
        if isinstance(parents.get(call), ast.Await):
            return None  # awaited primitives suspend, they don't block.
        func = call.func
        origin = f"{fn.relpath}:{call.lineno}"
        if isinstance(func, ast.Name):
            if func.id == "open":
                return f"open(...) at {origin}"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr in _BLOCKING_IO_ATTRS:
            try:
                return f"{ast.unparse(func)}(...) file/OS I/O at {origin}"
            except Exception:  # pragma: no cover
                return f"{attr}(...) file/OS I/O at {origin}"
        if attr in _BLOCKING_ATTRS:
            if isinstance(func.value, ast.Constant):
                return None  # " ".join(...) and friends: a str method.
            try:
                text = ast.unparse(func)
            except Exception:  # pragma: no cover
                text = attr
            return f"{text}(...) at {origin}"
        if attr in {"get", "put"} and self._is_queue_receiver(fn, func.value):
            return f"queue.{attr}(...) at {origin}"
        return None

    def _is_queue_receiver(self, fn: FunctionSymbol, recv: ast.expr) -> bool:
        """Whether *recv* names a local constructed as a ``queue.Queue``."""
        if not isinstance(recv, ast.Name):
            return False
        mod = self.table.modules[fn.module]
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == recv.id
                and isinstance(node.value, ast.Call)
            ):
                try:
                    text = ast.unparse(node.value.func)
                except Exception:  # pragma: no cover
                    continue
                target = mod.imports.get(text.split(".")[0], text)
                if "Queue" in text and (
                    target == "queue" or text.split(".")[-1] == "Queue"
                ):
                    return True
        return False

    # ------------------------------------------------------- loop blocking

    def _check_loop_blocking(self) -> None:
        for qualname, fn in self.table.functions.items():
            if not isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            parents = self._parent_map(fn)
            resolver = _Resolver(self.graph, fn)
            seen_lines: set[int] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    reason = self._blocking_call_reason(fn, node, parents)
                    if reason is not None and node.lineno not in seen_lines:
                        seen_lines.add(node.lineno)
                        self.blocking.append(
                            BlockingFinding(
                                fn=qualname,
                                relpath=fn.relpath,
                                line=node.lineno,
                                reason=reason,
                            )
                        )
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        held = self.locks._lock_of(item.context_expr, resolver)
                        if held is not None and held.token in self._slow_tokens:
                            self.blocking.append(
                                BlockingFinding(
                                    fn=qualname,
                                    relpath=fn.relpath,
                                    line=item.context_expr.lineno,
                                    reason=(
                                        f"acquires {held.token}, which other "
                                        "holders block under (see "
                                        "deep-lock-blocking)"
                                    ),
                                )
                            )

    def _blocking_call_reason(
        self,
        fn: FunctionSymbol,
        call: ast.Call,
        parents: dict[ast.AST, ast.AST],
    ) -> str | None:
        intrinsic = self._intrinsic_block(fn, call, parents)
        if intrinsic is not None:
            return intrinsic
        site = self._site_for(fn, call)
        if site is None or site.status != "resolved":
            return None
        if isinstance(parents.get(call), ast.Await):
            return None
        for target in site.targets:
            if self.is_coroutine(target):
                continue  # findings land inside the coroutine itself.
            if target in self.locks._protocol_methods:
                return (
                    f"protocol I/O call {site.callee_text}(...) at "
                    f"{fn.relpath}:{call.lineno}"
                )
            summary = self.summaries.get(target)
            if summary is not None and summary.reason is not None:
                return f"{target} (line {call.lineno}) -> {summary.reason}"
        return None

    # ---------------------------------------------------- future discipline

    def _future_typed(self, fn: FunctionSymbol, recv: ast.expr) -> bool:
        """Whether *recv* holds an ``asyncio.Future``-shaped value."""
        if isinstance(recv, ast.Name):
            ann = fn.param_annotations.get(recv.id)
            if ann is not None and self._mentions_future(ann):
                return True
            for node in ast.walk(fn.node):
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if node.target.id == recv.id and self._mentions_future(
                        node.annotation
                    ):
                        return True
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == recv.id
                    and isinstance(node.value, ast.Call)
                ):
                    name = self._callee_name(node.value)
                    if name in {"create_future", "Future"}:
                        return True
            return False
        if isinstance(recv, ast.Attribute):
            resolver = _Resolver(self.graph, fn)
            owner = resolver.receiver_type(recv.value)
            if owner is None:
                return False
            cls = self.table.classes.get(owner)
            if cls is None:
                return False
            ann = cls.attr_types.get(recv.attr) or cls.attr_annotations.get(
                recv.attr
            )
            return ann is not None and self._mentions_future(ann)
        return False

    @staticmethod
    def _mentions_future(ann: ast.expr) -> bool:
        try:
            text = ast.unparse(ann)
        except Exception:  # pragma: no cover
            return False
        return "Future" in text

    def _check_future_discipline(self) -> None:
        for qualname, fn in self.table.functions.items():
            ctx = self.context.get(qualname)
            parents = self._parent_map(fn)
            # 1) futures completed from thread-classified contexts.
            if ctx in (THREAD, BOTH) and qualname not in self.cst_callbacks:
                for node in ast.walk(fn.node):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in {"set_result", "set_exception"}
                    ):
                        continue
                    recv = node.func.value
                    if not self._future_typed(fn, recv):
                        continue
                    try:
                        recv_text = ast.unparse(recv)
                    except Exception:  # pragma: no cover
                        recv_text = "<future>"
                    self.future_violations.append(
                        FutureViolation(
                            fn=qualname,
                            relpath=fn.relpath,
                            line=node.lineno,
                            method=node.func.attr,
                            receiver=recv_text,
                            context=ctx,
                        )
                    )
            # 2) coroutine objects that are never awaited or tracked.
            for site in self.graph.sites.get(qualname, []):
                if site.status != "resolved" or not site.targets:
                    continue
                if not all(self.is_coroutine(t) for t in site.targets):
                    continue
                how = self._untracked_how(fn, site.node, parents)
                if how is not None:
                    self.unawaited.append(
                        UnawaitedCoroutine(
                            fn=qualname,
                            relpath=fn.relpath,
                            line=site.line,
                            callee=site.callee_text,
                            how=how,
                        )
                    )

    def _untracked_how(
        self,
        fn: FunctionSymbol,
        call: ast.Call,
        parents: dict[ast.AST, ast.AST],
    ) -> str | None:
        """None when the coroutine object is awaited/tracked, else how not."""
        node: ast.AST = call
        while True:
            parent = parents.get(node)
            if parent is None:
                return None  # benefit of the doubt at the function boundary.
            if isinstance(parent, ast.Await):
                return None
            if isinstance(parent, ast.Return):
                return None  # delegated to the caller.
            if isinstance(parent, ast.Call) and node is not parent.func:
                name = self._callee_name(parent)
                if name in _TASK_FUNCS:
                    return None
                return None  # handed to some callable: assume tracked.
            if isinstance(parent, ast.Expr):
                return "discarded"
            if isinstance(parent, ast.Assign):
                names = [
                    leaf.id
                    for target in parent.targets
                    for leaf in ast.walk(target)
                    if isinstance(leaf, ast.Name)
                ]
                if names and not self._name_later_tracked(fn, names, parents):
                    return "never-awaited"
                return None
            if isinstance(
                parent,
                (ast.BoolOp, ast.IfExp, ast.Starred, ast.GeneratorExp,
                 ast.ListComp, ast.SetComp, ast.comprehension, ast.keyword),
            ):
                node = parent
                continue
            return None

    def _name_later_tracked(
        self,
        fn: FunctionSymbol,
        names: list[str],
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        """Whether any of *names* is later awaited, returned, or tracked."""
        wanted = set(names)
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Name) and node.id in wanted):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            cur: ast.AST = node
            while True:
                parent = parents.get(cur)
                if parent is None or isinstance(parent, ast.stmt):
                    if isinstance(parent, ast.Return):
                        return True
                    break
                if isinstance(parent, ast.Await):
                    return True
                if isinstance(parent, ast.Call) and cur is not parent.func:
                    return True  # passed along: assume tracked.
                cur = parent
        return False

    # ------------------------------------------------------------- races

    def _check_races(self) -> None:
        accesses: dict[tuple[str, str], list[_Access]] = {}
        for qualname, fn in self.table.functions.items():
            ctx = self.context.get(qualname)
            if ctx is None or fn.name in _CONSTRUCTORS:
                continue
            resolver = _Resolver(self.graph, fn)
            parents = self._parent_map(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Attribute):
                    continue
                owner = resolver.receiver_type(node.value)
                if owner is None:
                    continue
                cls = self.table.classes.get(owner)
                if cls is None:
                    continue
                attr = node.attr
                known = (
                    attr in cls.attr_types or attr in cls.attr_annotations
                )
                if not known:
                    continue
                if attr in self.table.lock_attrs_of(owner):
                    continue
                if attr in self.table.guarded_fields_of(owner):
                    continue  # deep-lock-field enforces held-ness.
                accesses.setdefault((owner, attr), []).append(
                    _Access(
                        fn=qualname,
                        relpath=fn.relpath,
                        line=node.lineno,
                        context=ctx,
                        kind=(
                            "write"
                            if self._is_write(node, parents)
                            else "read"
                        ),
                        via_cst=qualname in self.cst_callbacks,
                    )
                )
        for (owner, attr), acc in sorted(accesses.items()):
            finding = self._race_of(owner, attr, acc)
            if finding is not None:
                self.races.append(finding)

    @staticmethod
    def _is_write(node: ast.Attribute, parents: dict[ast.AST, ast.AST]) -> bool:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return True
        parent = parents.get(node)
        if (
            isinstance(parent, ast.Attribute)
            and parent.attr in _MUTATOR_METHODS
        ):
            grand = parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                return True
        if isinstance(parent, ast.Subscript) and isinstance(
            parent.ctx, (ast.Store, ast.Del)
        ):
            return True
        return False

    @staticmethod
    def _sides(ctx: str) -> frozenset:
        return frozenset((LOOP, THREAD)) if ctx == BOTH else frozenset((ctx,))

    def _race_of(
        self, owner: str, attr: str, accesses: list[_Access]
    ) -> RaceFinding | None:
        # call_soon_threadsafe callbacks are the sanctioned hand-off: their
        # accesses are ordered after the thread-side call that posted them.
        live = [a for a in accesses if not a.via_cst]
        writes = [a for a in live if a.kind == "write"]
        if not writes:
            return None
        for write in sorted(writes, key=lambda a: (a.relpath, a.line)):
            wsides = self._sides(write.context)
            for other in sorted(live, key=lambda a: (a.relpath, a.line)):
                if other is write and other.context != BOTH:
                    continue
                osides = self._sides(other.context)
                if (THREAD in wsides and LOOP in osides) or (
                    LOOP in wsides and THREAD in osides
                ):
                    return RaceFinding(
                        cls=owner, field_name=attr, write=write, other=other
                    )
        return None

    # ------------------------------------------------------------- summary

    def _account_resolution(self) -> None:
        async_fns = {
            q
            for q in self.table.functions
            if self.is_coroutine(q) or q in self.context
        }
        for qualname in sorted(async_fns):
            fn = self.table.functions[qualname]
            parents = self._parent_map(fn)
            for site in self.graph.sites.get(qualname, []):
                if site.status in ("resolved", "external", "builtin"):
                    self._candidate_sites += 1
                    self._classified_sites += 1
                elif site.status == "unresolved":
                    self._candidate_sites += 1
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Await):
                    continue
                self._total_awaits += 1
                value = node.value
                if isinstance(value, ast.Call):
                    site = self._site_for(fn, value)
                    if site is not None and site.status in (
                        "resolved", "external", "builtin", "dynamic",
                    ):
                        self._classified_awaits += 1
                else:
                    # Awaiting a stored future/task: classified by shape.
                    self._classified_awaits += 1

    def summary(self) -> dict[str, object]:
        """Async accounting for the ``--deep`` JSON summary."""
        candidates = self._candidate_sites + self._total_awaits
        classified = self._classified_sites + self._classified_awaits
        rate = classified / candidates if candidates else 1.0
        return {
            "coroutines": sum(
                1 for q in self.table.functions if self.is_coroutine(q)
            ),
            "await_sites": sum(self.await_sites.values()),
            "contexts": self.contexts(),
            "thread_roots": len(self.thread_roots),
            "cst_callbacks": len(self.cst_callbacks),
            "executor_hops": sum(
                len(lines) for lines in self.executor_hops.values()
            ),
            "classified_sites": classified,
            "candidate_sites": candidates,
            "resolution_rate": round(rate, 4),
        }
