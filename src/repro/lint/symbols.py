"""Project symbol table: every module, class, function, and import.

This is the foundation the whole-program (``--deep``) analyses build on.
One :class:`SymbolTable` indexes a package tree (``src/repro`` in
production, a fixture package in tests) by dotted qualified name:

* :class:`ModuleSymbol` — parsed tree, source, and the import alias map
  (``np → numpy``, ``ResultCache → repro.engine.cache.ResultCache``);
* :class:`ClassSymbol` — methods, base names, class-level attribute
  annotations (including dataclass fields), instance attribute types
  harvested from ``__init__``/``__post_init__``, declared lock attributes
  and ``guarded_by`` fields;
* :class:`FunctionSymbol` — parameters with annotations and the return
  annotation, for the call graph's light type inference.

Everything is syntactic — nothing is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FunctionSymbol",
    "ClassSymbol",
    "ModuleSymbol",
    "SymbolTable",
    "iter_package_files",
]


@dataclass
class FunctionSymbol:
    """One function or method."""

    qualname: str
    module: str
    name: str
    #: owning class qualname, or None for module-level functions.
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    relpath: str
    #: positional + keyword parameter names, in order (incl. self/cls).
    params: list[str] = field(default_factory=list)
    #: parameter name → annotation AST (unparsed lazily by consumers).
    param_annotations: dict[str, ast.expr] = field(default_factory=dict)
    returns: ast.expr | None = None
    decorators: list[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_coroutine(self) -> bool:
        """Whether this is an ``async def`` (its body runs on an event loop)."""
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassSymbol:
    """One class: methods, bases, attribute types, lock metadata."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    relpath: str
    #: raw source of each base expression ("Protocol", "Generic[K, V]", ...).
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionSymbol] = field(default_factory=dict)
    #: class-level annotated names (dataclass fields included) → annotation.
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)
    #: instance attribute → annotation/value-derived type expression.  Values
    #: are ast.expr annotation nodes OR ast.Call/ast.Name value nodes from
    #: ``self.x = ...`` in __init__/__post_init__ (resolved by the call graph).
    attr_types: dict[str, ast.expr] = field(default_factory=dict)
    #: guarded field name → lock attribute name (guarded_by declarations).
    guarded_fields: dict[str, str] = field(default_factory=dict)
    #: declared resource teardown sequence (``__shutdown_order__ =
    #: shutdown_order("_cv", "_threads")``), empty when undeclared.
    shutdown_order: tuple[str, ...] = ()
    #: attribute names that hold locks (guard targets + threading.*Lock()
    #: assignments/defaults).
    lock_attrs: set[str] = field(default_factory=set)
    is_protocol: bool = False

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ModuleSymbol:
    """One source file of the analyzed package."""

    name: str
    relpath: str
    path: Path
    tree: ast.Module
    source: str
    #: local alias → dotted target ("np" → "numpy",
    #: "derive_rng" → "repro._util.derive_rng").
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: dict[str, ClassSymbol] = field(default_factory=dict)


def _guard_from_annotation(ann: ast.expr) -> str | None:
    """Extract the lock name from ``Annotated[T, guarded_by("lock")]``."""
    if not (isinstance(ann, ast.Subscript) and isinstance(ann.slice, ast.Tuple)):
        return None
    head = ann.value
    head_name = head.attr if isinstance(head, ast.Attribute) else getattr(head, "id", "")
    if head_name != "Annotated":
        return None
    for meta in ann.slice.elts[1:]:
        if (
            isinstance(meta, ast.Call)
            and isinstance(meta.func, ast.Name)
            and meta.func.id == "guarded_by"
            and meta.args
            and isinstance(meta.args[0], ast.Constant)
            and isinstance(meta.args[0].value, str)
        ):
            return meta.args[0].value
    return None


def _shutdown_order_from(value: ast.expr | None) -> tuple[str, ...] | None:
    """Attribute names from a ``shutdown_order("a", "b", ...)`` call."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
    if name != "shutdown_order":
        return None
    attrs = tuple(
        arg.value
        for arg in value.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    )
    return attrs or None


def _is_lock_expr(node: ast.expr | None) -> bool:
    """Whether *node* constructs (or defaults to) a threading lock."""
    if node is None:
        return False
    try:
        src = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are cosmetic
        return False
    return any(
        marker in src
        for marker in ("RLock", "Lock()", "threading.Lock", "Condition")
    )


def iter_package_files(package_dir: Path) -> list[Path]:
    """All python files under one package directory, sorted."""
    return sorted(
        p for p in package_dir.rglob("*.py") if "__pycache__" not in p.parts
    )


class SymbolTable:
    """Index of every symbol in one (or more) package trees."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSymbol] = {}
        self.functions: dict[str, FunctionSymbol] = {}
        self.classes: dict[str, ClassSymbol] = {}
        #: top-level package names covered by this table ("repro", ...).
        self.packages: set[str] = set()

    # -------------------------------------------------------------- building

    @classmethod
    def build(
        cls,
        root: Path,
        package_dirs: tuple[str, ...],
        tree_loader=None,
    ) -> "SymbolTable":
        """Parse every file under *package_dirs* (relative to *root*).

        A package dir like ``src/repro`` produces module names rooted at
        ``repro`` (the dir's own basename); files that fail to parse are
        skipped here — the shallow walker already reports syntax errors.
        ``tree_loader(relpath, source)`` may return a pre-parsed
        ``ast.Module`` (the incremental cache's reuse hook) or None to
        parse normally.
        """
        table = cls()
        for package_dir in package_dirs:
            pkg_path = (root / package_dir).resolve()
            base = pkg_path.parent
            table.packages.add(pkg_path.name)
            for path in iter_package_files(pkg_path):
                rel_to_base = path.relative_to(base)
                parts = list(rel_to_base.with_suffix("").parts)
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                module_name = ".".join(parts)
                try:
                    relpath = path.relative_to(root.resolve()).as_posix()
                except ValueError:
                    relpath = path.as_posix()
                source = path.read_text(encoding="utf-8")
                tree = None
                if tree_loader is not None:
                    tree = tree_loader(relpath, source)
                if tree is None:
                    try:
                        tree = ast.parse(source)
                    except SyntaxError:
                        continue
                table._index_module(module_name, relpath, path, tree, source)
        return table

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "SymbolTable":
        """Build from in-memory {module_name: source} (test convenience)."""
        table = cls()
        for module_name, source in sources.items():
            table.packages.add(module_name.split(".")[0])
            relpath = module_name.replace(".", "/") + ".py"
            table._index_module(
                module_name, relpath, Path(relpath), ast.parse(source), source
            )
        return table

    def _index_module(
        self,
        module_name: str,
        relpath: str,
        path: Path,
        tree: ast.Module,
        source: str,
    ) -> None:
        mod = ModuleSymbol(
            name=module_name, relpath=relpath, path=path, tree=tree, source=source
        )
        self.modules[module_name] = mod
        # Imports are collected from the whole tree (function-local imports
        # included — common for late imports that break cycles); treating
        # them as module-wide aliases is a harmless over-approximation.
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(mod, node)
        for node in tree.body:
            self._index_statement(mod, node)

    def _index_import(self, mod: ModuleSymbol, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mod.imports[local] = target
        else:
            base = self._resolve_from_base(mod, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mod.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _index_statement(self, mod: ModuleSymbol, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = self._make_function(mod, node, cls=None)
            mod.functions[fn.name] = fn
            self.functions[fn.qualname] = fn
        elif isinstance(node, ast.ClassDef):
            self._index_class(mod, node)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING imports / guarded defs: index their bodies too.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index_statement(mod, child)

    @staticmethod
    def _resolve_from_base(mod: ModuleSymbol, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb from this module's package.
        parts = mod.name.split(".")
        anchor = parts[: len(parts) - node.level] if len(parts) >= node.level else []
        if node.module:
            anchor.append(node.module)
        return ".".join(anchor)

    def _make_function(
        self,
        mod: ModuleSymbol,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassSymbol | None,
    ) -> FunctionSymbol:
        owner = f"{cls.qualname}." if cls is not None else f"{mod.name}."
        fn = FunctionSymbol(
            qualname=f"{owner}{node.name}",
            module=mod.name,
            name=node.name,
            cls=cls.qualname if cls is not None else None,
            node=node,
            relpath=mod.relpath,
        )
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            fn.params.append(arg.arg)
            if arg.annotation is not None:
                fn.param_annotations[arg.arg] = arg.annotation
        fn.returns = node.returns
        for dec in node.decorator_list:
            try:
                fn.decorators.append(ast.unparse(dec))
            except Exception:  # pragma: no cover
                pass
        return fn

    def _index_class(self, mod: ModuleSymbol, node: ast.ClassDef) -> None:
        cls = ClassSymbol(
            qualname=f"{mod.name}.{node.name}",
            module=mod.name,
            name=node.name,
            node=node,
            relpath=mod.relpath,
        )
        for base in node.bases:
            try:
                src = ast.unparse(base)
            except Exception:  # pragma: no cover
                continue
            cls.bases.append(src)
            if src.split("[")[0].split(".")[-1] == "Protocol":
                cls.is_protocol = True
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._make_function(mod, child, cls=cls)
                cls.methods[fn.name] = fn
                self.functions[fn.qualname] = fn
            elif (
                isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
                and child.targets[0].id == "__shutdown_order__"
            ):
                declared = _shutdown_order_from(child.value)
                if declared is not None:
                    cls.shutdown_order = declared
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                name = child.target.id
                cls.attr_annotations[name] = child.annotation
                cls.attr_types.setdefault(name, child.annotation)
                guard = _guard_from_annotation(child.annotation)
                if guard is not None:
                    cls.guarded_fields[name] = guard
                    cls.lock_attrs.add(guard)
                if _is_lock_expr(child.annotation) or _is_lock_expr(child.value):
                    cls.lock_attrs.add(name)
        self._harvest_instance_attrs(cls)
        mod.classes[cls.name] = cls
        self.classes[cls.qualname] = cls

    def _harvest_instance_attrs(self, cls: ClassSymbol) -> None:
        """Record ``self.x = <expr>`` / ``self.x: T = ...`` from initializers."""
        for init_name in ("__init__", "__post_init__"):
            init = cls.methods.get(init_name)
            if init is None:
                continue
            for node in ast.walk(init.node):
                target: ast.expr | None = None
                ann: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, ann, value = node.target, node.annotation, node.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if ann is not None:
                    cls.attr_types.setdefault(attr, ann)
                elif value is not None:
                    cls.attr_types.setdefault(attr, value)
                if _is_lock_expr(value):
                    cls.lock_attrs.add(attr)

    # -------------------------------------------------------------- queries

    def resolve_import(self, module: str, name: str) -> str | None:
        """The dotted target *name* refers to inside *module*, if imported."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        return mod.imports.get(name)

    def is_project_target(self, dotted: str) -> bool:
        return dotted.split(".")[0] in self.packages

    def lookup_method(
        self, class_qualname: str, method: str, _seen: frozenset = frozenset()
    ) -> FunctionSymbol | None:
        """Find *method* on a class or (recursively) its project bases."""
        cls = self.classes.get(class_qualname)
        if cls is None or class_qualname in _seen:
            return None
        if method in cls.methods:
            return cls.methods[method]
        seen = _seen | {class_qualname}
        for base_qual in self.base_classes(cls):
            found = self.lookup_method(base_qual, method, seen)
            if found is not None:
                return found
        return None

    def base_classes(self, cls: ClassSymbol) -> list[str]:
        """Qualnames of project base classes of *cls*."""
        out = []
        mod = self.modules[cls.module]
        for base_src in cls.bases:
            head = base_src.split("[")[0]
            qual = self.resolve_dotted(mod, head)
            if qual is not None and qual in self.classes:
                out.append(qual)
        return out

    def guarded_fields_of(self, class_qualname: str) -> dict[str, str]:
        """Guarded fields of a class including inherited declarations."""
        cls = self.classes.get(class_qualname)
        if cls is None:
            return {}
        merged: dict[str, str] = {}
        for base_qual in self.base_classes(cls):
            merged.update(self.guarded_fields_of(base_qual))
        merged.update(cls.guarded_fields)
        return merged

    def shutdown_order_of(self, class_qualname: str) -> tuple[str, ...]:
        """Declared teardown sequence of a class (own wins over bases)."""
        cls = self.classes.get(class_qualname)
        if cls is None:
            return ()
        if cls.shutdown_order:
            return cls.shutdown_order
        for base_qual in self.base_classes(cls):
            inherited = self.shutdown_order_of(base_qual)
            if inherited:
                return inherited
        return ()

    def lock_attrs_of(self, class_qualname: str) -> set[str]:
        cls = self.classes.get(class_qualname)
        if cls is None:
            return set()
        attrs = set(cls.lock_attrs)
        for base_qual in self.base_classes(cls):
            attrs |= self.lock_attrs_of(base_qual)
        return attrs

    def resolve_dotted(self, mod: ModuleSymbol, dotted: str) -> str | None:
        """Resolve a possibly-aliased dotted name to a table qualname.

        ``ResultCache`` → ``repro.engine.cache.ResultCache`` (via imports),
        ``module.Class`` → through a module alias, and names defined in
        *mod* itself resolve directly.  Package re-exports are chased: an
        import of ``repro.lint.run_lint`` lands on the ``repro.lint``
        package module, whose own ``from .walker import run_lint`` alias
        forwards to ``repro.lint.walker.run_lint``.
        """
        head, _, rest = dotted.partition(".")
        # Defined locally?
        if head in mod.classes:
            qual = mod.classes[head].qualname
        elif head in mod.functions:
            qual = mod.functions[head].qualname
        elif head in mod.imports:
            qual = mod.imports[head]
        elif head == mod.name.split(".")[-1]:
            qual = mod.name
        else:
            return None
        full = f"{qual}.{rest}" if rest else qual
        return self._chase(full)

    def _chase(self, full: str, _depth: int = 0) -> str:
        """Follow re-export aliases until *full* names a real symbol."""
        if _depth > 8 or full in self.classes or full in self.functions:
            return full
        if full in self.modules:
            return full
        owner, _, leaf = full.rpartition(".")
        if not owner:
            return full
        owner = self._chase(owner, _depth + 1)
        mod = self.modules.get(owner)
        if mod is not None and leaf in mod.imports:
            return self._chase(mod.imports[leaf], _depth + 1)
        return f"{owner}.{leaf}"

    def protocol_implementations(self, protocol: ClassSymbol) -> list[ClassSymbol]:
        """Project classes structurally implementing *protocol*.

        A class implements a protocol when it defines every protocol
        method and declares every non-method protocol attribute (as a
        class annotation or harvested instance attribute).
        """
        wanted_methods = {
            m for m in protocol.methods if not m.startswith("__")
        }
        wanted_attrs = set(protocol.attr_annotations)
        impls = []
        for cls in self.classes.values():
            if cls.qualname == protocol.qualname or cls.is_protocol:
                continue
            has_methods = all(
                self.lookup_method(cls.qualname, m) is not None
                for m in wanted_methods
            )
            has_attrs = all(
                a in cls.attr_types or a in cls.attr_annotations
                for a in wanted_attrs
            )
            if wanted_methods and has_methods and has_attrs:
                impls.append(cls)
        return impls
