"""Finding baseline: ratchet deep findings down, never up.

The committed ``lint-baseline.json`` records accepted pre-existing
findings as (rule, path, message) fingerprints — line numbers are
excluded so unrelated edits above a finding don't churn the file.  CI
runs ``repro-em lint --deep --baseline lint-baseline.json`` and fails on
any finding *not* in the baseline; fixing a finding and running
``--update-baseline`` shrinks the file.  The baseline is written sorted
and with a stable schema so diffs review cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Finding

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "fingerprint",
    "load_baseline",
    "filter_baselined",
    "write_baseline",
]

BASELINE_SCHEMA_VERSION = 1


def fingerprint(finding: Finding) -> dict[str, str]:
    """The stable identity of a finding (line numbers excluded)."""
    return {
        "rule": finding.rule,
        "path": finding.path,
        "message": finding.message,
    }


def _key(entry: dict[str, str]) -> tuple[str, str, str]:
    return (entry.get("rule", ""), entry.get("path", ""), entry.get("message", ""))


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """Accepted fingerprints from *path* (empty set when absent)."""
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", [])
    return {_key(entry) for entry in entries}

def filter_baselined(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> list[Finding]:
    """Findings not covered by the baseline (the ones that fail CI)."""
    return [f for f in findings if _key(fingerprint(f)) not in baseline]


def write_baseline(findings: list[Finding], path: Path) -> dict[str, object]:
    """Write the current findings as the new accepted baseline."""
    entries = sorted(
        {tuple(fingerprint(f).items()) for f in findings}
    )
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "count": len(entries),
        "findings": [dict(entry) for entry in entries],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload
