"""Round-trip contracts between prompt rendering and entity extraction.

The chat inference path recovers the two entity descriptions from the
rendered prompt text (:func:`repro.prompts.builder.extract_entities`);
the vectorized path consumes the descriptions directly.  Observation
noise, hedging, and cache keys are all derived from the description
strings, so the two paths agree only if rendering is *losslessly
invertible* — PR 1's ``_ENTITY_RE`` trailing-whitespace bug broke exactly
this and surfaced as unexplained engine/sequential disagreement.

This rule exercises every registered ``PromptTemplate`` against an
adversarial fixture set (trailing/leading whitespace, embedded newlines,
``Entity 1:``-shaped payloads) and reports any pair the round trip loses.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Iterator

from repro.lint.findings import Finding
from repro.lint.registry import rule

__all__ = ["ADVERSARIAL_PAIRS", "roundtrip_failure"]

#: description pairs chosen to break lossy or ambiguous round trips.
ADVERSARIAL_PAIRS: tuple[tuple[str, str], ...] = (
    ("Jabra Evolve 80", "jabra evolve-80 stereo"),
    ("trailing space ", "plain"),
    ("plain", "trailing space "),
    (" leading space", "  two leading"),
    ("ends with tab\t", "tab\tinside"),
    ("line one\nline two", "plain"),
    ("plain", "ends with newline\n"),
    ("Entity 1: payload", "Entity 2: payload"),
    ("left\nEntity 2: decoy", "real right"),
    ("left", "right\nEntity 1: decoy"),
    ("", "empty left"),
    ("empty right", ""),
    ('has "quotes"', "has back\\slash"),
)


def roundtrip_failure(
    render: Callable[[str, str], str],
    extract: Callable[[str], tuple[str, str]],
    left: str,
    right: str,
) -> str | None:
    """Describe how the render→extract round trip loses *left*/*right*.

    Returns None when the pair survives exactly.
    """
    prompt = render(left, right)
    try:
        recovered = extract(prompt)
    except Exception as exc:
        return f"extract raised {type(exc).__name__}: {exc}"
    if recovered != (left, right):
        return (
            f"recovered {recovered!r} != original {(left, right)!r}"
        )
    return None


def _template_lines(root: Path) -> dict[str, int]:
    """Map template name → definition line in prompts/templates.py."""
    path = root / "src" / "repro" / "prompts" / "templates.py"
    lines: dict[str, int] = {}
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return lines
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "PromptTemplate"
        ):
            continue
        for keyword in node.keywords:
            if (
                keyword.arg == "name"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                lines[keyword.value.value] = node.lineno
    return lines


@rule(
    "prompt-roundtrip",
    family="contracts",
    scope="repo",
    description="every PromptTemplate must render losslessly: "
    "extract_entities(render(l, r)) == (l, r)",
)
def check_prompt_roundtrip(root: Path) -> Iterator[Finding]:
    from repro.prompts.builder import extract_entities
    from repro.prompts.templates import PROMPTS

    lines = _template_lines(root)
    relpath = "src/repro/prompts/templates.py"
    for name, template in sorted(PROMPTS.items()):
        for left, right in ADVERSARIAL_PAIRS:
            failure = roundtrip_failure(
                template.render, extract_entities, left, right
            )
            if failure is None:
                continue
            yield Finding(
                rule="prompt-roundtrip",
                severity="error",
                path=relpath,
                line=lines.get(name, 1),
                message=(
                    f"template {name!r} loses {(left, right)!r}: {failure}"
                ),
                hint="render/extract must escape description text so the "
                "Entity 1/Entity 2 block stays unambiguous",
            )
            break  # one failing fixture per template keeps the report readable
