"""Deep rules: the ``@guarded_by`` lock discipline, enforced.

Three project-scoped rules over :class:`repro.lint.locks.LockAnalysis`:

* ``deep-lock-field`` — a field declared
  ``Annotated[T, guarded_by("_lock")]`` is read or written without the
  declaring class's lock held (constructors exempt);
* ``deep-lock-order`` — the acquired-while-holding graph over
  ``(class, lock)`` tokens contains a cycle, i.e. two call paths can
  acquire the same locks in opposite orders and deadlock;
* ``deep-lock-blocking`` — a call that may block (sleep, event wait,
  thread join, or any path reaching a Protocol-declared I/O method) runs
  while a lock is held, stalling every thread contending for it.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import rule


@rule(
    "deep-lock-field",
    family="concurrency",
    scope="project",
    description="@guarded_by field accessed without its lock held",
)
def check_guarded_fields(ctx) -> Iterator[Finding]:
    for v in ctx.locks.guard_violations:
        cls_name = v.cls.rsplit(".", 1)[-1]
        yield Finding(
            rule="deep-lock-field",
            severity="error",
            path=v.relpath,
            line=v.line,
            message=(
                f"{v.access} of {cls_name}.{v.field_name} in {v.fn} without "
                f"holding {v.lock_attr} (declared guarded_by({v.lock_attr!r}))"
            ),
            hint=f"wrap the access in `with <receiver>.{v.lock_attr}:` or "
            "move it into a lock-taking method of the owning class",
        )


@rule(
    "deep-lock-order",
    family="concurrency",
    scope="project",
    description="cyclic lock acquisition order (potential deadlock)",
)
def check_lock_order(ctx) -> Iterator[Finding]:
    for tokens, edges in ctx.locks.order_cycles():
        chain = " -> ".join(str(t) for t in tokens) + f" -> {tokens[0]}"
        first = edges[0]
        yield Finding(
            rule="deep-lock-order",
            severity="error",
            path=first.relpath,
            line=first.line,
            message=f"lock-ordering cycle: {chain} "
            f"(first edge in {first.fn})",
            hint="pick one global acquisition order for these locks and "
            "restructure the offending path to follow it",
        )


@rule(
    "deep-lock-blocking",
    family="concurrency",
    scope="project",
    description="blocking call while holding a lock",
)
def check_blocking_under_lock(ctx) -> Iterator[Finding]:
    for v in ctx.locks.blocking_violations:
        yield Finding(
            rule="deep-lock-blocking",
            severity="error",
            path=v.relpath,
            line=v.line,
            message=(
                f"blocking call while holding {v.held} in {v.fn}: {v.reason}"
            ),
            hint="move the blocking work outside the lock; copy what you "
            "need under the lock, then release before blocking",
        )
