"""repro.lint — AST-based invariant linter for the reproduction.

Static analysis specialized to this repository's correctness contracts:
determinism (no ambient randomness, clocks, or salted ordering in library
code), parseable-marker safety (emitted answer phrases classify as their
declared intent under the real parser), round-trip contracts (prompt
rendering is losslessly invertible), and engine hygiene (typed excepts,
no fallback answers in the result cache, no float ``==`` in metrics).

Usage::

    from repro.lint import run_lint
    findings = run_lint(".")            # whole default tree
    findings = run_lint(".", rules=["unseeded-rng"], paths=["scripts"])

or from the command line: ``repro-em lint [--rule ID ...] [--format json]``.

Suppress a finding in place with ``# repro-lint: disable=<rule>`` (same
line) or on the line above a statement (covers the whole block); always
include a justification after the rule list.
"""

from repro.lint.findings import Finding, format_json, format_text
from repro.lint.registry import RULES, Rule, rule
from repro.lint.walker import DEFAULT_ROOTS, iter_python_files, run_lint

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "rule",
    "run_lint",
    "iter_python_files",
    "DEFAULT_ROOTS",
    "format_text",
    "format_json",
]
