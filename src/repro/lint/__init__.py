"""repro.lint — static analysis for the reproduction's invariants.

Two layers share one rule registry and one finding/suppression model:

* the **per-file walker** (``run_lint``) checks syntactic contracts —
  determinism hygiene, parseable-marker safety, round-trip contracts,
  engine hygiene;
* the **whole-program analyzer** (``run_deep``, ``repro-em lint
  --deep``) builds a project symbol table and call graph, then runs
  inter-procedural rules: determinism *taint* from source to sink
  through helper hops, the ``@guarded_by`` lock discipline (guarded
  fields, ordering cycles, blocking under locks), exception types
  escaping protocol boundaries, async execution contexts (loop
  blocking, future discipline, thread/loop races), and resource
  lifecycles (leaks with provenance, double-close, declared
  ``shutdown_order`` teardown contracts).  ``run_deep(cache=...)``
  reuses parse trees and whole results through
  :class:`repro.lint.cache.AnalysisCache` — warm runs are
  byte-identical and dependency-aware invalidation keeps them honest.

Usage::

    from repro.lint import run_lint
    findings = run_lint(".")            # whole default tree
    findings = run_lint(".", rules=["unseeded-rng"], paths=["scripts"])

    from repro.lint.deep import run_deep
    findings, summary = run_deep(".")   # project rules over src/repro

or from the command line: ``repro-em lint [--deep] [--format json]``.

Suppress a finding in place with ``# repro-lint: disable=<rule>`` (same
line) or on the line above a statement (covers the whole block), or for
an entire file with ``# repro-lint: disable-file=<rule>`` anywhere in
it; always include a justification after the rule list.  Deep findings
accepted historically live in ``lint-baseline.json`` (see
``--update-baseline``).
"""

from repro.lint.findings import SCHEMA_VERSION, Finding, format_json, format_text
from repro.lint.registry import RULES, Rule, rule
from repro.lint.walker import DEFAULT_ROOTS, iter_python_files, run_lint

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "rule",
    "run_lint",
    "iter_python_files",
    "DEFAULT_ROOTS",
    "SCHEMA_VERSION",
    "format_text",
    "format_json",
]
