"""Inter-procedural dataflow: determinism taint and exception escapes.

Both analyses run over the :class:`~repro.lint.callgraph.CallGraph` and
compute per-function summaries to a fixpoint, so facts propagate through
helper hops (``_util`` laundering) and across modules.

**Taint** tracks values derived from non-deterministic reads:

* unseeded global randomness (``random.random()``, ``np.random.rand()``);
* wall-clock reads (``time.time()``, ``datetime.now()``, monotonic
  clocks read directly);
* process environment (``os.environ[...]``, ``os.getenv(...)``).

Labels carry provenance (where the source was read) and the chain of
functions the value travelled through, so a finding can print the whole
path from source to sink.  Resolved project calls propagate precisely
through summaries (a helper that never forwards its argument does not
launder taint); unknown calls propagate their argument labels
conservatively.

**Exception escapes** compute, per function, the set of exception type
names that may cross its boundary: explicit ``raise``, implicit
``KeyError`` from subscripting dict-typed values, and callee escapes —
minus whatever enclosing ``try`` handlers catch, using the builtin
exception hierarchy extended with project exception classes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph, CallSite
from repro.lint.symbols import FunctionSymbol, SymbolTable

__all__ = [
    "Label",
    "TaintSummary",
    "TaintAnalysis",
    "ExceptionAnalysis",
    "BUILTIN_EXC_BASES",
]

# --------------------------------------------------------------------- taint

#: module-global randomness (the shallow unseeded-rng rule's lists).
_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "getrandbits", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
}
_NP_RANDOM_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "seed", "standard_normal",
    "binomial", "beta", "poisson", "exponential",
}
_CLOCK_FNS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow", "date.today",
}


@dataclass(frozen=True)
class Label:
    """One taint fact attached to a value.

    ``kind`` is ``"source"`` for real non-determinism or ``"param"`` for
    the synthetic marker used to compute parameter→return flow.  ``via``
    is the chain of function qualnames the value travelled through.
    """

    kind: str
    detail: str
    origin: str
    via: tuple[str, ...] = ()

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.kind, self.detail, self.origin)

    def hop(self, qualname: str) -> "Label":
        if len(self.via) >= 8 or (self.via and self.via[-1] == qualname):
            return self
        return Label(self.kind, self.detail, self.origin, self.via + (qualname,))

    def describe(self) -> str:
        path = " -> ".join(self.via) if self.via else "(direct)"
        return f"{self.detail} at {self.origin}, via {path}"


#: a label set, deduped by label key (shortest hop chain wins).
LabelMap = dict


def _merge(dst: LabelMap, labels) -> bool:
    changed = False
    for lab in labels if not isinstance(labels, dict) else labels.values():
        cur = dst.get(lab.key)
        if cur is None or len(lab.via) < len(cur.via):
            dst[lab.key] = lab
            changed = True
    return changed


@dataclass
class TaintSummary:
    """What one function does with taint, seen from call sites."""

    #: source labels that may be in the return value.
    return_sources: LabelMap = field(default_factory=dict)
    #: parameter indices whose taint may flow into the return value.
    param_to_return: set = field(default_factory=set)
    #: (lineno, source labels) per return statement — sink material for
    #: rules about functions whose *results* must be deterministic.
    return_sites: list = field(default_factory=list)


class _FunctionTaint:
    """Intra-procedural pass for one function, using current summaries."""

    def __init__(self, analysis: "TaintAnalysis", fn: FunctionSymbol) -> None:
        self.analysis = analysis
        self.fn = fn
        self.mod = analysis.table.modules[fn.module]
        self.sites: dict[int, CallSite] = {
            id(site.node): site for site in analysis.graph.sites.get(fn.qualname, [])
        }
        self.locals: dict[str, LabelMap] = {}
        self.self_attrs: dict[str, LabelMap] = {}
        for i, name in enumerate(fn.params):
            self.locals[name] = {
                ("param", str(i), ""): Label("param", str(i), "")
            }
        self.return_labels: LabelMap = {}
        self.return_sites: dict[int, LabelMap] = {}

    # ------------------------------------------------------------- sources

    def _source_label(self, call: ast.Call) -> Label | None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        try:
            text = ast.unparse(func)
        except Exception:  # pragma: no cover
            return None
        origin = f"{self.fn.relpath}:{call.lineno}"
        head = text.split(".")[0]
        resolved_head = self.mod.imports.get(head, head)
        if resolved_head == "random" and func.attr in _RANDOM_FNS:
            return Label("source", f"unseeded {text}()", origin)
        if (
            resolved_head == "numpy"
            and ".random." in f".{text}."
            and func.attr in _NP_RANDOM_FNS
        ):
            return Label("source", f"unseeded {text}()", origin)
        normalized = ".".join([resolved_head, *text.split(".")[1:]])
        if normalized in _CLOCK_FNS or text in _CLOCK_FNS:
            return Label("source", f"wall-clock {text}()", origin)
        if resolved_head == "os" and func.attr in {"getenv", "environb"}:
            return Label("source", f"environment {text}()", origin)
        if text.endswith("environ.get"):
            return Label("source", f"environment {text}()", origin)
        return None

    def _environ_subscript(self, node: ast.Subscript) -> Label | None:
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "environ":
            origin = f"{self.fn.relpath}:{node.lineno}"
            return Label("source", "environment os.environ[...]", origin)
        return None

    # ----------------------------------------------------------- evaluation

    def expr_labels(self, expr: ast.expr) -> LabelMap:
        out: LabelMap = {}
        if isinstance(expr, ast.Call):
            _merge(out, self.call_labels(expr))
        elif isinstance(expr, ast.Name):
            _merge(out, self.locals.get(expr.id, {}))
        elif isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.self_attrs
            ):
                _merge(out, self.self_attrs[expr.attr])
            else:
                _merge(out, self.expr_labels(expr.value))
        elif isinstance(expr, ast.Subscript):
            env = self._environ_subscript(expr)
            if env is not None:
                _merge(out, [env])
            else:
                _merge(out, self.expr_labels(expr.value))
                _merge(out, self.expr_labels(expr.slice))
        elif isinstance(expr, (ast.Lambda,)):
            pass  # lambda bodies taint at their own call sites, not here.
        else:
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    _merge(out, self.expr_labels(child))
                elif isinstance(child, ast.comprehension):
                    _merge(out, self.expr_labels(child.iter))
                elif isinstance(child, ast.keyword):
                    _merge(out, self.expr_labels(child.value))
        return out

    def call_labels(self, call: ast.Call) -> LabelMap:
        out: LabelMap = {}
        source = self._source_label(call)
        if source is not None:
            _merge(out, [source])
            return out
        site = self.sites.get(id(call))
        arg_exprs = list(call.args) + [kw.value for kw in call.keywords]
        if site is not None and site.status == "resolved" and site.targets:
            for target in site.targets:
                summary = self.analysis.summaries.get(target)
                callee = self.analysis.table.functions.get(target)
                if summary is None or callee is None:
                    continue
                _merge(out, {k: lab.hop(target) for k, lab in
                             summary.return_sources.items()})
                for idx in summary.param_to_return:
                    arg = self._arg_for_param(callee, call, idx)
                    if arg is not None:
                        _merge(
                            out,
                            {k: lab.hop(target) for k, lab in
                             self.expr_labels(arg).items()},
                        )
            return out
        # Unknown callee (external, builtin, dynamic, unresolved): assume
        # the result may be derived from any argument or the receiver.
        for arg in arg_exprs:
            _merge(out, self.expr_labels(arg))
        if isinstance(call.func, ast.Attribute):
            _merge(out, self.expr_labels(call.func.value))
        return out

    def _arg_for_param(
        self, callee: FunctionSymbol, call: ast.Call, param_idx: int
    ) -> ast.expr | None:
        params = callee.params
        if param_idx >= len(params):
            return None
        name = params[param_idx]
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        # Bound method calls skip the self/cls slot.
        offset = 0
        if callee.is_method and params and params[0] in {"self", "cls"}:
            if not (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id
                in self.analysis.table.modules[callee.module].classes
            ):
                offset = 1
        pos = param_idx - offset
        if 0 <= pos < len(call.args):
            arg = call.args[pos]
            return None if isinstance(arg, ast.Starred) else arg
        return None

    # ------------------------------------------------------------ statements

    def run(self) -> None:
        for _ in range(6):
            if not self._visit_stmts(self.fn.node.body):
                break

    def _assign(self, target: ast.expr, labels: LabelMap) -> bool:
        changed = False
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name):
                changed |= _merge(self.locals.setdefault(leaf.id, {}), labels)
            elif (
                isinstance(leaf, ast.Attribute)
                and isinstance(leaf.value, ast.Name)
                and leaf.value.id == "self"
            ):
                changed |= _merge(
                    self.self_attrs.setdefault(leaf.attr, {}), labels
                )
        return changed

    def _visit_stmts(self, stmts: list) -> bool:
        changed = False
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                labels = self.expr_labels(stmt.value)
                for target in stmt.targets:
                    changed |= self._assign(target, labels)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                changed |= self._assign(stmt.target, self.expr_labels(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                labels = self.expr_labels(stmt.value)
                _merge(labels, self.expr_labels(_as_load(stmt.target)))
                changed |= self._assign(stmt.target, labels)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                changed |= self._assign(stmt.target, self.expr_labels(stmt.iter))
                changed |= self._visit_stmts(stmt.body)
                changed |= self._visit_stmts(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        changed |= self._assign(
                            item.optional_vars,
                            self.expr_labels(item.context_expr),
                        )
                changed |= self._visit_stmts(stmt.body)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    labels = self.expr_labels(stmt.value)
                    changed |= _merge(self.return_labels, labels)
                    per_site = self.return_sites.setdefault(stmt.lineno, {})
                    _merge(per_site, labels)
            elif isinstance(stmt, ast.Try):
                changed |= self._visit_stmts(stmt.body)
                for handler in stmt.handlers:
                    changed |= self._visit_stmts(handler.body)
                changed |= self._visit_stmts(stmt.orelse)
                changed |= self._visit_stmts(stmt.finalbody)
            elif isinstance(stmt, (ast.If, ast.While)):
                changed |= self._visit_stmts(stmt.body)
                changed |= self._visit_stmts(stmt.orelse)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                changed |= self._visit_stmts(stmt.body)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    changed |= self._visit_stmts(case.body)
        return changed

    def summary(self) -> TaintSummary:
        out = TaintSummary()
        for lab in self.return_labels.values():
            if lab.kind == "source":
                out.return_sources[lab.key] = lab
            else:
                out.param_to_return.add(int(lab.detail))
        for lineno, labels in sorted(self.return_sites.items()):
            sources = {k: v for k, v in labels.items() if v.kind == "source"}
            if sources:
                out.return_sites.append((lineno, sources))
        return out


def _as_load(target: ast.expr) -> ast.expr:
    """A Load-context copy of an assignment target (for ``x += ...``)."""
    clone = ast.parse(ast.unparse(target), mode="eval").body
    return clone


class TaintAnalysis:
    """Whole-program taint: summaries to fixpoint + per-function states."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self.summaries: dict[str, TaintSummary] = {}
        self.states: dict[str, _FunctionTaint] = {}
        self._run()

    def _run(self) -> None:
        for _ in range(10):
            changed = False
            for qualname, fn in self.table.functions.items():
                state = _FunctionTaint(self, fn)
                state.run()
                summary = state.summary()
                old = self.summaries.get(qualname)
                if (
                    old is None
                    or set(old.return_sources) != set(summary.return_sources)
                    or old.param_to_return != summary.param_to_return
                ):
                    changed = True
                self.summaries[qualname] = summary
                self.states[qualname] = state
            if not changed:
                break

    def labels_of(self, fn_qualname: str, expr: ast.expr) -> LabelMap:
        """Source labels reaching *expr* inside *fn_qualname*."""
        state = self.states.get(fn_qualname)
        if state is None:
            return {}
        return {
            k: v for k, v in state.expr_labels(expr).items() if v.kind == "source"
        }


# ----------------------------------------------------------------- exceptions

#: builtin exception → direct base (enough of the hierarchy for analysis).
BUILTIN_EXC_BASES = {
    "BaseException": None,
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "Exception",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "ProcessLookupError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "UnicodeTranslateError": "UnicodeError",
}

#: escape name for ``raise <variable>`` — unknown type, assumed uncatchable
#: by typed handlers (conservative for boundary checks).
DYNAMIC_RAISE = "BaseException"


class ExceptionAnalysis:
    """Per-function escaping exception types, to a call-graph fixpoint."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        #: project exception simple name → base simple name.
        self.project_bases: dict[str, str] = {}
        for cls in table.classes.values():
            if not cls.bases:
                continue
            base = cls.bases[0].split("[")[0].split(".")[-1]
            if self._reaches_baseexception(base, hops=0):
                self.project_bases[cls.name] = base
        #: function qualname → {exception name: provenance}.
        self.escapes: dict[str, dict[str, str]] = {}
        self._run()

    def _reaches_baseexception(self, name: str, hops: int) -> bool:
        if hops > 12:
            return False
        if name in BUILTIN_EXC_BASES:
            return True
        nxt = self.project_bases.get(name)
        if nxt is not None:
            return self._reaches_baseexception(nxt, hops + 1)
        # Not yet classified: look the class up directly.
        for cls in self.table.classes.values():
            if cls.name == name and cls.bases:
                return self._reaches_baseexception(
                    cls.bases[0].split("[")[0].split(".")[-1], hops + 1
                )
        return False

    # ------------------------------------------------------------ hierarchy

    def is_subclass(self, name: str, ancestor: str) -> bool:
        seen = set()
        current: str | None = name
        while current is not None and current not in seen:
            if current == ancestor:
                return True
            seen.add(current)
            current = self.project_bases.get(current, BUILTIN_EXC_BASES.get(current))
        return False

    def _handler_names(self, handler: ast.ExceptHandler) -> list[str]:
        if handler.type is None:
            return ["BaseException"]
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names = []
        for t in types:
            if isinstance(t, ast.Attribute):
                names.append(t.attr)
            elif isinstance(t, ast.Name):
                names.append(t.id)
        return names

    def _caught(self, handler_names: list[str], exc: str) -> bool:
        return any(self.is_subclass(exc, h) for h in handler_names)

    # -------------------------------------------------------------- fixpoint

    def _run(self) -> None:
        for _ in range(10):
            changed = False
            for qualname, fn in self.table.functions.items():
                new = _FunctionEscapes(self, fn).run()
                if set(new) != set(self.escapes.get(qualname, {"": ""})):
                    changed = True
                self.escapes[qualname] = new
            if not changed:
                break

    def escapes_of(self, qualname: str) -> dict[str, str]:
        return self.escapes.get(qualname, {})


class _FunctionEscapes:
    """Escape computation for one function body."""

    def __init__(self, analysis: ExceptionAnalysis, fn: FunctionSymbol) -> None:
        self.analysis = analysis
        self.fn = fn
        self.sites = {
            id(site.node): site
            for site in analysis.graph.sites.get(fn.qualname, [])
        }
        self._dict_locals = self._find_dict_locals()

    def _find_dict_locals(self) -> set[str]:
        """Names bound to dict values (for implicit-KeyError detection)."""
        out: set[str] = set()
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if isinstance(target, ast.Name) and self._is_dict_expr(value):
                    out.add(target.id)
        for name, ann in self.fn.param_annotations.items():
            if self._is_dict_annotation(ann):
                out.add(name)
        return out

    @staticmethod
    def _is_dict_expr(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"dict", "OrderedDict"}
        )

    @staticmethod
    def _is_dict_annotation(ann: ast.expr) -> bool:
        try:
            text = ast.unparse(ann)
        except Exception:  # pragma: no cover
            return False
        return text.split("[")[0].split(".")[-1] in {"dict", "Dict", "Mapping",
                                                     "OrderedDict"}

    def _is_dict_subscript(self, node: ast.Subscript) -> bool:
        if not isinstance(node.ctx, ast.Load):
            return False
        value = node.value
        if isinstance(value, ast.Name):
            return value.id in self._dict_locals
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.fn.cls is not None
        ):
            cls = self.analysis.table.classes.get(self.fn.cls)
            if cls is not None:
                ann = cls.attr_annotations.get(value.attr)
                if ann is not None:
                    return self._is_dict_annotation(ann)
        return False

    def run(self) -> dict[str, str]:
        return self._stmts(self.fn.node.body, reraise={})

    # ------------------------------------------------------------- visiting

    def _expr_escapes(self, expr: ast.expr) -> dict[str, str]:
        """Escapes raised by evaluating one expression (calls, subscripts)."""
        out: dict[str, str] = {}
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                site = self.sites.get(id(node))
                if site is None or site.status != "resolved":
                    continue
                for target in site.targets:
                    for name, prov in self.analysis.escapes_of(target).items():
                        out.setdefault(
                            name,
                            f"{name} from {target} (line {node.lineno}; {prov})"
                            if prov.startswith("raised")
                            else f"{name} from {target} (line {node.lineno})",
                        )
            elif isinstance(node, ast.Subscript) and self._is_dict_subscript(node):
                out.setdefault(
                    "KeyError",
                    f"KeyError from dict subscript (line {node.lineno})",
                )
        return out

    def _own_exprs(self, stmt: ast.stmt) -> list[ast.expr]:
        """The statement's direct expressions, excluding nested statements."""
        out = []
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, ast.expr))
        return out

    def _stmts(self, stmts: list, reraise: dict[str, str]) -> dict[str, str]:
        out: dict[str, str] = {}
        for stmt in stmts:
            if isinstance(stmt, ast.Raise):
                for expr in self._own_exprs(stmt):
                    out.update(self._expr_escapes(expr))
                out.update(self._raise_escapes(stmt, reraise))
            elif isinstance(stmt, ast.Try):
                out.update(self._try_escapes(stmt, reraise))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested defs raise at their own call sites.
            else:
                for expr in self._own_exprs(stmt):
                    out.update(self._expr_escapes(expr))
                for field_name, value in ast.iter_fields(stmt):
                    if isinstance(value, list) and value and isinstance(
                        value[0], ast.stmt
                    ):
                        out.update(self._stmts(value, reraise))
                    elif (
                        isinstance(value, list)
                        and value
                        and isinstance(value[0], ast.ExceptHandler)
                    ):  # pragma: no cover - handlers only appear under Try
                        pass
        return out

    def _raise_escapes(
        self, stmt: ast.Raise, reraise: dict[str, str]
    ) -> dict[str, str]:
        line = stmt.lineno
        if stmt.exc is None:
            return dict(reraise)
        exc = stmt.exc
        func = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return {DYNAMIC_RAISE: f"raised dynamically (line {line})"}
        known = (
            name in BUILTIN_EXC_BASES
            or name in self.analysis.project_bases
            or self.analysis._reaches_baseexception(name, hops=0)
        )
        if isinstance(exc, ast.Name) and not known:
            # ``raise some_variable`` — type unknown.
            return {DYNAMIC_RAISE: f"raised dynamically (line {line})"}
        return {name: f"raised at line {line}"}

    def _try_escapes(
        self, stmt: ast.Try, reraise: dict[str, str]
    ) -> dict[str, str]:
        body = self._stmts(stmt.body, reraise)
        out: dict[str, str] = {}
        caught_all: list[str] = []
        for handler in stmt.handlers:
            caught_all.extend(self.analysis._handler_names(handler))
        for name, prov in body.items():
            if not self.analysis._caught(caught_all, name):
                out[name] = prov
        for handler in stmt.handlers:
            names = self.analysis._handler_names(handler)
            # A bare ``raise`` inside the handler re-raises whatever the
            # handler swallowed from the body.
            swallowed = {
                n: p for n, p in body.items() if self.analysis._caught(names, n)
            }
            out.update(self._stmts(handler.body, reraise=swallowed))
        out.update(self._stmts(stmt.orelse, reraise))
        out.update(self._stmts(stmt.finalbody, reraise))
        return out
