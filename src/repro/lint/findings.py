"""Structured lint findings and their text/JSON renderings.

A finding pins one invariant violation to a source location.  Findings are
plain data so the CLI, CI, and tests all consume the same objects; the two
renderers are the only place formatting lives.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["Finding", "SCHEMA_VERSION", "SEVERITIES", "format_text", "format_json"]

#: version of the JSON report schema.  Bump when the payload shape
#: changes; consumers (CI annotations, dashboards) pin against this.
#: v2: ``summary`` gained the ``async`` section (context classification
#: and await/call-site resolution accounting) and an optional ``timings``
#: section (present only when timings are explicitly requested).
#: v3: ``summary`` gained the ``resources`` census (resource classes,
#: acquisition/managed sites, leak/double-close/order counts), an
#: optional ``cache`` block (hit/miss stats, present only when --cache is
#: passed), and an optional ``scope`` block (present only with
#: --changed-only --deep, reporting the analysis's true extent).
SCHEMA_VERSION = 3

#: Recognized severities, most severe first.  Both fail the lint run; the
#: distinction only signals how direct the evidence is ("error" = the rule
#: proved the violation, "warning" = a heuristic match that needs a human
#: eye or a suppression).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    #: concrete remediation ("seed the generator", "wrap in sorted(...)").
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)


def format_text(findings: list[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = []
    for f in sorted(findings, key=Finding.sort_key):
        lines.append(f"{f.path}:{f.line}: {f.severity}: [{f.rule}] {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    n = len(findings)
    lines.append(f"{n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines)


def format_json(
    findings: list[Finding], summary: dict | None = None
) -> str:
    """Machine-readable report — byte-identical across identical runs.

    Findings are sorted by (path, line, rule, message), keys are sorted,
    and nothing time- or environment-dependent enters the payload, so two
    runs over the same tree serialize to the same bytes (tested).
    ``summary`` carries run-level data (the ``--deep`` call-graph
    resolution accounting) and is omitted entirely when None.
    """
    payload: dict = {
        "schema_version": SCHEMA_VERSION,
        "findings": [
            asdict(f) for f in sorted(findings, key=Finding.sort_key)
        ],
        "count": len(findings),
    }
    if summary is not None:
        payload["summary"] = summary
    return json.dumps(payload, indent=2, sort_keys=True)
