"""Resource lifecycle: release-on-all-paths, proven over the call graph.

The reproduction is held together by resources with explicit teardown —
fsync'd journal handles, dispatch threads, executors, lazily-built
engines.  A resource that escapes every owner leaks a file descriptor or
a thread per request; a double release corrupts teardown; releasing in
the wrong order deadlocks a drain.  This module computes, once per
``--deep`` run:

**Class ownership summaries.**  A project class is a *resource class*
when some method stores a fresh resource into an instance attribute
(``self._handle = open(...)``, ``self._threads.append(thread)``) — the
property propagates through composition (a class storing a resource
class is itself one).  An attribute is *owned* when a release method
(``close``/``aclose``/``shutdown``/``stop``/``join``/``release``/
``__exit__``/``__aexit__``) releases it — directly, or element-wise by
iterating it — or when it is listed in the class's
``__shutdown_order__ = shutdown_order(...)`` declaration
(:mod:`repro.concurrency`).

**Per-function summaries**, fixpointed over the call graph: whether a
function returns a fresh resource it acquired (factory chains carry
hop-by-hop provenance, like the taint and blocking analyses), and which
parameters it sinks (releases, or stores under an owner) — so passing a
resource to a close-taking callee counts as an ownership transfer.

**Path interpretation.**  Each function body is abstract-interpreted
over its structured control flow — both branches of every ``if``, loop
bodies twice (to catch cross-iteration rebinds), ``try`` bodies with
handlers entered from the pre-``try`` state and ``finally`` applied to
every exit — tracking each binding through *live* → *released*.
Acquisitions managed by ``with``/``async with`` are released on all
paths by construction.  Violations:

* **leak** — a path reaches a function exit (fall-through, ``return``,
  explicit ``raise``) with a live resource, a live binding is rebound,
  an acquisition is discarded as a bare expression, or a resource is
  stored on ``self`` under an attribute no release method covers;
* **double close** — one path releases the same binding twice and the
  release method is not declared ``@idempotent``
  (:mod:`repro.concurrency`); builtin releases (``file.close``,
  ``Thread.join``, ``Executor.shutdown``) are idempotent by contract;
* **shutdown order** — release events in a release method contradict
  the class's declared ``shutdown_order(...)`` sequence, a declared
  attribute does not exist, or it is never released at all.

``threading.Thread(..., daemon=True)`` is exempt from acquisition —
daemon threads are explicitly fire-and-forget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from repro.lint.callgraph import CallGraph
from repro.lint.symbols import ClassSymbol, FunctionSymbol, SymbolTable

__all__ = [
    "DoubleClose",
    "Leak",
    "OrderViolation",
    "Provenance",
    "ResourceAnalysis",
]

#: method names that make a method a *release method* of its class.
_RELEASE_METHOD_NAMES = frozenset(
    {"close", "aclose", "shutdown", "stop", "join", "release",
     "__exit__", "__aexit__", "__del__"}
)

#: call/attribute names that release a resource (establish ownership).
_OWNING_RELEASES = frozenset(
    {"close", "aclose", "shutdown", "stop", "join", "release",
     "terminate", "kill", "cancel", "wait"}
)

#: additionally count as teardown *events* for shutdown-order checking
#: (draining or waking a primitive is sequencing-relevant even though it
#: does not by itself release anything).
_ORDER_EVENT_NAMES = _OWNING_RELEASES | frozenset(
    {"notify", "notify_all", "clear", "drain"}
)

#: builtin acquisition kinds and the method names that release them.
_KIND_RELEASES = {
    "file": frozenset({"close"}),
    "thread": frozenset({"join"}),
    "executor": frozenset({"shutdown"}),
    "process": frozenset({"wait", "kill", "terminate"}),
}

#: container methods that move their argument into the receiver.
_STORE_METHODS = frozenset(
    {"append", "appendleft", "add", "insert", "put", "put_nowait", "extend"}
)

#: constructors that wrap a comprehension without taking ownership away.
_CONTAINER_WRAPPERS = frozenset({"tuple", "list", "set", "frozenset"})


def _container_element(node: ast.expr) -> "ast.expr | None":
    """The per-element expression of a container-of-acquisitions.

    Recognizes a comprehension — bare, or wrapped in ``tuple()`` /
    ``list()`` / ``set()`` / ``frozenset()`` — and returns its element
    expression so the container can be treated as acquiring whatever
    each element acquires.
    """
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return node.elt
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _CONTAINER_WRAPPERS
        and len(node.args) == 1
        and not node.keywords
        and isinstance(
            node.args[0], (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        )
    ):
        return node.args[0].elt
    return None


@dataclass(frozen=True)
class Provenance:
    """Where a resource came from: kind, site, and any factory hops."""

    #: "file" | "thread" | "executor" | "process" | resource-class qualname
    kind: str
    relpath: str
    line: int
    #: hop descriptions, acquisition-last ("store = recover(...) at a.py:3").
    chain: tuple = ()

    def describe(self) -> str:
        short = self.kind.rsplit(".", 1)[-1] if "." in self.kind else self.kind
        origin = f"{short} acquired at {self.relpath}:{self.line}"
        if not self.chain:
            return origin
        return " -> ".join((*self.chain, origin))


@dataclass
class _Tracked:
    """One binding currently holding a resource on the walked path."""

    prov: Provenance
    name: str
    #: "live" | "released" | "maybe" (released on some merged path only)
    state: str = "live"
    release_line: int | None = None


@dataclass
class Leak:
    """A resource some path abandons without release or transfer."""

    fn: str
    relpath: str
    line: int
    name: str
    prov: Provenance
    #: "function exit" | "return" | "exception path" | "rebound" |
    #: "discarded" | "unowned self store"
    how: str


@dataclass
class DoubleClose:
    """One path releases the same resource twice, non-idempotently."""

    fn: str
    relpath: str
    line: int
    name: str
    prov: Provenance
    first_line: int


@dataclass
class OrderViolation:
    """A release method contradicts the declared shutdown_order."""

    cls: str
    fn: str
    relpath: str
    line: int
    message: str


@dataclass
class _FnSummary:
    """What one function does with resources, as seen by its callers."""

    #: fresh resource this function hands back to its caller, or None.
    returns: Provenance | None = None
    #: parameter names the function sinks (releases or stores-with-owner).
    sink_params: frozenset = frozenset()


@dataclass
class _ClassInfo:
    release_methods: dict[str, FunctionSymbol] = field(default_factory=dict)
    #: attrs a release method tears down (or shutdown_order declares).
    owned_attrs: set = field(default_factory=set)
    #: release method names declared @idempotent.
    idempotent: set = field(default_factory=set)
    #: attrs that hold resources (assignment or container store).
    resource_attrs: set = field(default_factory=set)


class ResourceAnalysis:
    """Ownership summaries + the release-on-all-paths interpretation."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self.leaks: list[Leak] = []
        self.double_closes: list[DoubleClose] = []
        self.order_violations: list[OrderViolation] = []
        self._class_info: dict[str, _ClassInfo] = {}
        self._resource_classes: set = set()
        self._fn_summaries: dict[str, _FnSummary] = {}
        self._sites = {
            caller: {id(site.node): site for site in sites}
            for caller, sites in graph.sites.items()
        }
        #: deterministic census counters for the ``--deep`` summary.
        self._acquisitions = 0
        self._managed = 0
        self._seen: set = set()

        self._collect_class_info()
        self._fixpoint_resource_classes()
        self._fixpoint_fn_summaries()
        self._check_all_functions()
        self._check_shutdown_orders()
        self.leaks.sort(key=lambda v: (v.relpath, v.line, v.name))
        self.double_closes.sort(key=lambda v: (v.relpath, v.line, v.name))
        self.order_violations.sort(key=lambda v: (v.relpath, v.line, v.message))

    # ----------------------------------------------------------- class pass

    def _collect_class_info(self) -> None:
        for qual, cls in self.table.classes.items():
            info = _ClassInfo()
            for name, method in cls.methods.items():
                if name in _RELEASE_METHOD_NAMES:
                    info.release_methods[name] = method
                    if any(
                        dec.split("(")[0].split(".")[-1] == "idempotent"
                        for dec in method.decorators
                    ):
                        info.idempotent.add(name)
            for method in info.release_methods.values():
                info.owned_attrs |= self._released_attrs(method)
            info.owned_attrs |= set(self.table.shutdown_order_of(qual))
            self._class_info[qual] = info

    def _released_attrs(self, fn: FunctionSymbol) -> set:
        """Self attributes a method releases, directly or element-wise."""
        return {
            attr
            for attr, _line, name in self._release_events(fn)
            if name in _OWNING_RELEASES
        }

    def _release_events(self, fn: FunctionSymbol) -> list:
        """Ordered ``(attr, line, event_name)`` teardown events in *fn*.

        Catches ``self.<a>.close()``-style direct calls, ``with
        self.<a>:``-free event names, and element-wise releases through a
        loop variable bound by ``for v in self.<a>:`` (including a bare
        ``v.join`` reference handed to an executor).
        """
        loop_vars: dict[str, str] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                attr = self._self_attr(node.iter)
                if attr is None and isinstance(node.iter, ast.Call):
                    # list(self._threads) / tuple(...) wrappers.
                    if node.iter.args:
                        attr = self._self_attr(node.iter.args[0])
                if attr is not None and isinstance(node.target, ast.Name):
                    loop_vars[node.target.id] = attr
        events = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _ORDER_EVENT_NAMES:
                continue
            recv = node.value
            attr = self._self_attr(recv)
            if attr is None and isinstance(recv, ast.Name):
                attr = loop_vars.get(recv.id)
            if attr is not None:
                events.append((attr, node.lineno, node.attr))
        events.sort(key=lambda e: (e[1], e[0]))
        return events

    @staticmethod
    def _self_attr(expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _fixpoint_resource_classes(self) -> None:
        """Classes that (transitively) hold resources in attributes."""
        for _ in range(len(self.table.classes) + 1):
            changed = False
            for qual, cls in self.table.classes.items():
                info = self._class_info[qual]
                for method in cls.methods.values():
                    for attr in self._stored_resource_attrs(method):
                        if attr not in info.resource_attrs:
                            info.resource_attrs.add(attr)
                            changed = True
                if info.resource_attrs and qual not in self._resource_classes:
                    self._resource_classes.add(qual)
                    changed = True
            if not changed:
                break

    def _stored_resource_attrs(self, fn: FunctionSymbol):
        """Attrs *fn* assigns (or container-stores) a fresh resource into."""
        acquired_locals: set = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                prov = self._acquisition_of(fn, value)
                if isinstance(target, ast.Name):
                    if prov is not None:
                        acquired_locals.add(target.id)
                else:
                    attr = self._self_attr(target)
                    if attr is not None and (
                        prov is not None
                        or (
                            isinstance(value, ast.Name)
                            and value.id in acquired_locals
                        )
                    ):
                        yield attr
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _STORE_METHODS and node.args:
                    attr = self._self_attr(node.func.value)
                    arg = node.args[0]
                    if attr is not None and (
                        (isinstance(arg, ast.Name) and arg.id in acquired_locals)
                        or self._acquisition_of(fn, arg) is not None
                    ):
                        yield attr

    # -------------------------------------------------------- acquisitions

    def _site_for(self, fn: FunctionSymbol, call: ast.Call):
        return self._sites.get(fn.qualname, {}).get(id(call))

    def _acquisition_of(
        self, fn: FunctionSymbol, node: ast.expr
    ) -> Provenance | None:
        """Provenance when *node* acquires a fresh resource, else None."""
        if isinstance(node, ast.Await):
            node = node.value
        element = _container_element(node)
        if element is not None:
            # A container built from per-element acquisitions owns every
            # element: ``self._shards = tuple(Shard(i) for i in ...)`` is
            # an acquisition exactly like ``self._shard = Shard(0)``, and
            # flows through the same self-store / shutdown-order checks.
            return self._acquisition_of(fn, element)
        if not isinstance(node, ast.Call):
            return None
        site = self._site_for(fn, node)
        if site is not None and site.status == "resolved":
            for target in site.targets:
                owner, _, leaf = target.rpartition(".")
                if leaf == "__init__" and owner in self._resource_classes:
                    return Provenance(
                        kind=owner, relpath=fn.relpath, line=node.lineno
                    )
                summary = self._fn_summaries.get(target)
                if summary is not None and summary.returns is not None:
                    got = summary.returns
                    hop = (
                        f"{site.callee_text}(...) at {fn.relpath}:{node.lineno}"
                    )
                    return replace(got, chain=(hop, *got.chain))
            return None
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else getattr(func, "id", "")
        )
        kind = None
        if name == "open":
            kind = "file"
        elif name == "Thread":
            daemon = any(
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            kind = None if daemon else "thread"
        elif name in ("ThreadPoolExecutor", "ProcessPoolExecutor"):
            kind = "executor"
        elif name == "Popen":
            kind = "process"
        if kind is None:
            return None
        return Provenance(kind=kind, relpath=fn.relpath, line=node.lineno)

    def _release_names_for(self, prov: Provenance) -> frozenset:
        builtin = _KIND_RELEASES.get(prov.kind)
        if builtin is not None:
            return builtin
        info = self._class_info.get(prov.kind)
        if info is not None and info.release_methods:
            return frozenset(info.release_methods)
        return _OWNING_RELEASES

    def _release_is_idempotent(self, prov: Provenance, method: str) -> bool:
        if prov.kind in _KIND_RELEASES:
            return True  # file.close/Thread.join/shutdown are idempotent.
        info = self._class_info.get(prov.kind)
        return info is not None and method in info.idempotent

    # ------------------------------------------------------- fn summaries

    def _fixpoint_fn_summaries(self) -> None:
        for qualname in self.table.functions:
            self._fn_summaries[qualname] = _FnSummary()
        for _ in range(10):
            changed = False
            for qualname, fn in self.table.functions.items():
                summary = self._summarize_fn(fn)
                if summary != self._fn_summaries[qualname]:
                    self._fn_summaries[qualname] = summary
                    changed = True
            if not changed:
                break

    def _summarize_fn(self, fn: FunctionSymbol) -> _FnSummary:
        returns: Provenance | None = None
        acquired_locals: dict[str, Provenance] = {}
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                prov = self._acquisition_of(fn, node.value)
                if prov is not None:
                    acquired_locals[node.targets[0].id] = prov
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            prov = self._acquisition_of(fn, node.value)
            if prov is None and isinstance(node.value, ast.Name):
                prov = acquired_locals.get(node.value.id)
            if prov is not None:
                returns = prov
                break
        sinks = set()
        params = set(fn.params)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                recv = node.func.value
                if (
                    isinstance(recv, ast.Name)
                    and recv.id in params
                    and node.func.attr in _OWNING_RELEASES
                ):
                    sinks.add(recv.id)
                if node.func.attr in _STORE_METHODS and node.args:
                    arg = node.args[0]
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id in params
                        and self._self_attr(node.func.value) is not None
                    ):
                        sinks.add(arg.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                if (
                    self._self_attr(node.targets[0]) is not None
                    and isinstance(node.value, ast.Name)
                    and node.value.id in params
                ):
                    sinks.add(node.value.id)
        # Propagate: a param handed to a callee that sinks it is sunk here.
        for site in self.graph.sites.get(fn.qualname, []):
            if site.status != "resolved":
                continue
            for target in site.targets:
                callee = self.table.functions.get(target)
                summary = self._fn_summaries.get(target)
                if callee is None or summary is None or not summary.sink_params:
                    continue
                offset = 1 if callee.params[:1] in (["self"], ["cls"]) else 0
                for i, arg in enumerate(site.node.args):
                    if not (isinstance(arg, ast.Name) and arg.id in params):
                        continue
                    idx = i + offset
                    if idx < len(callee.params) and (
                        callee.params[idx] in summary.sink_params
                    ):
                        sinks.add(arg.id)
                for kw in site.node.keywords:
                    if (
                        kw.arg in summary.sink_params
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in params
                    ):
                        sinks.add(kw.value.id)
        return _FnSummary(returns=returns, sink_params=frozenset(sinks))

    # ----------------------------------------------------------- path walk

    def _check_all_functions(self) -> None:
        for qualname, fn in self.table.functions.items():
            self._check_function(fn, fn.node.body)

    def _check_function(self, fn: FunctionSymbol, body: list) -> None:
        env: dict[str, _Tracked] = {}
        fell_through = self._walk_stmts(fn, body, env, frozenset())
        if fell_through:
            self._leak_live(fn, env, line=fn.node.end_lineno or fn.line,
                            how="function exit")

    def _leak_live(
        self, fn: FunctionSymbol, env: dict, line: int, how: str,
        keep: str | None = None,
        protected: frozenset = frozenset(),
    ) -> None:
        for name, tracked in sorted(env.items()):
            if name == keep or tracked.state != "live":
                continue
            if name in protected:
                # An enclosing finally releases this binding on every
                # exit, including this one.
                continue
            self._emit_leak(fn, line, name, tracked.prov, how)

    def _emit_leak(
        self, fn: FunctionSymbol, line: int, name: str,
        prov: Provenance, how: str,
    ) -> None:
        key = ("leak", fn.qualname, line, name, prov.line, how)
        if key in self._seen:
            return
        self._seen.add(key)
        self.leaks.append(
            Leak(fn=fn.qualname, relpath=fn.relpath, line=line, name=name,
                 prov=prov, how=how)
        )

    def _walk_stmts(
        self,
        fn: FunctionSymbol,
        stmts: list,
        env: dict,
        protected: frozenset = frozenset(),
    ) -> bool:
        """Interpret *stmts* over *env*; returns whether control falls out.

        *protected* holds binding names an enclosing ``finally`` releases
        on every exit — terminal leak checks skip them.
        """
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested def: its body runs at its own call sites with a
                # fresh frame; findings are attributed to the enclosing fn.
                self._check_function(fn, stmt.body)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.Return):
                keep = None
                if stmt.value is not None:
                    self._scan_expr(fn, stmt.value, env, consume_top=True)
                    if isinstance(stmt.value, ast.Name):
                        keep = stmt.value.id
                        env.pop(keep, None)  # ownership moves to the caller.
                self._leak_live(
                    fn, env, stmt.lineno, "return",
                    keep=keep, protected=protected,
                )
                return False
            if isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    self._scan_expr(fn, stmt.exc, env)
                self._leak_live(
                    fn, env, stmt.lineno, "exception path",
                    protected=protected,
                )
                return False
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return True
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._walk_assign(fn, stmt, env)
            elif isinstance(stmt, ast.Expr):
                self._scan_expr(fn, stmt.value, env)
            elif isinstance(stmt, ast.If):
                self._scan_expr(fn, stmt.test, env)
                then_env = _copy_env(env)
                then_falls = self._walk_stmts(fn, stmt.body, then_env, protected)
                else_env = _copy_env(env)
                else_falls = self._walk_stmts(
                    fn, stmt.orelse, else_env, protected
                )
                if then_falls and else_falls:
                    _merge_env(env, then_env, else_env)
                elif then_falls:
                    env.clear()
                    env.update(then_env)
                elif else_falls:
                    env.clear()
                    env.update(else_env)
                else:
                    return False
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                if isinstance(stmt, ast.While):
                    self._scan_expr(fn, stmt.test, env)
                else:
                    self._scan_expr(fn, stmt.iter, env)
                # Two passes over the body: the second sees bindings the
                # first left live, catching cross-iteration rebind leaks.
                loop_env = _copy_env(env)
                self._walk_stmts(fn, stmt.body, loop_env, protected)
                self._walk_stmts(fn, stmt.body, loop_env, protected)
                self._walk_stmts(fn, stmt.orelse, loop_env, protected)
                _merge_env(env, env, loop_env)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    prov = self._acquisition_of(fn, item.context_expr)
                    if prov is not None:
                        self._acquisitions += 1
                        self._managed += 1  # with releases on all paths.
                        continue
                    if isinstance(item.context_expr, ast.Name):
                        tracked = env.get(item.context_expr.id)
                        if tracked is not None and tracked.state == "live":
                            # `with handle:` — the with owns it from here.
                            tracked.state = "released"
                            tracked.release_line = stmt.lineno
                        continue
                    self._scan_expr(fn, item.context_expr, env)
                if not self._walk_stmts(fn, stmt.body, env, protected):
                    return False
            elif isinstance(stmt, ast.Try):
                # Bindings the finally releases are safe on *every* exit
                # from the body and handlers, including return/raise.
                inner = protected | self._finally_release_names(
                    stmt.finalbody
                )
                pre = _copy_env(env)
                body_env = _copy_env(env)
                body_falls = self._walk_stmts(fn, stmt.body, body_env, inner)
                outs = [body_env] if body_falls else []
                any_handler_falls = False
                for handler in stmt.handlers:
                    # Handlers run from (approximately) the pre-try state:
                    # the body may have raised before any acquisition.
                    h_env = _copy_env(pre)
                    if self._walk_stmts(fn, handler.body, h_env, inner):
                        any_handler_falls = True
                        outs.append(h_env)
                if body_falls:
                    outs2 = self._walk_stmts(
                        fn, stmt.orelse, body_env, inner
                    )
                    if not outs2:
                        outs = [e for e in outs if e is not body_env]
                if not outs:
                    # Every path out of the try terminates; finally still
                    # runs, over the body's state.
                    self._walk_stmts(fn, stmt.finalbody, body_env, protected)
                    return False
                merged = outs[0]
                for other in outs[1:]:
                    _merge_env(merged, merged, other)
                if not self._walk_stmts(fn, stmt.finalbody, merged, protected):
                    return False
                env.clear()
                env.update(merged)
                if not body_falls and not any_handler_falls:
                    return False
            else:
                for value in ast.iter_child_nodes(stmt):
                    if isinstance(value, ast.expr):
                        self._scan_expr(fn, value, env)
        return True

    @staticmethod
    def _finally_release_names(finalbody: list) -> frozenset:
        """Local names a ``finally`` block releases on every exit.

        Catches ``x.close()``-style calls (any owning release name, under
        any guard the block contains) and ``with x:`` items.  Being
        generous here only suppresses leak reports for bindings the
        finally does in fact dispose of.
        """
        names = set()
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in _OWNING_RELEASES
                    and isinstance(node.value, ast.Name)
                ):
                    names.add(node.value.id)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if isinstance(item.context_expr, ast.Name):
                            names.add(item.context_expr.id)
        return frozenset(names)

    def _walk_assign(self, fn: FunctionSymbol, stmt: ast.stmt, env: dict) -> None:
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(fn, stmt.value, env)
            return
        target = (
            stmt.targets[0]
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            else getattr(stmt, "target", None)
        )
        value = stmt.value
        if value is None:
            return
        prov = self._acquisition_of(fn, value)
        if prov is None:
            self._scan_expr(fn, value, env)
        else:
            self._acquisitions += 1
        if isinstance(target, ast.Name):
            prior = env.get(target.id)
            if prior is not None and prior.state == "live":
                self._emit_leak(
                    fn, stmt.lineno, target.id, prior.prov, "rebound"
                )
            if prov is not None:
                env[target.id] = _Tracked(prov=prov, name=target.id)
            else:
                env.pop(target.id, None)
            return
        attr = self._self_attr(target) if target is not None else None
        if attr is None and isinstance(target, ast.Subscript):
            # Element store into a container on self (``self._shards[i] =
            # store``) transfers ownership to the container's attribute,
            # exactly like rebinding the attribute itself would.
            attr = self._self_attr(target.value)
        if attr is not None:
            moved = prov
            if moved is None and isinstance(value, ast.Name):
                tracked = env.get(value.id)
                if tracked is not None and tracked.state == "live":
                    moved = tracked.prov
                    env.pop(value.id)  # ownership moves onto self.
            if moved is not None:
                self._check_self_store(fn, stmt.lineno, attr, moved)
            return
        if prov is not None:
            # Tuple targets, subscripts, ...: assume the container owns it.
            return

    def _check_self_store(
        self, fn: FunctionSymbol, line: int, attr: str, prov: Provenance
    ) -> None:
        """Storing a fresh resource on self needs a declared owner."""
        if fn.cls is None:
            return
        info = self._class_info.get(fn.cls)
        owned = set() if info is None else info.owned_attrs
        for base in self.table.base_classes(self.table.classes[fn.cls]):
            base_info = self._class_info.get(base)
            if base_info is not None:
                owned |= base_info.owned_attrs
        if attr in owned:
            return
        self._emit_leak(fn, line, f"self.{attr}", prov, "unowned self store")

    def _scan_expr(
        self,
        fn: FunctionSymbol,
        expr: ast.expr,
        env: dict,
        consume_top: bool = False,
    ) -> None:
        """Releases, transfers, and discarded acquisitions inside *expr*."""
        for node in _walk_outside_lambdas(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Release call on a tracked binding: x.close() / t.join().
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                tracked = env.get(func.value.id)
                if tracked is not None:
                    if func.attr in self._release_names_for(tracked.prov):
                        self._record_release(fn, node.lineno, tracked, func.attr)
                        continue
            # A live binding handed to a callee transfers unless the
            # callee is resolved and provably does not sink it.
            self._transfer_args(fn, node, env)
            # Fresh acquisition used as a bare expression or receiver.
            prov = self._acquisition_of(fn, node)
            if prov is not None:
                self._acquisitions += 1
                if not (consume_top and node is expr):
                    self._emit_leak(
                        fn, node.lineno, "<anonymous>", prov, "discarded"
                    )

    def _record_release(
        self, fn: FunctionSymbol, line: int, tracked: _Tracked, method: str
    ) -> None:
        if tracked.state == "released" and not self._release_is_idempotent(
            tracked.prov, method
        ):
            key = ("double", fn.qualname, line, tracked.name)
            if key not in self._seen:
                self._seen.add(key)
                self.double_closes.append(
                    DoubleClose(
                        fn=fn.qualname,
                        relpath=fn.relpath,
                        line=line,
                        name=tracked.name,
                        prov=tracked.prov,
                        first_line=tracked.release_line or line,
                    )
                )
            return
        if tracked.state != "released":
            tracked.state = "released"
            tracked.release_line = line

    def _transfer_args(
        self, fn: FunctionSymbol, call: ast.Call, env: dict
    ) -> None:
        live_args = [
            (i, arg.id)
            for i, arg in enumerate(call.args)
            if isinstance(arg, ast.Name)
            and arg.id in env
            and env[arg.id].state == "live"
        ]
        live_kwargs = [
            (kw.arg, kw.value.id)
            for kw in call.keywords
            if kw.arg is not None
            and isinstance(kw.value, ast.Name)
            and kw.value.id in env
            and env[kw.value.id].state == "live"
        ]
        if not live_args and not live_kwargs:
            return
        site = self._site_for(fn, call)
        if site is not None and site.status == "resolved" and site.targets:
            # Resolved: transfer only the params the callee actually sinks.
            for target in site.targets:
                callee = self.table.functions.get(target)
                summary = self._fn_summaries.get(target)
                if callee is None or summary is None:
                    continue
                offset = 1 if callee.params[:1] in (["self"], ["cls"]) else 0
                for i, name in live_args:
                    idx = i + offset
                    if idx < len(callee.params) and (
                        callee.params[idx] in summary.sink_params
                    ):
                        env.pop(name, None)
                for kw_name, name in live_kwargs:
                    if kw_name in summary.sink_params:
                        env.pop(name, None)
            return
        # Unresolved / builtin / dynamic callee: benefit of the doubt —
        # the callee (or container) is assumed to take ownership.
        for _, name in live_args:
            env.pop(name, None)
        for _, name in live_kwargs:
            env.pop(name, None)

    # ------------------------------------------------------ shutdown order

    def _check_shutdown_orders(self) -> None:
        for qual in sorted(self.table.classes):
            cls = self.table.classes[qual]
            # Only check classes declaring their own order; inherited
            # declarations are checked on the declaring class.
            declared = cls.shutdown_order
            if not declared:
                continue
            info = self._class_info.get(qual, _ClassInfo())
            known_attrs = (
                set(cls.attr_types)
                | set(cls.attr_annotations)
                | cls.lock_attrs
            )
            for attr in declared:
                if attr not in known_attrs:
                    self._order_violation(
                        cls, cls.line,
                        f"shutdown_order names unknown attribute {attr!r}",
                    )
            rank = {attr: i for i, attr in enumerate(declared)}
            released_somewhere: set = set()
            for method in sorted(
                info.release_methods.values(), key=lambda m: m.line
            ):
                events = [
                    (attr, line, name)
                    for attr, line, name in self._release_events(method)
                    if attr in rank
                ]
                released_somewhere |= {attr for attr, _, _ in events}
                max_rank_seen = -1
                max_attr = ""
                for attr, line, name in events:
                    if rank[attr] < max_rank_seen:
                        self._order_violation(
                            cls, line,
                            f"{method.name} releases {attr!r} "
                            f"({name}) after {max_attr!r}, but "
                            "shutdown_order declares "
                            f"{' -> '.join(declared)}",
                            fn=method,
                        )
                    elif rank[attr] > max_rank_seen:
                        max_rank_seen = rank[attr]
                        max_attr = attr
            if info.release_methods:
                for attr in declared:
                    if attr in known_attrs and attr not in released_somewhere:
                        self._order_violation(
                            cls, cls.line,
                            f"shutdown_order declares {attr!r} but no "
                            "release method ever releases it",
                        )

    def _order_violation(
        self,
        cls: ClassSymbol,
        line: int,
        message: str,
        fn: FunctionSymbol | None = None,
    ) -> None:
        self.order_violations.append(
            OrderViolation(
                cls=cls.qualname,
                fn=fn.qualname if fn is not None else cls.qualname,
                relpath=cls.relpath,
                line=line,
                message=message,
            )
        )

    # ------------------------------------------------------------- summary

    def summary(self) -> dict[str, object]:
        """Resource census for the ``--deep`` JSON summary."""
        return {
            "resource_classes": len(self._resource_classes),
            "owned_attrs": sum(
                len(info.owned_attrs) for info in self._class_info.values()
            ),
            "acquisition_sites": self._acquisitions,
            "managed_sites": self._managed,
            "declared_orders": sum(
                1 for c in self.table.classes.values() if c.shutdown_order
            ),
            "leaks": len(self.leaks),
            "double_closes": len(self.double_closes),
            "order_violations": len(self.order_violations),
        }


def _copy_env(env: dict) -> dict:
    return {name: replace(tracked) for name, tracked in env.items()}


def _merge_env(into: dict, left: dict, right: dict) -> None:
    """Join two branch states: live wins over released (as ``maybe``)."""
    merged: dict[str, _Tracked] = {}
    for name in set(left) | set(right):
        a, b = left.get(name), right.get(name)
        if a is None or b is None:
            keep = a if a is not None else b
            # Dropped on one branch (transferred): keep the survivor but
            # downgrade a live state — some path already disposed of it.
            merged[name] = replace(keep)
        elif a.state == b.state:
            merged[name] = replace(a)
        else:
            states = {a.state, b.state}
            pick = replace(a if a.state == "live" else b)
            if states == {"live", "released"}:
                pick.state = "maybe"
                pick.release_line = (
                    a.release_line
                    if a.release_line is not None
                    else b.release_line
                )
            merged[name] = pick
    into.clear()
    into.update(merged)


def _walk_outside_lambdas(expr: ast.expr):
    """Walk an expression without entering lambda/comprehension bodies'
    function scopes (lambdas execute at their own call sites)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
