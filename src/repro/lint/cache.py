"""Incremental analysis cache for ``--deep``.

The deep analyzer is whole-program: its fixpoints (locks, exceptions,
async contexts, resources) run over every function at once, so there is
no sound way to re-analyze "just the changed file" — a leaf edit can
flip a caller's execution context three modules away, and Protocol
fan-out creates dependencies the import graph never sees.  What *can* be
reused safely:

* **Per-file parse trees**, keyed by content hash.  A file whose bytes
  are unchanged re-loads its pickled AST instead of re-parsing
  (:meth:`AnalysisCache.tree_loader` plugs into ``SymbolTable.build``).
* **The whole analysis result**, keyed by the dependency fingerprint of
  every file plus the active rule set.  A file's *dependency
  fingerprint* hashes its own content digest together with the digests
  of everything it (transitively) imports; when every fingerprint
  matches the cached run, no analyzed code changed and the cached
  findings and summary are returned verbatim — byte-identical by
  construction, at snapshot-hashing cost.  This is the warm path the
  bench gate measures.

Invalidation is dependency-aware over the import graph: editing
``faults/journal.py`` flips the fingerprint of every transitive importer
(``resolve/incremental.py``, ``faults/harness.py``, ...) but leaves
unrelated files' fingerprints — and their cached parse trees — intact.
:meth:`AnalysisCache.stale_files` exposes exactly that dependent set,
which is what makes ``--changed-only --deep`` honest: the summary
reports how far a change actually reaches.  Editing the analyzer
invalidates everything automatically, because ``src/repro/lint`` is
itself part of the analyzed tree.

Anything unreadable in the cache directory (truncated pickle, corrupted
manifest, wrong format version) degrades to a miss, never an error: the
cache can be deleted at any time.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.symbols import iter_package_files

__all__ = ["AnalysisCache", "Snapshot", "take_snapshot"]

#: bump when the on-disk layout or keying scheme changes.
CACHE_FORMAT = 1

#: one import per line is all the codebase uses; indented matches catch
#: function-local imports (``from repro.faults.journal import ...``).
_IMPORT_RE = re.compile(
    r"^\s*(?:from\s+([A-Za-z_][\w.]*)\s+import\s|import\s+(.+))", re.MULTILINE
)


@dataclass
class FileState:
    """One analyzed file as the cache sees it."""

    relpath: str
    module: str
    path: Path
    source: str
    #: sha256 of the file's bytes.
    digest: str
    #: sha256 of own digest + every transitive import's digest.
    dep_fingerprint: str = ""
    #: modules this file imports (restricted to the analyzed tree).
    imports: tuple = ()


@dataclass
class Snapshot:
    """Content digests + import graph of the analyzed tree, pre-analysis."""

    files: dict = field(default_factory=dict)  # relpath -> FileState
    by_module: dict = field(default_factory=dict)  # module -> relpath

    def fingerprint(self) -> str:
        """Digest of the whole tree's dependency fingerprints."""
        h = hashlib.sha256()
        for relpath in sorted(self.files):
            state = self.files[relpath]
            h.update(relpath.encode())
            h.update(state.dep_fingerprint.encode())
        return h.hexdigest()

    def dependents_of(self, relpaths) -> set:
        """*relpaths* plus everything that transitively imports them."""
        reverse: dict[str, set] = {rel: set() for rel in self.files}
        for rel, state in self.files.items():
            for mod in state.imports:
                target = self.by_module.get(mod)
                if target is not None:
                    reverse[target].add(rel)
        stale = set()
        frontier = [rel for rel in relpaths if rel in self.files]
        while frontier:
            rel = frontier.pop()
            if rel in stale:
                continue
            stale.add(rel)
            frontier.extend(reverse.get(rel, ()))
        return stale


def _imported_modules(source: str, known_modules) -> tuple:
    """In-tree modules *source* imports, resolved to their defining file.

    ``from repro.resolve import incremental`` names either a module or a
    symbol in ``repro.resolve``; both candidates are checked against the
    known set.  Dotted imports also depend on every ancestor package.
    """
    found = set()

    def add(dotted: str) -> None:
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in known_modules:
                found.add(candidate)

    for match in _IMPORT_RE.finditer(source):
        if match.group(1):
            add(match.group(1))
        else:
            for clause in match.group(2).split(","):
                name = clause.strip().split(" as ")[0].strip()
                if name:
                    add(name)
    return tuple(sorted(found))


def take_snapshot(
    root: Path | str, package_dirs: tuple[str, ...]
) -> Snapshot:
    """Hash every analyzed file and fingerprint the import graph.

    Mirrors ``SymbolTable.build``'s enumeration exactly — same package
    dirs, same module naming — so a cache hit covers precisely the file
    set the analysis would have read.
    """
    root = Path(root)
    snap = Snapshot()
    for package_dir in package_dirs:
        pkg_path = (root / package_dir).resolve()
        base = pkg_path.parent
        for path in iter_package_files(pkg_path):
            parts = list(path.relative_to(base).with_suffix("").parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            module = ".".join(parts)
            try:
                relpath = path.relative_to(root.resolve()).as_posix()
            except ValueError:
                relpath = path.as_posix()
            source = path.read_text(encoding="utf-8")
            snap.files[relpath] = FileState(
                relpath=relpath,
                module=module,
                path=path,
                source=source,
                digest=hashlib.sha256(source.encode()).hexdigest(),
            )
            snap.by_module[module] = relpath

    for state in snap.files.values():
        state.imports = _imported_modules(state.source, snap.by_module)

    # Transitive dependency closure (BFS per file: cycle-safe, and the
    # tree is ~120 files — quadratic worst case is still instant).
    for state in snap.files.values():
        seen: set[str] = set()
        frontier = [state.module]
        while frontier:
            mod = frontier.pop()
            if mod in seen:
                continue
            seen.add(mod)
            rel = snap.by_module.get(mod)
            if rel is not None:
                frontier.extend(snap.files[rel].imports)
        h = hashlib.sha256(state.digest.encode())
        for mod in sorted(seen - {state.module}):
            rel = snap.by_module.get(mod)
            if rel is not None:
                h.update(mod.encode())
                h.update(snap.files[rel].digest.encode())
        state.dep_fingerprint = h.hexdigest()
    return snap


class AnalysisCache:
    """On-disk cache directory; see the module docstring for the model."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.trees_dir = self.directory / "trees"
        self.manifest_path = self.directory / "manifest.json"
        #: counters surfaced in the ``--deep`` summary's ``cache`` block.
        self.stats = {"tree_hits": 0, "tree_misses": 0, "deep_hit": False}

    # ------------------------------------------------------------- manifest

    def _load_manifest(self) -> dict:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(manifest, dict):
            return {}
        if manifest.get("format") != CACHE_FORMAT:
            return {}
        return manifest

    # ------------------------------------------------------------ tree reuse

    def tree_loader(self, snapshot: Snapshot):
        """A ``SymbolTable.build`` hook reusing pickled ASTs by digest.

        On a miss the loader parses, stores, and returns the tree itself
        (so fresh parses are cached for the next run); syntax errors fall
        back to ``None`` and the builder's own error path.
        """

        def load(relpath: str, source: str) -> ast.Module | None:
            state = snapshot.files.get(relpath)
            if state is None or state.source != source:
                digest = hashlib.sha256(source.encode()).hexdigest()
            else:
                digest = state.digest
            cached = self.trees_dir / f"{digest}.pkl"
            try:
                with open(cached, "rb") as handle:
                    tree = pickle.load(handle)
                if isinstance(tree, ast.Module):
                    self.stats["tree_hits"] += 1
                    return tree
            except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                    AttributeError, ImportError):
                pass
            self.stats["tree_misses"] += 1
            try:
                tree = ast.parse(source)
            except SyntaxError:
                return None
            try:
                self.trees_dir.mkdir(parents=True, exist_ok=True)
                tmp = cached.with_suffix(".tmp")
                with open(tmp, "wb") as handle:
                    pickle.dump(tree, handle, protocol=pickle.HIGHEST_PROTOCOL)
                tmp.replace(cached)
            except OSError:
                pass  # read-only cache dir: still usable, just cold.
            return tree

        return load

    # ------------------------------------------------------------ deep entry

    @staticmethod
    def deep_key(snapshot: Snapshot, rules) -> str:
        """Cache key: tree fingerprint + active rule ids + format."""
        h = hashlib.sha256()
        h.update(f"format={CACHE_FORMAT}".encode())
        h.update(snapshot.fingerprint().encode())
        for rule_id in sorted(rules if rules is not None else ["<all>"]):
            h.update(rule_id.encode())
        return h.hexdigest()

    def load_deep(self, key: str):
        """Cached ``(findings, summary)`` for *key*, or None."""
        manifest = self._load_manifest()
        entry = manifest.get("deep")
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        try:
            findings = [Finding(**f) for f in entry["findings"]]
            summary = entry["summary"]
        except (KeyError, TypeError):
            return None
        if not isinstance(summary, dict):
            return None
        self.stats["deep_hit"] = True
        return findings, summary

    def store_deep(
        self,
        key: str,
        findings,
        summary: dict,
        snapshot: Snapshot,
    ) -> None:
        """Persist the analysis result and prune stale pickled trees."""
        manifest = {
            "format": CACHE_FORMAT,
            "deep": {
                "key": key,
                "findings": [vars(f) for f in findings],
                "summary": summary,
            },
            "files": {
                rel: {
                    "digest": state.digest,
                    "dep_fingerprint": state.dep_fingerprint,
                }
                for rel, state in sorted(snapshot.files.items())
            },
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.manifest_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(manifest, sort_keys=True, indent=1))
            tmp.replace(self.manifest_path)
        except OSError:
            return
        live = {state.digest for state in snapshot.files.values()}
        try:
            for stale in self.trees_dir.glob("*.pkl"):
                if stale.stem not in live:
                    stale.unlink(missing_ok=True)
        except OSError:
            pass

    # -------------------------------------------------------- change scoping

    def stale_files(self, snapshot: Snapshot, changed) -> list:
        """Files whose analysis a change to *changed* can affect.

        The changed files themselves plus every transitive importer —
        the dependency-aware invalidation set the summary reports for
        ``--changed-only --deep``.  (The global fixpoints still run over
        the whole tree; this is the honest blast radius, not a pruning.)
        """
        in_tree = [rel for rel in changed if rel in snapshot.files]
        return sorted(snapshot.dependents_of(in_tree))
