"""Parseable-marker safety for declared answer-phrase artifacts.

The evaluator trusts :func:`repro.llm.parsing.parse_yes_no` to classify
model responses.  Response text the simulator *emits* therefore carries an
implicit contract: hedge phrases must contain no parseable yes/no marker,
affirmative phrases must parse affirmative, negative phrases negative.
PR 1 shipped a hedge ("...denote the same entity...") that parsed as
"yes" and silently skewed every zero-shot F1 — this rule re-checks that
contract on every declared phrase table, at lint time, with the *actual*
parser.

Detection is by declaration-name intent: module-level assignments in
``repro.llm`` / ``repro.prompts`` whose name contains ``HEDGE`` must hold
strings that parse to None; names with a ``YES`` (``NO``) component must
parse True (False).  Strings inside calls (e.g. ``re.compile`` patterns)
are not answer text and are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

__all__ = ["intent_for_name"]

_SCOPES = ("repro/llm", "repro/prompts")


def intent_for_name(name: str) -> tuple[bool, bool | None]:
    """(is_answer_table, expected parse) for an assignment target name."""
    parts = set(name.upper().replace("-", "_").split("_"))
    if "HEDGE" in parts or "HEDGES" in parts:
        return True, None
    if "YES" in parts:
        return True, True
    if "NO" in parts:
        return True, False
    return False, None


def _string_constants(value: ast.expr) -> Iterator[ast.Constant]:
    """String literals directly inside a declared table (not inside calls)."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        yield value
    elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        for element in value.elts:
            yield from _string_constants(element)
    elif isinstance(value, ast.Dict):
        for element in value.values:
            if element is not None:
                yield from _string_constants(element)


def _describe(expected: bool | None) -> str:
    return {None: "no marker (hedge)", True: "'yes'", False: "'no'"}[expected]


@rule(
    "marker-safety",
    family="markers",
    scope="file",
    description="declared answer phrases must classify as their intent "
    "under parse_yes_no",
)
def check_marker_safety(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.in_package(*_SCOPES):
        return
    from repro.llm.parsing import parse_yes_no

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            is_table, expected = intent_for_name(target.id)
            if not is_table:
                continue
            for constant in _string_constants(value):
                got = parse_yes_no(constant.value)
                if got is expected:
                    continue
                excerpt = constant.value.replace("\n", " ")
                if len(excerpt) > 60:
                    excerpt = excerpt[:57] + "..."
                yield ctx.finding(
                    "marker-safety", "error", constant,
                    f"{target.id} entry parses as {_describe(got)} but its "
                    f"name declares {_describe(expected)}: {excerpt!r}",
                    hint="reword the phrase (or rename the table) so "
                    "parse_yes_no agrees with the declared intent",
                )
