"""Determinism rules.

Every number in the reproduction (F1, transfer gains, sensitivity stds)
is only meaningful if two runs of the same command produce the same bits.
These rules flag the ambient-state entry points that silently break that:
process-global RNGs, wall-clock reads, salted ``hash``/set ordering, and
environment lookups outside the config layer.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

__all__ = []

#: stdlib ``random`` module functions that draw from the process-global,
#: time-seeded generator.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "getrandbits", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
}

#: legacy numpy global-state draws (``np.random.rand`` etc.).  Seeded
#: ``default_rng(seed)`` / ``Generator`` objects are the sanctioned path.
_NUMPY_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "seed", "standard_normal",
    "binomial", "beta", "poisson", "exponential",
}

_AMBIENT_CLOCK_RE = re.compile(
    r"^(?:time\.time"
    r"|(?:datetime\.)?(?:datetime|date)\.(?:now|utcnow|today))$"
)


def _func_source(node: ast.Call) -> str:
    try:
        return ast.unparse(node.func)
    except Exception:  # pragma: no cover - unparse failures are cosmetic
        return ""


def _calls(ctx: FileContext) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


@rule(
    "unseeded-rng",
    family="determinism",
    scope="file",
    description="process-global or unseeded random number generation",
)
def check_unseeded_rng(ctx: FileContext) -> Iterator[Finding]:
    for node in _calls(ctx):
        src = _func_source(node)
        # random.Random() / np.random.RandomState() / np.random.default_rng()
        # with no seed argument fall back to OS entropy.
        if (
            src in ("random.Random", "random.SystemRandom")
            or src.endswith("random.RandomState")
            or src.endswith("random.default_rng")
        ):
            if not node.args and not node.keywords:
                yield ctx.finding(
                    "unseeded-rng", "error", node,
                    f"{src}() without a seed draws from OS entropy",
                    hint="pass an explicit seed (see repro._util.derive_rng)",
                )
            continue
        # module-level stdlib random draws share one time-seeded generator.
        if isinstance(node.func, ast.Attribute):
            value = node.func.value
            if (
                isinstance(value, ast.Name)
                and value.id == "random"
                and node.func.attr in _GLOBAL_RANDOM_FNS
            ):
                yield ctx.finding(
                    "unseeded-rng", "error", node,
                    f"random.{node.func.attr}() uses the process-global RNG",
                    hint="use a seeded random.Random(seed) or "
                    "repro._util.derive_rng instead",
                )
                continue
            # np.random.<fn> legacy global state.
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and node.func.attr in _NUMPY_GLOBAL_FNS
            ):
                yield ctx.finding(
                    "unseeded-rng", "error", node,
                    f"{src}() mutates numpy's global RNG state",
                    hint="use np.random.default_rng(seed) / "
                    "repro._util.derive_rng",
                )


@rule(
    "ambient-clock",
    family="determinism",
    scope="file",
    description="wall-clock reads (time.time / datetime.now) in library code",
)
def check_ambient_clock(ctx: FileContext) -> Iterator[Finding]:
    for node in _calls(ctx):
        src = _func_source(node)
        if _AMBIENT_CLOCK_RE.match(src):
            yield ctx.finding(
                "ambient-clock", "error", node,
                f"{src}() reads the wall clock",
                hint="measure elapsed time with time.monotonic()/"
                "time.perf_counter(); inject a clock callable for logic",
            )


@rule(
    "salted-hash",
    family="determinism",
    scope="file",
    description="builtin hash() is salted per process",
)
def check_salted_hash(ctx: FileContext) -> Iterator[Finding]:
    for node in _calls(ctx):
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            yield ctx.finding(
                "salted-hash", "error", node,
                "builtin hash() output changes across processes "
                "(PYTHONHASHSEED salting)",
                hint="use repro._util.stable_hash",
            )


@rule(
    "set-iteration",
    family="determinism",
    scope="file",
    description="direct iteration over a set feeding possibly-ordered output",
)
def check_set_iteration(ctx: FileContext) -> Iterator[Finding]:
    """Flag ``for x in set(...)`` / comprehensions iterating a set.

    Set iteration order is salted; when the loop's results feed anything
    ordered (a list, a file, prompt text) two runs diverge.  Loops whose
    effect is genuinely order-insensitive (pure aggregation into counts or
    sets) should carry a suppression with the justification spelled out.
    """
    def is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        )

    for node in ast.walk(ctx.tree):
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters = [gen.iter for gen in node.generators]
        for it in iters:
            if is_set_expr(it):
                yield ctx.finding(
                    "set-iteration", "warning", node,
                    "iterating a set directly: order is salted per process",
                    hint="wrap in sorted(...), or suppress with a comment "
                    "justifying order-insensitivity",
                )


@rule(
    "environ-read",
    family="determinism",
    scope="file",
    description="os.environ reads outside config modules",
)
def check_environ_read(ctx: FileContext) -> Iterator[Finding]:
    if re.search(r"(^|/)config[^/]*\.py$|/config/", ctx.relpath):
        return
    for node in ast.walk(ctx.tree):
        flagged = None
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
        ):
            flagged = "os.environ"
        elif isinstance(node, ast.Call):
            src = _func_source(node)
            if src in ("os.getenv", "getenv"):
                flagged = f"{src}()"
        if flagged:
            yield ctx.finding(
                "environ-read", "error", node,
                f"{flagged} read outside a config module makes behaviour "
                "depend on ambient process state",
                hint="read the environment once in a config module and pass "
                "values explicitly",
            )
