"""Suppression comments: ``# repro-lint: disable=<rule>[,<rule>...]``.

Two placements are honoured:

* **same line** — a trailing comment suppresses the named rules on that
  physical line only::

      except Exception as exc:  # repro-lint: disable=broad-except — boundary

  Text after the rule list (conventionally introduced by an em dash or
  ``--``) is the justification; the linter keeps it out of the match but
  humans should always write one.

  On an ``async def`` / ``async with`` / ``async for`` *header* line the
  directive covers the whole statement body, not just the header — the
  deep async rules anchor findings inside coroutine bodies, so a
  header-only suppression would never reach them::

      async def pump_forever(self):  # repro-lint: disable=deep-async-blocking
          ...  # every line of the body is covered

* **own line (block)** — a standalone comment suppresses the named rules
  for the whole statement that starts on the next code line (including a
  multi-line statement body)::

      # repro-lint: disable=set-iteration — inverted index is order-insensitive
      for token in set(tokenize(text)):
          ...

* **whole file** — ``disable-file=<rule>[,<rule>...]`` anywhere in the
  file (conventionally in the module docstring area) suppresses the
  named rules at every line of the file::

      # repro-lint: disable-file=deep-resource-leak — fixture: leaks on purpose

  Reserve it for fixtures and generated code; a file-wide waiver hides
  future regressions in everything the file will ever contain.

``disable=all`` disables every rule at that placement.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize as _tokenize

__all__ = ["SuppressionIndex"]

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*disable(-file)?=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)

_ALL = "all"


def _parse_rules(comment: str) -> tuple[frozenset[str], bool] | None:
    """``(rules, file_wide)`` from a directive comment, or None."""
    match = _DIRECTIVE_RE.search(comment)
    if match is None:
        return None
    rules = frozenset(r.strip() for r in match.group(2).split(","))
    return rules, match.group(1) is not None


class SuppressionIndex:
    """Maps line numbers to the set of rules disabled there."""

    def __init__(
        self,
        disabled_by_line: dict[int, frozenset[str]],
        disabled_file_wide: frozenset[str] = frozenset(),
    ) -> None:
        self._by_line = disabled_by_line
        self._file_wide = disabled_file_wide

    @classmethod
    def from_source(cls, source: str, tree: ast.AST | None = None) -> "SuppressionIndex":
        """Build the index from source text (and its parsed tree, if handy)."""
        if tree is None:
            tree = ast.parse(source)
        by_line: dict[int, set[str]] = {}
        standalone: list[tuple[int, frozenset[str]]] = []
        try:
            tokens = list(
                _tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except _tokenize.TokenError:
            tokens = []
        # Track, per line, whether any non-comment code token appears —
        # that decides same-line vs. block placement.
        code_lines: set[int] = set()
        comments: list[tuple[int, frozenset[str]]] = []
        file_wide: set[str] = set()
        for tok in tokens:
            if tok.type == _tokenize.COMMENT:
                parsed = _parse_rules(tok.string)
                if parsed is not None:
                    rules, is_file_wide = parsed
                    if is_file_wide:
                        file_wide.update(rules)
                    else:
                        comments.append((tok.start[0], rules))
            elif tok.type not in (
                _tokenize.NL,
                _tokenize.NEWLINE,
                _tokenize.INDENT,
                _tokenize.DEDENT,
                _tokenize.ENDMARKER,
                _tokenize.ENCODING,
            ):
                code_lines.add(tok.start[0])
        # ``async def`` / ``async with`` / ``async for`` header lines: a
        # same-line directive there covers the whole statement span
        # (mirroring the except-block special case below — findings from
        # the async analyses land inside the body, not on the header).
        async_spans: dict[int, int] = {}
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.AsyncFunctionDef, ast.AsyncWith, ast.AsyncFor)
            ):
                async_spans.setdefault(
                    node.lineno, getattr(node, "end_lineno", node.lineno)
                )
        for line, rules in comments:
            if line in code_lines:
                by_line.setdefault(line, set()).update(rules)
                end = async_spans.get(line)
                if end is not None:
                    for covered in range(line, end + 1):
                        by_line.setdefault(covered, set()).update(rules)
            else:
                standalone.append((line, rules))
        # A standalone directive covers the full span of the statement
        # beginning on the next code line after the comment.
        if standalone:
            # ExceptHandler is not an ast.stmt but starts a suppressible
            # block of its own (`except ...:`), so include it.
            statements = sorted(
                (
                    (node.lineno, getattr(node, "end_lineno", node.lineno))
                    for node in ast.walk(tree)
                    if isinstance(node, (ast.stmt, ast.ExceptHandler))
                ),
            )
            for line, rules in standalone:
                span = next(
                    (
                        (start, end)
                        for start, end in statements
                        if start > line
                    ),
                    None,
                )
                if span is None:
                    continue
                for covered in range(span[0], span[1] + 1):
                    by_line.setdefault(covered, set()).update(rules)
        return cls(
            {line: frozenset(rules) for line, rules in by_line.items()},
            frozenset(file_wide),
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self._file_wide or _ALL in self._file_wide:
            return True
        disabled = self._by_line.get(line)
        if not disabled:
            return False
        return rule in disabled or _ALL in disabled
