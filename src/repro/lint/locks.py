"""Lock discipline: held-locks abstract interpretation over method bodies.

The convention (see :mod:`repro.concurrency`): a class declares which
lock protects a field with ``Annotated[T, guarded_by("_lock")]`` at class
level, holds locks only via ``with self._lock:`` blocks, and the analyzer
checks three things:

* **guarded-field access** — every load/store of a guarded field must
  happen while the declared lock is held (``__init__``/``__post_init__``
  are exempt: construction is single-threaded by definition);
* **lock ordering** — the acquired-while-holding graph over
  ``(class, lock)`` tokens must be acyclic (re-entrant re-acquisition of
  the *same* token is fine: the convention uses RLocks);
* **blocking under a lock** — no call that may block (sleeps, event
  waits, thread joins, or any call that reaches a Protocol-declared
  method — protocol methods model I/O boundaries in this codebase) while
  any lock is held.

Blocking-ness propagates through the call graph: a helper that sleeps
makes every caller blocking.  Lock acquisition likewise: calling a
method that takes a lock while holding another creates an ordering edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph, CallSite, _Resolver
from repro.lint.symbols import ClassSymbol, FunctionSymbol, SymbolTable

__all__ = ["LockAnalysis", "LockToken", "GuardViolation", "BlockingViolation"]

#: attribute-call names that block the calling thread.
_BLOCKING_NAMES = {"sleep", "wait", "join"}


def _walk_outside_lambdas(expr: ast.expr):
    """Walk an expression tree without descending into lambda bodies.

    Lambda bodies execute at their own call sites, not where the lambda
    literal appears, so their accesses must not inherit the current
    held-locks state.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))

#: construction-time methods exempt from guard checks.
_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


@dataclass(frozen=True)
class LockToken:
    """One lock identity: the class that owns it and the attribute name."""

    cls: str
    attr: str

    def __str__(self) -> str:
        return f"{self.cls}.{self.attr}"


@dataclass(frozen=True)
class _Held:
    """A lock currently held, with the receiver text it was taken through."""

    receiver: str  # "self", "obj", "self.cache", ...
    attr: str
    token: LockToken


@dataclass
class GuardViolation:
    fn: str
    relpath: str
    line: int
    field_name: str
    lock_attr: str
    cls: str
    #: "load" or "store"
    access: str


@dataclass
class BlockingViolation:
    fn: str
    relpath: str
    line: int
    held: LockToken
    #: what blocks and why ("time.sleep(...)" or a chain through callees).
    reason: str


@dataclass
class OrderEdge:
    src: LockToken
    dst: LockToken
    fn: str
    relpath: str
    line: int


@dataclass
class _FnLockSummary:
    #: lock tokens this function (transitively) acquires.
    acquires: set = field(default_factory=set)
    #: why this function may block, or None.
    blocks: str | None = None


class LockAnalysis:
    """Run the held-locks interpretation over every project function."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self.summaries: dict[str, _FnLockSummary] = {}
        self.guard_violations: list[GuardViolation] = []
        self.blocking_violations: list[BlockingViolation] = []
        self.order_edges: list[OrderEdge] = []
        #: protocol-declared method qualnames (treated as blocking I/O).
        self._protocol_methods: set[str] = set()
        for cls in table.classes.values():
            if not cls.is_protocol:
                continue
            for method in cls.methods.values():
                if method.name.startswith("__"):
                    continue
                self._protocol_methods.add(method.qualname)
                for impl in table.protocol_implementations(cls):
                    found = table.lookup_method(impl.qualname, method.name)
                    if found is not None:
                        self._protocol_methods.add(found.qualname)
        self._compute_summaries()
        self._walk_all()

    # ------------------------------------------------------------- summaries

    def _compute_summaries(self) -> None:
        for qualname in self.table.functions:
            self.summaries[qualname] = _FnLockSummary()
        for _ in range(10):
            changed = False
            for qualname, fn in self.table.functions.items():
                acquires, blocks = self._summarize(fn)
                cur = self.summaries[qualname]
                if acquires != cur.acquires or blocks != cur.blocks:
                    self.summaries[qualname] = _FnLockSummary(acquires, blocks)
                    changed = True
            if not changed:
                break

    def _summarize(self, fn: FunctionSymbol) -> tuple[set, str | None]:
        acquires: set = set()
        blocks: str | None = None
        resolver = _Resolver(self.graph, fn)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    held = self._lock_of(item.context_expr, resolver)
                    if held is not None:
                        acquires.add(held.token)
            elif isinstance(node, ast.Call) and blocks is None:
                blocks = self._blocking_reason(fn, node)
        # Propagate through resolved callees.
        for site in self.graph.sites.get(fn.qualname, []):
            if site.status != "resolved":
                continue
            for target in site.targets:
                summary = self.summaries.get(target)
                if summary is None:
                    continue
                acquires |= summary.acquires
                if blocks is None and summary.blocks is not None:
                    blocks = f"{target} (line {site.line}) -> {summary.blocks}"
        return acquires, blocks

    @staticmethod
    def _is_cv_wait_on_held(call: ast.Call, held: list) -> bool:
        """True for ``X.wait(...)`` where ``X`` is a currently-held lock."""
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("wait", "wait_for")):
            return False
        try:
            receiver = ast.unparse(func.value)
        except Exception:  # pragma: no cover
            return False
        return any(
            receiver == f"{lock.receiver}.{lock.attr}" for lock in held
        )

    def _blocking_reason(self, fn: FunctionSymbol, call: ast.Call) -> str | None:
        """Why this call site blocks intrinsically, or None."""
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name in _BLOCKING_NAMES:
            try:
                return f"{ast.unparse(func)}(...) at line {call.lineno}"
            except Exception:  # pragma: no cover
                return f"{name}(...) at line {call.lineno}"
        for site in self.graph.sites.get(fn.qualname, []):
            if site.node is call and site.status == "resolved":
                for target in site.targets:
                    if target in self._protocol_methods:
                        return (
                            f"protocol I/O call {site.callee_text}(...) "
                            f"at line {call.lineno}"
                        )
        return None

    # ------------------------------------------------------------ lock exprs

    def _lock_of(self, expr: ast.expr, resolver: _Resolver) -> _Held | None:
        """The lock a ``with`` context expression acquires, if any."""
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        recv = expr.value
        recv_qual = resolver.receiver_type(recv)
        if recv_qual is None:
            return None
        if attr not in self.table.lock_attrs_of(recv_qual):
            return None
        try:
            receiver = ast.unparse(recv)
        except Exception:  # pragma: no cover
            receiver = "<receiver>"
        return _Held(receiver=receiver, attr=attr,
                     token=LockToken(cls=recv_qual, attr=attr))

    # --------------------------------------------------------------- walking

    def _walk_all(self) -> None:
        for fn in self.table.functions.values():
            resolver = _Resolver(self.graph, fn)
            sites = {
                id(site.node): site
                for site in self.graph.sites.get(fn.qualname, [])
            }
            self._walk_stmts(fn, resolver, sites, fn.node.body, held=())

    def _walk_stmts(
        self,
        fn: FunctionSymbol,
        resolver: _Resolver,
        sites: dict[int, CallSite],
        stmts: list,
        held: tuple,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                new_held = list(held)
                for item in stmt.items:
                    self._check_exprs(fn, resolver, sites,
                                      [item.context_expr], tuple(new_held))
                    lock = self._lock_of(item.context_expr, resolver)
                    if lock is not None:
                        for prior in new_held:
                            if prior.token != lock.token:
                                self.order_edges.append(OrderEdge(
                                    src=prior.token, dst=lock.token,
                                    fn=fn.qualname, relpath=fn.relpath,
                                    line=stmt.lineno,
                                ))
                        new_held.append(lock)
                self._walk_stmts(fn, resolver, sites, stmt.body,
                                 tuple(new_held))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested def: its body runs when called, not here — but it
                # is defined (and in this codebase always used) within the
                # enclosing scope, so check it under the current lock set
                # only if it is immediately dispatched; conservatively,
                # check with no locks held for guard accesses.
                self._walk_stmts(fn, resolver, sites, stmt.body, held=())
            elif isinstance(stmt, ast.ClassDef):
                continue
            else:
                self._check_exprs(fn, resolver, sites,
                                  self._own_exprs(stmt), held)
                for _, value in ast.iter_fields(stmt):
                    if (
                        isinstance(value, list)
                        and value
                        and isinstance(value[0], ast.stmt)
                    ):
                        self._walk_stmts(fn, resolver, sites, value, held)
                    elif (
                        isinstance(value, list)
                        and value
                        and isinstance(value[0], ast.ExceptHandler)
                    ):
                        for handler in value:
                            self._walk_stmts(fn, resolver, sites,
                                             handler.body, held)

    @staticmethod
    def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
        out = []
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, ast.expr))
        return out

    def _check_exprs(
        self,
        fn: FunctionSymbol,
        resolver: _Resolver,
        sites: dict[int, CallSite],
        exprs: list,
        held: tuple,
    ) -> None:
        held_list: list[_Held] = list(held)
        for expr in exprs:
            for node in _walk_outside_lambdas(expr):
                if isinstance(node, ast.Attribute):
                    self._check_guarded_access(fn, resolver, node, held_list)
                elif isinstance(node, ast.Call) and held_list:
                    self._check_blocking_call(fn, sites, node, held_list)

    def _check_guarded_access(
        self,
        fn: FunctionSymbol,
        resolver: _Resolver,
        node: ast.Attribute,
        held: list,
    ) -> None:
        recv = node.value
        recv_qual = resolver.receiver_type(recv)
        if recv_qual is None:
            return
        guarded = self.table.guarded_fields_of(recv_qual)
        lock_attr = guarded.get(node.attr)
        if lock_attr is None:
            return
        is_self = isinstance(recv, ast.Name) and recv.id == "self"
        if is_self and fn.name in _CONSTRUCTORS:
            return
        try:
            receiver = ast.unparse(recv)
        except Exception:  # pragma: no cover
            receiver = "<receiver>"
        for lock in held:
            if lock.receiver == receiver and lock.attr == lock_attr:
                return
        self.guard_violations.append(GuardViolation(
            fn=fn.qualname,
            relpath=fn.relpath,
            line=node.lineno,
            field_name=node.attr,
            lock_attr=lock_attr,
            cls=recv_qual,
            access="store" if isinstance(node.ctx, (ast.Store, ast.Del))
            else "load",
        ))

    def _check_blocking_call(
        self,
        fn: FunctionSymbol,
        sites: dict[int, CallSite],
        call: ast.Call,
        held: list,
    ) -> None:
        reason = self._blocking_reason(fn, call)
        if reason is not None and self._is_cv_wait_on_held(call, held):
            # ``with self._cv: self._cv.wait()`` — a condition-variable
            # wait *releases* the lock it is called on for the duration
            # of the wait, so nothing is held while blocked.
            reason = None
        if reason is None:
            site = sites.get(id(call))
            if site is not None and site.status == "resolved":
                for target in site.targets:
                    summary = self.summaries.get(target)
                    if summary is not None and summary.blocks is not None:
                        reason = f"{target} (line {call.lineno}) -> {summary.blocks}"
                        break
                    # Ordering edges for locks acquired by the callee.
                    if summary is not None:
                        for token in summary.acquires:
                            for lock in held:
                                if lock.token != token:
                                    self.order_edges.append(OrderEdge(
                                        src=lock.token, dst=token,
                                        fn=fn.qualname, relpath=fn.relpath,
                                        line=call.lineno,
                                    ))
        if reason is not None:
            self.blocking_violations.append(BlockingViolation(
                fn=fn.qualname,
                relpath=fn.relpath,
                line=call.lineno,
                held=held[-1].token,
                reason=reason,
            ))

    # ----------------------------------------------------------------- cycles

    def order_cycles(self) -> list[tuple]:
        """Distinct cycles in the lock-ordering graph.

        Returns canonicalized token cycles (each a tuple of LockTokens,
        rotated so the smallest token comes first) paired with one sample
        edge list for reporting.
        """
        adjacency: dict[LockToken, dict[LockToken, OrderEdge]] = {}
        for edge in self.order_edges:
            adjacency.setdefault(edge.src, {}).setdefault(edge.dst, edge)
        cycles: dict[tuple, list] = {}

        def dfs(start: LockToken, token: LockToken, path: list) -> None:
            for nxt, edge in adjacency.get(token, {}).items():
                if nxt == start:
                    tokens = tuple(e.src for e in path + [edge])
                    pivot = min(range(len(tokens)), key=lambda i: str(tokens[i]))
                    canon = tokens[pivot:] + tokens[:pivot]
                    cycles.setdefault(canon, path + [edge])
                elif all(e.src != nxt for e in path) and len(path) < 6:
                    dfs(start, nxt, path + [edge])

        for start in adjacency:
            dfs(start, start, [])
        return sorted(cycles.items(), key=lambda kv: str(kv[0]))
