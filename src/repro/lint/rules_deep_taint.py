"""Deep rule: non-determinism must not reach persistent or scored values.

Taint sources (unseeded global RNG, wall-clock reads, environment reads)
are tracked inter-procedurally by :class:`repro.lint.dataflow.TaintAnalysis`;
this rule checks the sinks:

* values stored in a result cache (any ``put`` call on a class whose
  name ends in ``Cache``) — a cached nondeterministic value poisons every
  later hit, silently breaking replayability;
* values returned from the simulation/evaluation layers (modules under a
  ``.llm`` or ``.eval`` package) — the paper's metrics must be
  bit-reproducible across runs.

Findings carry the full provenance chain (source site → helper hops →
sink), so a laundering path through ``_util`` helpers reads like a
traceback.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import rule

#: module name fragments whose function results must be deterministic.
_DETERMINISTIC_PACKAGES = (".llm", ".eval")


def _in_deterministic_package(module: str) -> bool:
    return any(
        f"{frag}." in f"{module}." for frag in _DETERMINISTIC_PACKAGES
    )


@rule(
    "deep-taint",
    family="determinism",
    scope="project",
    description="nondeterministic values flowing into caches or "
    "simulation/eval results (inter-procedural)",
)
def check_deep_taint(ctx) -> Iterator[Finding]:
    # Sink 1: cache writes.
    for fn_qual, sites in ctx.graph.sites.items():
        fn = ctx.table.functions.get(fn_qual)
        if fn is None:
            continue
        for site in sites:
            if site.status != "resolved":
                continue
            if not any(
                target.endswith(".put")
                and target.rsplit(".", 2)[-2].endswith("Cache")
                for target in site.targets
            ):
                continue
            call = site.node
            args = list(call.args) + [kw.value for kw in call.keywords]
            for arg in args:
                for label in ctx.taint.labels_of(fn_qual, arg).values():
                    try:
                        arg_text = ast.unparse(arg)
                    except Exception:  # pragma: no cover
                        arg_text = "<expr>"
                    yield Finding(
                        rule="deep-taint",
                        severity="error",
                        path=fn.relpath,
                        line=call.lineno,
                        message=(
                            f"nondeterministic value {arg_text!r} cached via "
                            f"{site.callee_text}(): {label.describe()}"
                        ),
                        hint="derive the value from repro._util seeded "
                        "helpers, or keep it out of the cache",
                    )

    # Sink 2: returns from simulation/eval modules.
    for fn_qual, summary in ctx.taint.summaries.items():
        fn = ctx.table.functions.get(fn_qual)
        if fn is None or not _in_deterministic_package(fn.module):
            continue
        for lineno, labels in summary.return_sites:
            for label in labels.values():
                yield Finding(
                    rule="deep-taint",
                    severity="error",
                    path=fn.relpath,
                    line=lineno,
                    message=(
                        f"{fn.qualname} returns a nondeterministic value: "
                        f"{label.describe()}"
                    ),
                    hint="seed via repro._util.derive_rng/stable_hash so "
                    "simulation and eval results are replayable",
                )
