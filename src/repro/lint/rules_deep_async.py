"""Deep rules: the thread↔loop contract of the async gateway, enforced.

Three project-scoped rules over
:class:`repro.lint.asyncflow.AsyncFlowAnalysis`:

* ``deep-async-blocking`` — a coroutine (transitively) makes a call that
  blocks the thread running it — ``time.sleep``, file I/O, un-awaited
  waits/joins/acquires, blocking queue operations, or any path reaching
  a Protocol-declared I/O method — without hopping to an executor.  One
  stalled coroutine stalls *every* task on that loop;
* ``deep-async-future`` — a future born on the event loop is completed
  (``set_result``/``set_exception``) from thread-classified code instead
  of through ``loop.call_soon_threadsafe``, or a coroutine object is
  created and then neither awaited nor handed to a task — silently
  discarded work;
* ``deep-async-race`` — a field is written from thread-classified code
  and accessed from loop-classified code (or vice versa) with no
  ``guarded_by`` declaration and no ``call_soon_threadsafe`` hand-off
  establishing the ordering.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import rule


@rule(
    "deep-async-blocking",
    family="concurrency",
    scope="project",
    description="coroutine makes a transitively-blocking call on the loop",
)
def check_loop_blocking(ctx) -> Iterator[Finding]:
    for v in ctx.asyncflow.blocking:
        yield Finding(
            rule="deep-async-blocking",
            severity="error",
            path=v.relpath,
            line=v.line,
            message=f"coroutine {v.fn} blocks the event loop: {v.reason}",
            hint="hop the blocking work to a thread with "
            "`await loop.run_in_executor(None, ...)` (or asyncio.to_thread), "
            "or use the async variant of the primitive",
        )


@rule(
    "deep-async-future",
    family="concurrency",
    scope="project",
    description="loop-owned future completed off-loop, or coroutine never awaited",
)
def check_future_discipline(ctx) -> Iterator[Finding]:
    for v in ctx.asyncflow.future_violations:
        yield Finding(
            rule="deep-async-future",
            severity="error",
            path=v.relpath,
            line=v.line,
            message=(
                f"{v.fn} calls {v.receiver}.{v.method}(...) from "
                f"{v.context}-classified context; loop-owned futures must be "
                "completed via loop.call_soon_threadsafe"
            ),
            hint="post the completion to the owning loop: "
            "`loop.call_soon_threadsafe(fut.set_result, value)`",
        )
    for u in ctx.asyncflow.unawaited:
        yield Finding(
            rule="deep-async-future",
            severity="error",
            path=u.relpath,
            line=u.line,
            message=(
                f"coroutine object {u.callee}(...) created in {u.fn} is "
                f"{u.how}: it never runs"
            ),
            hint="await it, or schedule it with asyncio.create_task(...) and "
            "keep the task reference",
        )


@rule(
    "deep-async-race",
    family="concurrency",
    scope="project",
    description="field crosses the thread↔loop boundary without ordering",
)
def check_thread_loop_races(ctx) -> Iterator[Finding]:
    for r in ctx.asyncflow.races:
        cls_name = r.cls.rsplit(".", 1)[-1]
        yield Finding(
            rule="deep-async-race",
            severity="error",
            path=r.write.relpath,
            line=r.write.line,
            message=(
                f"{cls_name}.{r.field_name} is written in {r.write.fn} "
                f"({r.write.context} context) and {r.other.kind} in "
                f"{r.other.fn} ({r.other.context} context, "
                f"{r.other.relpath}:{r.other.line}) with no guarded_by lock "
                "or call_soon_threadsafe hand-off"
            ),
            hint="declare the field `Annotated[T, guarded_by(\"<lock>\")]` "
            "and access it under that lock, or hand the value across via "
            "loop.call_soon_threadsafe",
        )
