"""Project call graph over a :class:`~repro.lint.symbols.SymbolTable`.

Each call site inside a project function is resolved to project function
qualnames where possible, using:

* direct names (``helper(...)`` → same module or imported function);
* class construction (``ResultCache(...)`` → ``ResultCache.__init__``);
* ``self.method(...)`` → method lookup on the enclosing class (including
  project base classes);
* attribute calls on typed receivers — parameters, ``self.x`` instance
  attributes, and local variables whose type is known from an annotation
  or a constructor assignment (``cache = ResultCache(); cache.get(...)``);
* calls through a :class:`typing.Protocol`-typed receiver fan out to
  every structural implementation in the project (sound for analyses
  that union over callees).

Unresolvable sites are bucketed instead of silently dropped, and the
resolution rate — resolved project-internal sites over all candidate
project-internal sites — is reported in the ``--deep`` JSON summary
(the ISSUE acceptance bar is ≥ 0.9).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.symbols import ClassSymbol, FunctionSymbol, ModuleSymbol, SymbolTable

__all__ = ["CallSite", "CallGraph", "build_call_graph"]

#: methods whose calls are receiver-polymorphic builtins, never project code.
_BUILTIN_METHODS = frozenset(
    {
        "append", "extend", "pop", "get", "items", "keys", "values", "setdefault",
        "update", "add", "discard", "remove", "clear", "copy", "sort", "join",
        "split", "strip", "lstrip", "rstrip", "lower", "upper", "format",
        "startswith", "endswith", "replace", "encode", "decode", "read_text",
        "write_text", "as_posix", "relative_to", "partition", "rpartition",
        "count", "index", "insert", "move_to_end", "popitem", "total_seconds",
    }
)


@dataclass
class CallSite:
    """One syntactic call inside a project function."""

    caller: str
    node: ast.Call
    #: source text of the callee expression ("self.cache.get", "helper").
    callee_text: str
    #: project function qualnames this site may reach (empty if none).
    targets: list[str] = field(default_factory=list)
    #: "resolved" | "unresolved" | "external" | "dynamic" | "builtin"
    status: str = "unresolved"
    #: the call expression is directly awaited (``await f(...)``) — async
    #: analyses treat awaited sites as suspension points, not blockers.
    awaited: bool = False

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class CallGraph:
    """Call sites grouped by caller, plus the reverse edge map."""

    table: SymbolTable
    #: caller qualname → its call sites, in source order.
    sites: dict[str, list[CallSite]] = field(default_factory=dict)
    #: callee qualname → caller qualnames.
    callers: dict[str, set[str]] = field(default_factory=dict)

    def callees(self, qualname: str) -> set[str]:
        return {
            target
            for site in self.sites.get(qualname, [])
            for target in site.targets
        }

    def summary(self) -> dict[str, object]:
        """Resolution-rate accounting for the ``--deep`` JSON summary."""
        counts = {"resolved": 0, "unresolved": 0, "external": 0,
                  "builtin": 0, "dynamic": 0}
        for sites in self.sites.values():
            for site in sites:
                counts[site.status] += 1
        candidates = counts["resolved"] + counts["unresolved"]
        rate = counts["resolved"] / candidates if candidates else 1.0
        return {
            "functions": len(self.sites),
            "call_sites": sum(len(s) for s in self.sites.values()),
            **counts,
            "resolution_rate": round(rate, 4),
        }


class _Resolver:
    """Resolves call sites of one function using local type facts."""

    def __init__(self, graph: CallGraph, fn: FunctionSymbol) -> None:
        self.graph = graph
        self.table = graph.table
        self.fn = fn
        self.mod: ModuleSymbol = self.table.modules[fn.module]
        self.cls: ClassSymbol | None = (
            self.table.classes.get(fn.cls) if fn.cls else None
        )
        #: local variable name → class qualname (from annotations/constructors).
        self.local_types: dict[str, str] = {}
        #: functions defined inside this function (their bodies are analyzed
        #: inline; calls to them are intra-function, not graph edges).
        self.local_defs: set[str] = {
            n.name
            for n in ast.walk(fn.node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n is not fn.node
        }
        #: every plain local binding (assignments, loop vars, with-targets):
        #: calls through these are first-class-value dispatch unless a type
        #: was inferred for them.
        self._plain_locals: set[str] = set()
        for n in ast.walk(fn.node):
            if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = n.targets if isinstance(n, ast.Assign) else [n.target]
                for t in targets:
                    for leaf in ast.walk(t):
                        if isinstance(leaf, ast.Name):
                            self._plain_locals.add(leaf.id)
            elif isinstance(n, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(n.target):
                    if isinstance(leaf, ast.Name):
                        self._plain_locals.add(leaf.id)
            elif isinstance(n, (ast.With, ast.AsyncWith)):
                for item in n.items:
                    if item.optional_vars is not None:
                        for leaf in ast.walk(item.optional_vars):
                            if isinstance(leaf, ast.Name):
                                self._plain_locals.add(leaf.id)
            elif isinstance(n, ast.comprehension):
                for leaf in ast.walk(n.target):
                    if isinstance(leaf, ast.Name):
                        self._plain_locals.add(leaf.id)
        self._seed_param_types()
        self._infer_local_types()

    # ---------------------------------------------------------------- typing

    def _seed_param_types(self) -> None:
        for name, ann in self.fn.param_annotations.items():
            qual = self._type_from_annotation(ann)
            if qual is not None:
                self.local_types[name] = qual

    def _infer_local_types(self) -> None:
        """``x = SomeClass(...)`` and ``x: SomeClass = ...`` assignments."""
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                    qual = self._class_of_call(value)
                    if qual is not None:
                        self.local_types[target.id] = qual
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                qual = self._type_from_annotation(node.annotation)
                if qual is not None:
                    self.local_types[node.target.id] = qual

    def _type_from_annotation(self, ann: ast.expr) -> str | None:
        """Class qualname an annotation denotes, if it's a project class."""
        node = ann
        # Unwrap Optional[X] / X | None / Annotated[X, ...] / "X" strings.
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                got = self._type_from_annotation(side)
                if got is not None:
                    return got
            return None
        if isinstance(node, ast.Subscript):
            head = node.value
            head_name = (
                head.attr if isinstance(head, ast.Attribute)
                else getattr(head, "id", "")
            )
            if head_name in {"Optional", "Annotated"}:
                inner = node.slice
                if isinstance(inner, ast.Tuple):
                    inner = inner.elts[0]
                return self._type_from_annotation(inner)
            node = head  # Generic[...] → the generic's own class.
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover
            return None
        qual = self.table.resolve_dotted(self.mod, text)
        return qual if qual in self.table.classes else None

    def _class_of_call(self, call: ast.Call) -> str | None:
        """Class qualname when *call* constructs a project class."""
        try:
            text = ast.unparse(call.func)
        except Exception:  # pragma: no cover
            return None
        qual = self.table.resolve_dotted(self.mod, text)
        if qual in self.table.classes:
            return qual
        # Factory classmethods: ClassName.for_model(...) → ClassName.
        if qual is not None:
            owner = qual.rsplit(".", 1)[0]
            fn = self.table.functions.get(qual)
            if fn is not None and fn.cls == owner and owner in self.table.classes:
                ret = fn.returns
                if ret is not None:
                    ret_qual = self._type_from_annotation(ret)
                    if ret_qual is not None:
                        return ret_qual
        return None

    def receiver_type(self, expr: ast.expr) -> str | None:
        """Class qualname of a receiver expression, if inferable."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return self.cls.qualname
            return self.local_types.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.cls is not None
        ):
            attr_expr = self._class_attr_type(self.cls.qualname, expr.attr)
            if attr_expr is None:
                return None
            if isinstance(attr_expr, ast.Call):
                return self._class_of_call(attr_expr)
            return self._type_from_annotation(attr_expr)
        if isinstance(expr, ast.Call):
            return self._class_of_call(expr)
        return None

    def _class_attr_type(self, class_qual: str, attr: str) -> ast.expr | None:
        cls = self.table.classes.get(class_qual)
        if cls is None:
            return None
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for base in self.table.base_classes(cls):
            found = self._class_attr_type(base, attr)
            if found is not None:
                return found
        return None

    # -------------------------------------------------------------- resolving

    def resolve(self, call: ast.Call) -> CallSite:
        try:
            text = ast.unparse(call.func)
        except Exception:  # pragma: no cover
            text = "<dynamic>"
        site = CallSite(caller=self.fn.qualname, node=call, callee_text=text)

        func = call.func
        if isinstance(func, ast.Name):
            self._resolve_name(site, func.id)
        elif isinstance(func, ast.Attribute):
            self._resolve_attribute(site, func)
        else:
            # Call of a call result, subscript, lambda, ... — dynamic.
            site.status = "dynamic"
        return site

    def _resolve_name(self, site: CallSite, name: str) -> None:
        if name in self.local_defs:
            # Nested def: its body is already attributed to this caller.
            site.status = "builtin"
            return
        if name == "cls" and self.cls is not None and "cls" in self.fn.params:
            # Classmethod constructor: cls(...) builds the enclosing class.
            init = self.table.lookup_method(self.cls.qualname, "__init__")
            if init is not None:
                site.targets = [init.qualname]
            site.status = "resolved"
            return
        if name in self.fn.params or name in self._plain_locals:
            # Call through a callable value (parameter, stored function).
            typed = self.local_types.get(name)
            call_method = (
                self.table.lookup_method(typed, "__call__") if typed else None
            )
            if call_method is not None:
                site.targets = [call_method.qualname]
                site.status = "resolved"
            else:
                # First-class dispatch the syntactic graph cannot follow.
                site.status = "dynamic"
            return
        qual = self.table.resolve_dotted(self.mod, name)
        if qual is None:
            # Builtins (len, sorted, ...) vs. true unknowns.
            site.status = "external" if name in _PY_BUILTINS else "unresolved"
            return
        if qual in self.table.functions:
            site.targets = [qual]
            site.status = "resolved"
        elif qual in self.table.classes:
            init = self.table.lookup_method(qual, "__init__")
            site.targets = [init.qualname] if init else [f"{qual}.__init__"]
            site.status = "resolved"
        elif self.table.is_project_target(qual):
            site.status = "unresolved"
        else:
            site.status = "external"

    def _resolve_attribute(self, site: CallSite, func: ast.Attribute) -> None:
        method = func.attr
        # module.function(...) through an import alias.
        if isinstance(func.value, ast.Name):
            dotted = f"{func.value.id}.{method}"
            qual = self.table.resolve_dotted(self.mod, dotted)
            if qual in self.table.functions:
                site.targets = [qual]
                site.status = "resolved"
                return
            if qual in self.table.classes:
                init = self.table.lookup_method(qual, "__init__")
                site.targets = [init.qualname] if init else []
                site.status = "resolved"
                return
        # ClassName.method / alias.ClassName.method (incl. classmethods).
        try:
            dotted_full = ast.unparse(func)
        except Exception:  # pragma: no cover
            dotted_full = ""
        if dotted_full:
            qual = self.table.resolve_dotted(self.mod, dotted_full)
            if qual in self.table.functions:
                site.targets = [qual]
                site.status = "resolved"
                return
        # Typed receiver.
        recv_qual = self.receiver_type(func.value)
        if recv_qual is not None:
            recv_cls = self.table.classes.get(recv_qual)
            if recv_cls is not None and recv_cls.is_protocol:
                impls = self.table.protocol_implementations(recv_cls)
                targets = []
                for impl in impls:
                    found = self.table.lookup_method(impl.qualname, method)
                    if found is not None:
                        targets.append(found.qualname)
                proto_method = self.table.lookup_method(recv_qual, method)
                if targets or proto_method is not None:
                    site.targets = targets
                    site.status = "resolved"
                    return
            found = self.table.lookup_method(recv_qual, method)
            if found is not None:
                site.targets = [found.qualname]
                site.status = "resolved"
                return
            if self._class_attr_type(recv_qual, method) is not None:
                # Stored callable attribute (clock, sleep, renderer, ...):
                # first-class dispatch, not a method the graph can follow.
                site.status = "dynamic"
                return
            if method in _BUILTIN_METHODS:
                site.status = "builtin"
                return
            site.status = "unresolved"
            return
        # Untyped receiver: container/string methods are plain builtins;
        # module-level externals (np.percentile, time.monotonic) external.
        if isinstance(func.value, ast.Name):
            head = func.value.id
            target = self.mod.imports.get(head)
            if target is not None and not self.table.is_project_target(target):
                site.status = "external"
                return
        if method in _BUILTIN_METHODS:
            site.status = "builtin"
            return
        site.status = "dynamic"


_PY_BUILTINS = frozenset(
    {
        "len", "sorted", "range", "enumerate", "zip", "print", "isinstance",
        "issubclass", "min", "max", "sum", "abs", "round", "any", "all",
        "list", "dict", "set", "tuple", "str", "int", "float", "bool",
        "repr", "getattr", "setattr", "hasattr", "iter", "next", "open",
        "frozenset", "type", "id", "hash", "vars", "dir", "map", "filter",
        "super", "format", "divmod", "reversed", "callable", "ord", "chr",
        # Builtin exception constructors (raise sites call these).
        "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
        "IndexError", "AttributeError", "RuntimeError", "NotImplementedError",
        "OSError", "IOError", "FileNotFoundError", "PermissionError",
        "StopIteration", "SystemExit", "KeyboardInterrupt", "AssertionError",
        "ZeroDivisionError", "OverflowError", "ArithmeticError", "LookupError",
        "UnicodeDecodeError", "UnicodeEncodeError", "TimeoutError",
        "InterruptedError", "ConnectionError", "MemoryError", "RecursionError",
    }
)


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call site of every project function."""
    graph = CallGraph(table=table)
    for fn in table.functions.values():
        resolver = _Resolver(graph, fn)
        sites: list[CallSite] = []
        awaited_calls = {
            id(node.value)
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
        }
        # Nested defs/lambdas are not separate symbols: their call sites are
        # attributed to the enclosing function, which is what the analyses
        # (taint, locks, exceptions) need anyway.
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                site = resolver.resolve(node)
                site.awaited = id(node) in awaited_calls
                sites.append(site)
                for target in site.targets:
                    graph.callers.setdefault(target, set()).add(fn.qualname)
        graph.sites[fn.qualname] = sites
    return graph
