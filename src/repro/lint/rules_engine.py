"""Engine- and evaluation-hygiene rules.

The serving engine is the layer every future performance PR touches, so
its failure handling gets the strictest checks: no bare excepts anywhere,
no over-broad catches inside ``repro/engine`` without a justified
suppression, and degraded (fallback) answers must never poison the result
cache — a cached fallback would keep answering for the pair after the
backend recovers, which is exactly the kind of silent skew the paper's
numbers cannot absorb.  Metric code additionally must not compare floats
with ``==``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

__all__ = []

_ENGINE_SCOPE = "repro/engine"
_EVAL_SCOPE = "repro/eval"
#: packages whose time handling must flow through injectable seams: the
#: engine (retry backoff, cache TTLs), the fault injectors (simulated
#: timeouts), serving (batch polling), and the gateway (queue deadlines,
#: load replay) are all driven on simulated clocks by tests and the
#: chaos harnesses.
_CLOCK_SCOPES = ("repro/engine", "repro/faults", "repro/serving", "repro/serve")


@rule(
    "untyped-except",
    family="engine-hygiene",
    scope="file",
    description="bare `except:` clauses",
)
def check_untyped_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ctx.finding(
                "untyped-except", "error", node,
                "bare `except:` catches everything, including "
                "KeyboardInterrupt and SystemExit",
                hint="name the exception types this handler expects",
            )


def _is_broad(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in ("Exception", "BaseException")
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(element) for element in expr.elts)
    return False


@rule(
    "broad-except",
    family="engine-hygiene",
    scope="file",
    description="`except Exception` inside repro/engine needs a justified "
    "suppression",
)
def check_broad_except(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.in_package(_ENGINE_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and node.type is not None
            and _is_broad(node.type)
        ):
            yield ctx.finding(
                "broad-except", "warning", node,
                "over-broad except in engine code can swallow programming "
                "errors as transient backend failures",
                hint="catch the specific transport exceptions, or suppress "
                "with a comment justifying the translation boundary",
            )


@rule(
    "fallback-cache",
    family="engine-hygiene",
    scope="file",
    description="fallback answers must not be written to the result cache",
)
def check_fallback_cache(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.in_package(_ENGINE_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "put"):
            continue
        try:
            receiver = ast.unparse(func.value)
        except Exception:  # pragma: no cover - unparse failures are cosmetic
            receiver = ""
        if "cache" not in receiver.lower():
            continue
        enclosing = ctx.enclosing_function(node)
        if enclosing is not None and "fallback" in enclosing.name.lower():
            yield ctx.finding(
                "fallback-cache", "error", node,
                f"{receiver}.put() inside {enclosing.name}(): a cached "
                "fallback answer keeps masking the backend after it recovers",
                hint="return fallback results without caching them",
            )


@rule(
    "injectable-sleep",
    family="engine-hygiene",
    scope="file",
    description="ambient time calls (time.sleep/time.time, asyncio.sleep, "
    "loop.time) in clock-injectable packages (engine, faults, serving, "
    "serve)",
)
def check_injectable_sleep(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.in_package(*_CLOCK_SCOPES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in ("sleep", "time")
        ):
            # Referencing time.sleep/time.monotonic as a *default* for an
            # injectable parameter is the approved seam; only direct calls
            # are flagged (a default is a reference, never a Call node).
            yield ctx.finding(
                "injectable-sleep", "error", node,
                f"time.{func.attr}() call bypasses the injectable clock "
                "seam, so chaos/timeout tests cannot simulate it",
                hint="accept clock/sleep callables (defaulting to "
                "time.monotonic / time.sleep) and call those instead",
            )
        elif (
            isinstance(func.value, ast.Name)
            and func.value.id == "asyncio"
            and func.attr == "sleep"
            and not _is_zero_literal(node)
        ):
            # asyncio.sleep(0) is a pure scheduler yield — it suspends for
            # exactly one loop pass regardless of any clock, so it stays
            # legal; every nonzero duration must go through the seam.
            yield ctx.finding(
                "injectable-sleep", "error", node,
                "ambient asyncio.sleep() waits on wall-clock time that "
                "simulated-time tests cannot advance",
                hint="accept a sleep_async callable (defaulting to "
                "asyncio.sleep) or use ManualClock.sleep_async",
            )
        elif func.attr == "time" and _is_event_loop(func.value):
            yield ctx.finding(
                "injectable-sleep", "error", node,
                "event-loop .time() reads the loop's wall clock, bypassing "
                "the injectable clock seam",
                hint="read timestamps from the injected clock callable "
                "instead of the event loop",
            )


def _is_zero_literal(call: ast.Call) -> bool:
    """True for ``asyncio.sleep(0)`` / ``asyncio.sleep(0.0)``."""
    if len(call.args) != 1 or call.keywords:
        return False
    arg = call.args[0]
    return isinstance(arg, ast.Constant) and arg.value == 0


def _is_event_loop(expr: ast.expr) -> bool:
    """Match ``loop``-named receivers and direct asyncio loop accessors."""
    if isinstance(expr, ast.Name):
        return "loop" in expr.id.lower()
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        return (
            isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == "asyncio"
            and expr.func.attr in ("get_running_loop", "get_event_loop")
        )
    return False


@rule(
    "float-eq",
    family="engine-hygiene",
    scope="file",
    description="float literal ==/!= comparisons in metric code",
)
def check_float_eq(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.in_package(_EVAL_SCOPE):
        return

    def is_float_literal(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Constant) and isinstance(expr.value, float)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if is_float_literal(lhs) or is_float_literal(rhs):
                yield ctx.finding(
                    "float-eq", "error", node,
                    "exact ==/!= against a float literal is "
                    "rounding-fragile in metric code",
                    hint="compare with a tolerance (math.isclose) or "
                    "restructure to integer counts",
                )
                break
