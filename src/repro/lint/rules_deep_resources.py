"""Deep rules: resource lifecycle, proven release-on-all-paths.

Three project-scoped rules over
:class:`repro.lint.resources.ResourceAnalysis`:

* ``deep-resource-leak`` — an acquired resource (file handle, thread,
  executor, journal, any project resource class) escapes every owner:
  some path reaches a function exit with it live, it is rebound or
  discarded while live, or it is stored on ``self`` under an attribute
  no release method covers.  The message carries hop-by-hop provenance
  through factory chains, like the blocking chains of
  ``deep-async-blocking``;
* ``deep-resource-double-close`` — one path releases the same binding
  twice and the release method is not declared ``@idempotent``
  (:mod:`repro.concurrency`);
* ``deep-shutdown-order`` — a class's declared
  ``__shutdown_order__ = shutdown_order(...)`` contradicts the actual
  release-event sequence in its release methods, names an unknown
  attribute, or lists one that is never released.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import rule


@rule(
    "deep-resource-leak",
    family="resources",
    scope="project",
    description="acquired resource escapes every owner on some path",
)
def check_resource_leaks(ctx) -> Iterator[Finding]:
    for v in ctx.resources.leaks:
        if v.how == "unowned self store":
            detail = (
                f"{v.fn} stores a fresh resource on {v.name} but no release "
                f"method of the class tears that attribute down "
                f"({v.prov.describe()})"
            )
            hint = (
                "add a close()/shutdown() that releases the attribute, list "
                "it in __shutdown_order__ = shutdown_order(...), or hand "
                "ownership to a caller"
            )
        else:
            detail = (
                f"{v.fn} leaks {v.name!r} via {v.how}: {v.prov.describe()}"
            )
            hint = (
                "release it on every path (try/finally or a `with` block), "
                "return it to the caller, or pass it to a close-taking owner"
            )
        yield Finding(
            rule="deep-resource-leak",
            severity="error",
            path=v.relpath,
            line=v.line,
            message=detail,
            hint=hint,
        )


@rule(
    "deep-resource-double-close",
    family="resources",
    scope="project",
    description="release reachable twice on one path without @idempotent",
)
def check_double_close(ctx) -> Iterator[Finding]:
    for v in ctx.resources.double_closes:
        yield Finding(
            rule="deep-resource-double-close",
            severity="error",
            path=v.relpath,
            line=v.line,
            message=(
                f"{v.fn} releases {v.name!r} twice on one path (first at "
                f"line {v.first_line}); {v.prov.describe()} and its release "
                "is not declared idempotent"
            ),
            hint="guard the second release behind a closed-flag check, or "
            "decorate the release method with @repro.concurrency.idempotent "
            "if it already checks its own flag",
        )


@rule(
    "deep-shutdown-order",
    family="resources",
    scope="project",
    description="release events contradict the declared shutdown_order",
)
def check_shutdown_order(ctx) -> Iterator[Finding]:
    for v in ctx.resources.order_violations:
        cls_name = v.cls.rsplit(".", 1)[-1]
        yield Finding(
            rule="deep-shutdown-order",
            severity="error",
            path=v.relpath,
            line=v.line,
            message=f"{cls_name}: {v.message}",
            hint="release resources in the declared order (drain/notify "
            "before join before close), or fix the shutdown_order(...) "
            "declaration to match the intended teardown",
        )
