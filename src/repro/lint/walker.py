"""Repo walker: collect files, run rules, apply suppressions.

:func:`run_lint` is the single entry point the CLI, CI, and tests share.
File-scoped rules walk each source file's AST; repo-scoped rules
introspect declared artifacts once per invocation.  Findings landing on a
line covered by a ``# repro-lint: disable=...`` directive are dropped
(including findings from repo-scoped rules, which also resolve to
file:line locations).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

# Importing the rule modules registers them.
import repro.lint.rules_contracts  # noqa: F401
import repro.lint.rules_determinism  # noqa: F401
import repro.lint.rules_engine  # noqa: F401
import repro.lint.rules_markers  # noqa: F401
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, iter_rules
from repro.lint.suppress import SuppressionIndex

__all__ = ["DEFAULT_ROOTS", "iter_python_files", "run_lint"]

#: linted by default: the library itself plus the executable side trees.
DEFAULT_ROOTS = ("src/repro", "scripts", "benchmarks")

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(
    root: Path, paths: Iterable[str] | None = None
) -> Iterator[Path]:
    """Yield python files under *paths* (default roots when omitted).

    Missing explicit paths raise ``FileNotFoundError`` — a typo'd path
    silently linting nothing would defeat the CI gate.
    """
    targets = list(paths) if paths else list(DEFAULT_ROOTS)
    explicit = paths is not None and len(list(targets)) > 0
    seen: set[Path] = set()
    for target in targets:
        candidate = Path(target)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_file():
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield candidate
        elif candidate.is_dir():
            for path in sorted(candidate.rglob("*.py")):
                if set(path.parts) & _SKIP_DIRS:
                    continue
                if path not in seen:
                    seen.add(path)
                    yield path
        elif explicit and paths:
            raise FileNotFoundError(f"lint target does not exist: {target}")


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    root: Path | str = ".",
    paths: Iterable[str] | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint the repository; returns unsuppressed findings, sorted.

    ``rules`` filters by rule id (``ValueError`` on unknown ids).  Files
    that fail to parse produce a non-suppressible ``syntax-error`` finding.
    """
    root = Path(root)
    selected = list(iter_rules(rules))
    file_rules = [r for r in selected if r.scope == "file"]
    repo_rules = [r for r in selected if r.scope == "repo"]

    findings: list[Finding] = []
    suppressions: dict[str, SuppressionIndex] = {}

    for path in iter_python_files(root, paths):
        relpath = _relpath(path, root)
        source = path.read_text(encoding="utf-8")
        try:
            ctx = FileContext.from_source(source, relpath, path=path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    severity="error",
                    path=relpath,
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        index = SuppressionIndex.from_source(source, ctx.tree)
        suppressions[relpath] = index
        for file_rule in file_rules:
            for finding in file_rule.check(ctx):
                if not index.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)

    for repo_rule in repo_rules:
        for finding in repo_rule.check(root):
            index = suppressions.get(finding.path)
            if index is None:
                target = root / finding.path
                if target.is_file():
                    try:
                        index = SuppressionIndex.from_source(
                            target.read_text(encoding="utf-8")
                        )
                    except SyntaxError:
                        index = SuppressionIndex({})
                else:
                    index = SuppressionIndex({})
                suppressions[finding.path] = index
            if not index.is_suppressed(finding.rule, finding.line):
                findings.append(finding)

    return sorted(findings, key=Finding.sort_key)
