"""Repo walker: collect files, run rules, apply suppressions.

:func:`run_lint` is the single entry point the CLI, CI, and tests share.
File-scoped rules walk each source file's AST; repo-scoped rules
introspect declared artifacts once per invocation.  Findings landing on a
line covered by a ``# repro-lint: disable=...`` directive are dropped
(including findings from repo-scoped rules, which also resolve to
file:line locations).
"""

from __future__ import annotations

import subprocess
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Iterator

# Importing the rule modules registers them.
import repro.lint.rules_contracts  # noqa: F401
import repro.lint.rules_determinism  # noqa: F401
import repro.lint.rules_engine  # noqa: F401
import repro.lint.rules_markers  # noqa: F401
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, iter_rules
from repro.lint.suppress import SuppressionIndex

__all__ = ["DEFAULT_ROOTS", "changed_files", "iter_python_files", "run_lint"]

#: linted by default: the library itself plus the executable side trees.
DEFAULT_ROOTS = ("src/repro", "scripts", "benchmarks")

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(
    root: Path, paths: Iterable[str] | None = None
) -> Iterator[Path]:
    """Yield python files under *paths* (default roots when omitted).

    Missing explicit paths raise ``FileNotFoundError`` — a typo'd path
    silently linting nothing would defeat the CI gate.
    """
    targets = list(paths) if paths else list(DEFAULT_ROOTS)
    explicit = paths is not None and len(list(targets)) > 0
    seen: set[Path] = set()
    for target in targets:
        candidate = Path(target)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_file():
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield candidate
        elif candidate.is_dir():
            for path in sorted(candidate.rglob("*.py")):
                if set(path.parts) & _SKIP_DIRS:
                    continue
                if path not in seen:
                    seen.add(path)
                    yield path
        elif explicit and paths:
            raise FileNotFoundError(f"lint target does not exist: {target}")


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def changed_files(root: Path | str = ".", base: str = "HEAD") -> list[str]:
    """Python files changed vs *base* (``git diff``) plus untracked ones.

    Paths are repo-relative, restricted to the default lint roots, and
    deleted files are dropped.  Raises ``ValueError`` when *root* is not
    a git checkout or *base* does not resolve — a silent empty answer
    would make ``--changed-only`` pass vacuously.
    """
    root = Path(root)
    names: list[str] = []
    for cmd in (
        ["git", "-C", str(root), "diff", "--name-only", base, "--"],
        ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            raise ValueError(
                f"changed-files lookup failed ({' '.join(cmd[3:])}): "
                f"{detail[0] if detail else 'git error'}"
            )
        names.extend(line.strip() for line in proc.stdout.splitlines())
    out = []
    for name in sorted(set(names)):
        if not name.endswith(".py") or not (root / name).is_file():
            continue
        if any(
            name == r or name.startswith(f"{r}/") for r in DEFAULT_ROOTS
        ):
            out.append(name)
    return out


def _lint_one_file(
    path: Path, root: Path, file_rules: list
) -> tuple[str, list[Finding], SuppressionIndex | None]:
    """Parse + file-rule phase for one file (safe to run on any thread)."""
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        ctx = FileContext.from_source(source, relpath, path=path)
    except SyntaxError as exc:
        finding = Finding(
            rule="syntax-error",
            severity="error",
            path=relpath,
            line=exc.lineno or 1,
            message=f"file does not parse: {exc.msg}",
        )
        return relpath, [finding], None
    index = SuppressionIndex.from_source(source, ctx.tree)
    kept = [
        finding
        for file_rule in file_rules
        for finding in file_rule.check(ctx)
        if not index.is_suppressed(finding.rule, finding.line)
    ]
    return relpath, kept, index


def run_lint(
    root: Path | str = ".",
    paths: Iterable[str] | None = None,
    rules: Iterable[str] | None = None,
    jobs: int | None = None,
) -> list[Finding]:
    """Lint the repository; returns unsuppressed findings, sorted.

    ``rules`` filters by rule id (``ValueError`` on unknown ids).  Files
    that fail to parse produce a non-suppressible ``syntax-error`` finding.
    ``jobs`` > 1 fans the per-file parse+walk phase out over a thread
    pool; results are merged in file order, so the output is byte-for-byte
    identical to a serial run.
    """
    root = Path(root)
    selected = list(iter_rules(rules))
    file_rules = [r for r in selected if r.scope == "file"]
    repo_rules = [r for r in selected if r.scope == "repo"]

    findings: list[Finding] = []
    suppressions: dict[str, SuppressionIndex] = {}

    files = list(iter_python_files(root, paths))
    if jobs is not None and jobs > 1 and len(files) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            per_file = list(
                pool.map(lambda p: _lint_one_file(p, root, file_rules), files)
            )
    else:
        per_file = [_lint_one_file(p, root, file_rules) for p in files]
    for relpath, file_findings, index in per_file:
        findings.extend(file_findings)
        if index is not None:
            suppressions[relpath] = index

    for repo_rule in repo_rules:
        for finding in repo_rule.check(root):
            index = suppressions.get(finding.path)
            if index is None:
                target = root / finding.path
                if target.is_file():
                    try:
                        index = SuppressionIndex.from_source(
                            target.read_text(encoding="utf-8")
                        )
                    except SyntaxError:
                        index = SuppressionIndex({})
                else:
                    index = SuppressionIndex({})
                suppressions[finding.path] = index
            if not index.is_suppressed(finding.rule, finding.line):
                findings.append(finding)

    return sorted(findings, key=Finding.sort_key)
