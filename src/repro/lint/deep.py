"""Whole-program (``--deep``) orchestration.

:func:`run_deep` builds the project symbol table and call graph, runs the
inter-procedural analyses once, hands the shared :class:`DeepContext` to
every ``project``-scoped rule, applies the same per-file suppression
directives the shallow walker honours, and returns the findings plus a
summary (call-graph resolution accounting) for the JSON output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

# Importing the deep rule modules registers them.
import repro.lint.rules_deep_async  # noqa: F401
import repro.lint.rules_deep_exceptions  # noqa: F401
import repro.lint.rules_deep_locks  # noqa: F401
import repro.lint.rules_deep_taint  # noqa: F401
from repro.lint.asyncflow import AsyncFlowAnalysis
from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.dataflow import ExceptionAnalysis, TaintAnalysis
from repro.lint.findings import Finding
from repro.lint.locks import LockAnalysis
from repro.lint.registry import iter_rules
from repro.lint.suppress import SuppressionIndex
from repro.lint.symbols import SymbolTable

__all__ = ["DEEP_ROOTS", "DeepContext", "build_context", "run_deep"]

#: package trees the deep analyzer covers by default.  Only the library
#: itself: scripts/benchmarks are thin callers without cross-module flow.
DEEP_ROOTS = ("src/repro",)


@dataclass
class DeepContext:
    """Everything a project-scoped rule needs, computed once per run."""

    root: Path
    table: SymbolTable
    graph: CallGraph
    taint: TaintAnalysis
    escapes: ExceptionAnalysis
    locks: LockAnalysis
    asyncflow: AsyncFlowAnalysis
    #: per-analysis wall-clock seconds; None unless timings were requested
    #: (the default keeps the JSON report byte-identical across runs).
    timings: dict | None = None

    def summary(self) -> dict[str, object]:
        out: dict[str, object] = {
            "modules": len(self.table.modules),
            "classes": len(self.table.classes),
            "functions": len(self.table.functions),
            "callgraph": self.graph.summary(),
            "async": self.asyncflow.summary(),
        }
        if self.timings is not None:
            out["timings"] = self.timings
        return out


def build_context(
    root: Path | str = ".",
    package_dirs: tuple[str, ...] = DEEP_ROOTS,
    timings: bool = False,
) -> DeepContext:
    root = Path(root)
    elapsed: dict[str, float] = {}

    def timed(name: str, make):
        start = time.perf_counter()
        result = make()
        elapsed[name] = round(time.perf_counter() - start, 4)
        return result

    table = timed("symbols", lambda: SymbolTable.build(root, package_dirs))
    graph = timed("callgraph", lambda: build_call_graph(table))
    taint = timed("taint", lambda: TaintAnalysis(table, graph))
    escapes = timed("exceptions", lambda: ExceptionAnalysis(table, graph))
    locks = timed("locks", lambda: LockAnalysis(table, graph))
    asyncflow = timed(
        "asyncflow", lambda: AsyncFlowAnalysis(table, graph, locks)
    )
    return DeepContext(
        root=root,
        table=table,
        graph=graph,
        taint=taint,
        escapes=escapes,
        locks=locks,
        asyncflow=asyncflow,
        timings=elapsed if timings else None,
    )


def run_deep(
    root: Path | str = ".",
    package_dirs: tuple[str, ...] = DEEP_ROOTS,
    rules: Iterable[str] | None = None,
    context: DeepContext | None = None,
    timings: bool = False,
) -> tuple[list[Finding], dict[str, object]]:
    """Run project-scoped rules; returns (sorted findings, summary).

    ``rules`` filters by id exactly like the shallow walker — non-project
    ids in the filter are simply not run here (the CLI runs both layers).
    ``timings`` adds per-analysis wall-clock to the summary — off by
    default so the JSON report stays byte-identical across runs.
    """
    ctx = (
        context
        if context is not None
        else build_context(root, package_dirs, timings=timings)
    )
    project_rules = [r for r in iter_rules(rules) if r.scope == "project"]

    findings: list[Finding] = []
    for project_rule in project_rules:
        findings.extend(project_rule.check(ctx))
    # Findings are hashable; drop exact duplicates (e.g. one leak visible
    # through two overlapping protocol declarations).
    findings = list(dict.fromkeys(findings))

    # Apply the same `# repro-lint: disable=...` directives the shallow
    # walker honours, using the already-parsed module sources.
    indexes: dict[str, SuppressionIndex] = {}
    for mod in ctx.table.modules.values():
        indexes[mod.relpath] = SuppressionIndex.from_source(mod.source, mod.tree)
    kept = []
    for finding in findings:
        index = indexes.get(finding.path)
        if index is not None and index.is_suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)

    return sorted(kept, key=Finding.sort_key), ctx.summary()
