"""Whole-program (``--deep``) orchestration.

:func:`run_deep` builds the project symbol table and call graph, runs the
inter-procedural analyses once, hands the shared :class:`DeepContext` to
every ``project``-scoped rule, applies the same per-file suppression
directives the shallow walker honours, and returns the findings plus a
summary (call-graph resolution accounting) for the JSON output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

# Importing the deep rule modules registers them.
import repro.lint.rules_deep_async  # noqa: F401
import repro.lint.rules_deep_exceptions  # noqa: F401
import repro.lint.rules_deep_locks  # noqa: F401
import repro.lint.rules_deep_resources  # noqa: F401
import repro.lint.rules_deep_taint  # noqa: F401
from repro.lint.asyncflow import AsyncFlowAnalysis
from repro.lint.cache import AnalysisCache, take_snapshot
from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.dataflow import ExceptionAnalysis, TaintAnalysis
from repro.lint.findings import Finding
from repro.lint.locks import LockAnalysis
from repro.lint.registry import iter_rules
from repro.lint.resources import ResourceAnalysis
from repro.lint.suppress import SuppressionIndex
from repro.lint.symbols import SymbolTable

__all__ = ["DEEP_ROOTS", "DeepContext", "build_context", "run_deep"]

#: package trees the deep analyzer covers by default.  Only the library
#: itself: scripts/benchmarks are thin callers without cross-module flow.
DEEP_ROOTS = ("src/repro",)


@dataclass
class DeepContext:
    """Everything a project-scoped rule needs, computed once per run."""

    root: Path
    table: SymbolTable
    graph: CallGraph
    taint: TaintAnalysis
    escapes: ExceptionAnalysis
    locks: LockAnalysis
    asyncflow: AsyncFlowAnalysis
    resources: ResourceAnalysis
    #: per-analysis wall-clock seconds; None unless timings were requested
    #: (the default keeps the JSON report byte-identical across runs).
    timings: dict | None = None

    def summary(self) -> dict[str, object]:
        out: dict[str, object] = {
            "modules": len(self.table.modules),
            "classes": len(self.table.classes),
            "functions": len(self.table.functions),
            "callgraph": self.graph.summary(),
            "async": self.asyncflow.summary(),
            "resources": self.resources.summary(),
        }
        if self.timings is not None:
            out["timings"] = self.timings
        return out


def build_context(
    root: Path | str = ".",
    package_dirs: tuple[str, ...] = DEEP_ROOTS,
    timings: bool = False,
    tree_loader=None,
) -> DeepContext:
    root = Path(root)
    elapsed: dict[str, float] = {}

    def timed(name: str, make):
        start = time.perf_counter()
        result = make()
        elapsed[name] = round(time.perf_counter() - start, 4)
        return result

    table = timed(
        "symbols",
        lambda: SymbolTable.build(root, package_dirs, tree_loader=tree_loader),
    )
    graph = timed("callgraph", lambda: build_call_graph(table))
    taint = timed("taint", lambda: TaintAnalysis(table, graph))
    escapes = timed("exceptions", lambda: ExceptionAnalysis(table, graph))
    locks = timed("locks", lambda: LockAnalysis(table, graph))
    asyncflow = timed(
        "asyncflow", lambda: AsyncFlowAnalysis(table, graph, locks)
    )
    resources = timed("resources", lambda: ResourceAnalysis(table, graph))
    return DeepContext(
        root=root,
        table=table,
        graph=graph,
        taint=taint,
        escapes=escapes,
        locks=locks,
        asyncflow=asyncflow,
        resources=resources,
        timings=elapsed if timings else None,
    )


def run_deep(
    root: Path | str = ".",
    package_dirs: tuple[str, ...] = DEEP_ROOTS,
    rules: Iterable[str] | None = None,
    context: DeepContext | None = None,
    timings: bool = False,
    cache: "AnalysisCache | None" = None,
    changed: Iterable[str] | None = None,
) -> tuple[list[Finding], dict[str, object]]:
    """Run project-scoped rules; returns (sorted findings, summary).

    ``rules`` filters by id exactly like the shallow walker — non-project
    ids in the filter are simply not run here (the CLI runs both layers).
    ``timings`` adds per-analysis wall-clock to the summary — off by
    default so the JSON report stays byte-identical across runs.

    With ``cache`` (an :class:`repro.lint.cache.AnalysisCache`), the run
    first fingerprints the tree: an exact match returns the cached
    findings and summary verbatim (byte-identical to the run that stored
    them, plus a ``cache`` stats block); a miss re-analyzes — reusing
    cached parse trees for unchanged files — and stores the result.  The
    stored summary never includes timings or cache stats, so warm and
    cold output differ only in those fields.

    ``changed`` (the ``--changed-only`` file list) never narrows the
    analysis — the fixpoints are whole-program — but adds a ``scope``
    block to the summary stating exactly that, including the
    dependency-aware blast radius when a cache is available.
    """
    rules = list(rules) if rules is not None else None
    changed = list(changed) if changed is not None else None
    snapshot = key = None
    tree_loader = None
    if cache is not None and context is None:
        snapshot = take_snapshot(root, package_dirs)
        key = cache.deep_key(snapshot, rules)
        hit = cache.load_deep(key)
        if hit is not None:
            findings, summary = hit
            summary = dict(summary)
            summary["cache"] = _cache_stats(cache, snapshot)
            if changed is not None:
                summary["scope"] = _scope_stats(cache, snapshot, changed)
            return findings, summary
        tree_loader = cache.tree_loader(snapshot)
    ctx = (
        context
        if context is not None
        else build_context(
            root, package_dirs, timings=timings, tree_loader=tree_loader
        )
    )
    project_rules = [r for r in iter_rules(rules) if r.scope == "project"]

    findings: list[Finding] = []
    for project_rule in project_rules:
        findings.extend(project_rule.check(ctx))
    # Findings are hashable; drop exact duplicates (e.g. one leak visible
    # through two overlapping protocol declarations).
    findings = list(dict.fromkeys(findings))

    # Apply the same `# repro-lint: disable=...` directives the shallow
    # walker honours, using the already-parsed module sources.
    indexes: dict[str, SuppressionIndex] = {}
    for mod in ctx.table.modules.values():
        indexes[mod.relpath] = SuppressionIndex.from_source(mod.source, mod.tree)
    kept = []
    for finding in findings:
        index = indexes.get(finding.path)
        if index is not None and index.is_suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)

    result = sorted(kept, key=Finding.sort_key)
    summary = ctx.summary()
    if cache is not None and key is not None and snapshot is not None:
        stored = {k: v for k, v in summary.items() if k != "timings"}
        cache.store_deep(key, result, stored, snapshot)
        summary = dict(summary)
        summary["cache"] = _cache_stats(cache, snapshot)
    if changed is not None:
        summary = dict(summary)
        summary["scope"] = _scope_stats(cache, snapshot, changed)
    return result, summary


def _cache_stats(cache: "AnalysisCache", snapshot) -> dict[str, object]:
    """The ``cache`` block of the schema-v3 summary."""
    return {
        "enabled": True,
        "files": len(snapshot.files),
        "deep_hit": cache.stats["deep_hit"],
        "tree_hits": cache.stats["tree_hits"],
        "tree_misses": cache.stats["tree_misses"],
    }


def _scope_stats(
    cache: "AnalysisCache | None", snapshot, changed: list
) -> dict[str, object]:
    """The ``scope`` block: what --changed-only --deep actually analyzed.

    The deep analysis is whole-program, so --changed-only never narrows
    it; this block says so out loud instead of letting the flag imply a
    narrower run than actually happened.
    """
    scope: dict[str, object] = {"changed_only": True}
    if cache is not None and snapshot is not None:
        stale = cache.stale_files(snapshot, changed)
        scope["analysis"] = (
            "cached" if cache.stats["deep_hit"] else "full"
        )
        scope["changed_in_tree"] = sum(
            1 for p in changed if p in snapshot.files
        )
        scope["stale_files"] = len(stale)
    else:
        scope["analysis"] = "full"
        scope["note"] = (
            "deep analysis is whole-program; --changed-only does not "
            "narrow it.  Pass --cache DIR to reuse the previous result "
            "when no analyzed file changed."
        )
    return scope
