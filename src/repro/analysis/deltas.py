"""Delta tables: paper-style comparisons between two result rows."""

from __future__ import annotations

from typing import Mapping

__all__ = ["delta_table"]


def delta_table(
    ours: Mapping[str, float],
    reference: Mapping[str, float],
) -> dict[str, dict[str, float]]:
    """Cellwise comparison of two F1 rows sharing the same columns.

    Returns per column: both values, the delta, and whether the signs of
    the deltas agree when both rows are themselves deltas.
    """
    out: dict[str, dict[str, float]] = {}
    for column in ours:
        if column not in reference:
            continue
        a, b = ours[column], reference[column]
        out[column] = {
            "ours": a,
            "reference": b,
            "delta": a - b,
            "sign_agrees": float((a >= 0) == (b >= 0)),
        }
    return out
