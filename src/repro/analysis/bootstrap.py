"""Bootstrap confidence intervals for F1 scores.

The paper selects datasets with ≥150 test matches "to ensure the stability
of the performance measurement"; this module quantifies that stability for
any split via a percentile bootstrap over test pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import derive_rng
from repro.eval.metrics import f1_score

__all__ = ["F1Interval", "bootstrap_f1_interval"]


@dataclass(frozen=True)
class F1Interval:
    """Point estimate plus a percentile-bootstrap confidence interval."""

    f1: float
    lower: float
    upper: float
    confidence: float

    @property
    def width(self) -> float:
        return self.upper - self.lower


def bootstrap_f1_interval(
    labels: np.ndarray,
    predictions: np.ndarray,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> F1Interval:
    """Percentile bootstrap CI of the F1 score over test pairs."""
    labels = np.asarray(labels, dtype=bool)
    predictions = np.asarray(predictions, dtype=bool)
    if labels.size == 0:
        raise ValueError("cannot bootstrap an empty evaluation")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    point = f1_score(labels, predictions).f1
    rng = derive_rng(seed, "bootstrap-f1")
    n = labels.size
    samples = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        samples[b] = f1_score(labels[idx], predictions[idx]).f1
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(samples, [alpha, 1.0 - alpha])
    return F1Interval(
        f1=point, lower=float(lower), upper=float(upper), confidence=confidence
    )
