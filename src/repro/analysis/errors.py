"""Error breakdowns: where does a model fail?

Splits a model's test errors by corner-case status and error type —
the paper's corner-case framing ("matching or non-matching pairs that
closely resemble the opposite class") made quantitative.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import Split
from repro.llm.model import ChatModel
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate

__all__ = ["error_breakdown"]


def error_breakdown(
    model: ChatModel,
    split: Split,
    template: PromptTemplate = DEFAULT_PROMPT,
) -> dict[str, dict[str, float]]:
    """Error rates per pair category.

    Returns, for each of ``corner``/``easy``: the number of pairs, the
    false-negative rate among matches and the false-positive rate among
    non-matches.
    """
    predictions = model.predict_pairs(split.pairs, template)
    out: dict[str, dict[str, float]] = {}
    for corner in (True, False):
        subset = [
            (pair, pred)
            for pair, pred in zip(split.pairs, predictions)
            if pair.corner_case == corner
        ]
        matches = [(p, pr) for p, pr in subset if p.label]
        nonmatches = [(p, pr) for p, pr in subset if not p.label]
        fn_rate = (
            sum(1 for _, pr in matches if not pr) / len(matches) if matches else 0.0
        )
        fp_rate = (
            sum(1 for _, pr in nonmatches if pr) / len(nonmatches)
            if nonmatches
            else 0.0
        )
        out["corner" if corner else "easy"] = {
            "pairs": float(len(subset)),
            "false_negative_rate": fn_rate,
            "false_positive_rate": fp_rate,
        }
    return out
