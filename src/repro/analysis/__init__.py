"""Result analysis: confidence intervals, error breakdowns, delta tables."""

from repro.analysis.bootstrap import bootstrap_f1_interval
from repro.analysis.errors import error_breakdown
from repro.analysis.deltas import delta_table

__all__ = ["bootstrap_f1_interval", "delta_table", "error_breakdown"]
