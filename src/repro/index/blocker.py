"""Batch MinHash/LSH blocking with per-record top-k ranking.

Implements the :class:`~repro.index.protocol.Blocker` shape over the
index subsystem: the right collection is signed and banded into a
:class:`~repro.index.shard.ShardedBandIndex`, every left record probes
it, and the colliding candidates are ranked by estimated Jaccard with
only the top *k* kept.  Unlike the incremental path, a rank cut-off is
sound here — the candidate set is a deterministic function of the two
full collections — and it is what makes the candidate set size
O(k · |left|) instead of quadratic.
"""

from __future__ import annotations

from repro.blocking.base import BlockingResult
from repro.blocking.token import blocking_tokens
from repro.datasets.schema import Record
from repro.index.lsh import LSHBanding
from repro.index.minhash import MinHasher
from repro.index.shard import ShardedBandIndex
from repro.index.topk import rank_candidates

__all__ = ["MinHashBlocker"]


class MinHashBlocker:
    """Keep, per left record, the top-*k* band-colliding right records.

    ``k=None`` keeps every collision at or above ``min_similarity``.
    Banding comes from an explicit ``(bands, rows)`` or the solver at
    ``(num_perm, threshold)``; everything is seeded, so two runs block
    identically.
    """

    def __init__(
        self,
        k: int | None = 10,
        num_perm: int = 128,
        threshold: float = 0.5,
        bands: int | None = None,
        rows: int | None = None,
        seed: int = 0,
        shards: int = 1,
        min_similarity: float = 0.0,
    ) -> None:
        if k is not None and k <= 0:
            raise ValueError("k must be positive (or None for no cut-off)")
        if (bands is None) != (rows is None):
            raise ValueError("pass both of bands/rows, or neither")
        if not 0.0 <= min_similarity <= 1.0:
            raise ValueError("min_similarity must be in [0, 1]")
        self.k = k
        self.min_similarity = min_similarity
        self.seed = seed
        self.shards = shards
        if bands is not None and rows is not None:
            self.banding = LSHBanding(bands, rows)
        else:
            self.banding = LSHBanding.from_threshold(num_perm, threshold)

    def block(
        self, left: list[Record], right: list[Record]
    ) -> BlockingResult:
        """Produce candidate pairs between two record collections."""
        hasher = MinHasher(num_perm=self.banding.num_perm, seed=self.seed)
        postings = ShardedBandIndex(shards=self.shards)
        signatures: dict[str, object] = {}
        # Zero-padded ids sort lexicographically like integers, so the
        # deterministic tie-break ranks equal-similarity candidates by
        # their position in the right collection.
        width = len(str(max(len(right) - 1, 0)))
        for j, record in enumerate(right):
            signature = hasher.signature(
                blocking_tokens(record.description)
            )
            if signature is None:
                continue
            name = f"{j:0{width}d}"
            signatures[name] = signature
            postings.add(name, self.banding.band_keys(signature))
        candidates: set[tuple[int, int]] = set()
        for i, record in enumerate(left):
            signature = hasher.signature(
                blocking_tokens(record.description)
            )
            if signature is None:
                continue
            found = postings.query(self.banding.band_keys(signature))
            ranked = rank_candidates(
                signature,
                [(name, signatures[name]) for name in found],
                k=self.k,
                min_similarity=self.min_similarity,
            )
            for entry in ranked:
                candidates.add((i, int(entry.record_id)))
        return BlockingResult(
            tuple(left), tuple(right), frozenset(candidates)
        )
