"""LSH banding over MinHash signatures, with a banding-parameter solver.

Split a ``num_perm``-wide signature into ``bands`` bands of ``rows``
rows each; two records become candidates when **any** band hashes to the
same bucket.  For true Jaccard similarity *s* the collision probability
is the S-curve ``1 - (1 - s**rows)**bands``, which crosses 1/2 near the
characteristic threshold ``(1/bands)**(1/rows)`` — more rows per band
push the threshold up (stricter), more bands push it down (looser).

:func:`solve_banding` inverts that relationship: given a signature
budget and a target similarity threshold it picks the ``(bands, rows)``
grid point whose characteristic threshold lands closest to the target,
preferring parameterizations that use more of the signature (tighter
S-curve) on ties.
"""

from __future__ import annotations

import numpy as np

from repro._util import derive_rng

__all__ = [
    "LSHBanding",
    "collision_probability",
    "solve_banding",
    "threshold_at",
]


def threshold_at(bands: int, rows: int) -> float:
    """Characteristic similarity threshold of a (bands, rows) banding."""
    if bands <= 0 or rows <= 0:
        raise ValueError("bands and rows must be positive")
    return (1.0 / bands) ** (1.0 / rows)


def collision_probability(similarity: float, bands: int, rows: int) -> float:
    """P(two records share >= 1 band bucket | Jaccard = *similarity*)."""
    if bands <= 0 or rows <= 0:
        raise ValueError("bands and rows must be positive")
    if not 0.0 <= similarity <= 1.0:
        raise ValueError("similarity must be in [0, 1]")
    return 1.0 - (1.0 - similarity**rows) ** bands


def solve_banding(num_perm: int, threshold: float) -> tuple[int, int]:
    """Choose (bands, rows) with ``bands*rows <= num_perm`` for *threshold*.

    Deterministic: among all row counts, minimize the distance between
    the banding's characteristic threshold and the target; break ties
    toward more permutations used (a sharper S-curve), then toward fewer
    rows (cheaper buckets).
    """
    if num_perm <= 0:
        raise ValueError("num_perm must be positive")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    best: tuple[float, int, int, int, int] | None = None
    for rows in range(1, num_perm + 1):
        bands = num_perm // rows
        if bands == 0:
            break
        score = (
            abs(threshold_at(bands, rows) - threshold),
            -(bands * rows),
            rows,
        )
        if best is None or score < best[:3]:
            best = (*score, bands, rows)
    assert best is not None  # num_perm >= 1 always yields a candidate
    return best[3], best[4]


class LSHBanding:
    """Maps signatures to per-band bucket keys.

    A bucket key mixes the band's signature rows through seeded
    per-(band, row) odd multipliers plus a per-band offset — one
    vectorized uint64 multiply/sum over the whole signature, no
    per-band hashing loop (this is the ingest hot path at 100k
    records).  Distinct bands use distinct coefficients, so equal
    value-slices in different bands do not collide; two *different*
    row vectors collide with probability ~2⁻⁶⁴.  Signatures must be
    exactly ``bands * rows`` wide.
    """

    def __init__(self, bands: int, rows: int, seed: int = 0) -> None:
        if bands <= 0 or rows <= 0:
            raise ValueError("bands and rows must be positive")
        self.bands = bands
        self.rows = rows
        self.seed = seed
        rng = derive_rng(seed, "index", "lsh", bands, rows)
        self._coefficients = (
            rng.integers(0, 2**62, size=(bands, rows), dtype=np.uint64)
            * np.uint64(2)
            + np.uint64(1)
        )
        self._offsets = rng.integers(
            0, 2**62, size=bands, dtype=np.uint64
        )

    @classmethod
    def from_threshold(
        cls, num_perm: int, threshold: float, seed: int = 0
    ) -> "LSHBanding":
        """Banding solved for a similarity threshold (see :func:`solve_banding`)."""
        bands, rows = solve_banding(num_perm, threshold)
        return cls(bands, rows, seed=seed)

    @property
    def num_perm(self) -> int:
        """Signature width this banding consumes."""
        return self.bands * self.rows

    def band_keys(self, signature: np.ndarray) -> tuple[int, ...]:
        """One bucket key per band for *signature*."""
        if signature.shape != (self.num_perm,):
            raise ValueError(
                f"signature width {signature.shape} != "
                f"bands*rows = {self.num_perm}"
            )
        mixed = (
            self._coefficients * signature.reshape(self.bands, self.rows)
        ).sum(axis=1, dtype=np.uint64) + self._offsets
        return tuple(mixed.tolist())
