"""Candidate-generation interfaces.

Two shapes cover every blocking strategy in the library:

* :class:`Blocker` — the **batch** interface: two full record
  collections in, a :class:`~repro.blocking.base.BlockingResult` out.
  :class:`~repro.blocking.token.TokenBlocker`,
  :class:`~repro.blocking.embedding.EmbeddingBlocker` and
  :class:`~repro.index.blocker.MinHashBlocker` all implement it
  structurally.

* :class:`CandidateIndex` — the **incremental** interface
  :class:`~repro.resolve.incremental.ResolutionStore` ingests through:
  records arrive one at a time; ``candidates`` must be a *pairwise
  symmetric* predicate of the two records alone (never a function of
  what else is indexed — no frequency pruning, no top-k), because that
  is exactly what makes the store's candidate edge set — and therefore
  its clustering — insertion-order invariant.

``CandidateIndex`` is deliberately a plain base class rather than a
``typing.Protocol``: the lock-discipline analyzer (``repro-em lint
--deep``) treats Protocol-declared methods as blocking I/O boundaries,
and the candidate index is in-memory state that the store *must* touch
under its lock.  Implementations subclass it (or just match its shape —
the store only duck-types).
"""

from __future__ import annotations

from typing import Protocol

from repro.blocking.base import BlockingResult
from repro.datasets.schema import Record

__all__ = ["Blocker", "CandidateIndex"]


class Blocker(Protocol):
    """Batch candidate generation over two record collections."""

    def block(
        self, left: list[Record], right: list[Record]
    ) -> BlockingResult:
        """Produce candidate pairs between two record collections."""
        ...


class CandidateIndex:
    """Incremental candidate generation for online ingestion.

    The contract (relied on by ``ResolutionStore``):

    * ``add`` indexes one record's description;
    * ``candidates`` returns the **sorted** ids of already-indexed
      records that are candidates for *description*, excluding
      ``exclude``;
    * candidacy is symmetric and pairwise — whether two records are
      candidates depends only on those two records, so any insertion
      order yields the same candidate edge set over a full ingestion;
    * a description with no tokens has no blocking key: it is never a
      candidate for anything (including other token-less records);
    * ``blocking_keys`` names the integer keys candidacy is routed
      through: two records can only be candidates when their key sets
      intersect.  A sharded store replicates each record onto every
      shard owning one of its keys (``key % shards``), which is what
      guarantees every candidate pair co-occurs in at least one shard.
    """

    def add(self, record_id: str, description: str) -> None:
        """Index one record's description."""
        raise NotImplementedError

    def candidates(
        self, description: str, exclude: str | None = None
    ) -> tuple[str, ...]:
        """Sorted ids of indexed records that are candidates for this one."""
        raise NotImplementedError

    def blocking_keys(self, description: str) -> tuple[int, ...]:
        """Integer routing keys for one description (sorted, deduplicated).

        Default: one stable 64-bit hash per blocking token, matching the
        shared-token predicate of the default token index — two
        descriptions share a candidate-generating token iff their key
        sets intersect.  Key-collision false *positives* only widen
        replication (harmless); what an implementation must never do is
        return disjoint key sets for a pair its ``candidates`` would
        surface.
        """
        from repro._util import stable_hash
        from repro.blocking.token import blocking_tokens

        return tuple(
            sorted({stable_hash(token) for token in blocking_tokens(description)})
        )
