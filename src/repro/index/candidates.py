"""MinHash/LSH incremental candidate index for online ingestion.

The pipeline per record: tokenize (blocking tokens) → MinHash signature
→ LSH band keys → sharded postings.  The candidate predicate served to
:class:`~repro.resolve.incremental.ResolutionStore` is

    *candidates iff the two records share at least one band bucket and
    their estimated Jaccard is at least* ``min_similarity``,

which is a symmetric function of **the two records alone** — band keys
and signatures are pure functions of each record's token set — so over
a full ingestion the candidate edge set is identical for every
insertion order, exactly the invariant the store's 5-shuffle tests pin.
That is also why :meth:`candidates` never applies top-k: a rank cut-off
would make candidacy depend on what else was indexed at query time.
Top-k ranking lives on :meth:`top_candidates` (reporting, benchmarks)
and on the batch :class:`~repro.index.blocker.MinHashBlocker`, where the
candidate set is a deterministic function of the full collections.

Signatures are stored in one contiguous ``(capacity, num_perm)`` uint64
matrix (doubling growth), so evaluating the similarity floor — or a
ranking — over a query's band collisions is a single fancy-indexed
numpy comparison rather than a per-candidate dict walk; at 100k records
a query touches ~1000 collisions and this is the difference between
microseconds and milliseconds.

The index itself is not locked — the store guards it, like
:class:`~repro.resolve.incremental.TokenCandidateIndex` — but the shard
layer underneath carries per-shard locks so direct concurrent use of
:class:`~repro.index.shard.ShardedBandIndex` stays safe.
"""

from __future__ import annotations

import numpy as np

from repro.blocking.token import blocking_tokens
from repro.index.lsh import LSHBanding
from repro.index.minhash import MinHasher
from repro.index.protocol import CandidateIndex
from repro.index.shard import ShardedBandIndex
from repro.index.topk import RankedCandidate

__all__ = ["MinHashCandidateIndex"]

_INITIAL_CAPACITY = 256


class MinHashCandidateIndex(CandidateIndex):
    """Incremental MinHash/LSH candidate generation.

    Either pass an explicit ``(bands, rows)`` banding or let the solver
    pick one for ``(num_perm, threshold)``.  ``min_similarity`` adds a
    signature-level similarity floor on top of the band-collision
    predicate (still pairwise symmetric); 0.0 means pure banding.
    """

    def __init__(
        self,
        num_perm: int = 128,
        threshold: float = 0.5,
        bands: int | None = None,
        rows: int | None = None,
        seed: int = 0,
        shards: int = 8,
        min_similarity: float = 0.0,
    ) -> None:
        if (bands is None) != (rows is None):
            raise ValueError("pass both of bands/rows, or neither")
        if not 0.0 <= min_similarity <= 1.0:
            raise ValueError("min_similarity must be in [0, 1]")
        if bands is not None and rows is not None:
            self.banding = LSHBanding(bands, rows)
        else:
            self.banding = LSHBanding.from_threshold(num_perm, threshold)
        self.hasher = MinHasher(num_perm=self.banding.num_perm, seed=seed)
        self.min_similarity = min_similarity
        self._postings = ShardedBandIndex(shards=shards)
        self._row: dict[str, int] = {}
        self._matrix = np.empty(
            (_INITIAL_CAPACITY, self.banding.num_perm), dtype=np.uint64
        )
        self._count = 0
        #: records indexed with an empty token set (no blocking key).
        self.unindexable = 0

    def __len__(self) -> int:
        return self._count + self.unindexable

    def add(self, record_id: str, description: str) -> None:
        """Index one record; token-less records get no blocking key."""
        if record_id in self._row:
            raise ValueError(f"record {record_id!r} already indexed")
        signature = self.hasher.signature(blocking_tokens(description))
        if signature is None:
            self.unindexable += 1
            return
        if self._count == len(self._matrix):
            grown = np.empty(
                (2 * len(self._matrix), self.banding.num_perm),
                dtype=np.uint64,
            )
            grown[: self._count] = self._matrix
            self._matrix = grown
        self._matrix[self._count] = signature
        self._row[record_id] = self._count
        self._count += 1
        self._postings.add(record_id, self.banding.band_keys(signature))

    def _floor_similarities(
        self, signature: np.ndarray, found: list[str]
    ) -> np.ndarray:
        """Estimated Jaccard of *signature* against each id in *found*."""
        rows = np.fromiter(
            (self._row[record_id] for record_id in found),
            dtype=np.intp,
            count=len(found),
        )
        return (
            (self._matrix[rows] == signature[np.newaxis, :])
            .mean(axis=1)
        )

    def candidates(
        self, description: str, exclude: str | None = None
    ) -> tuple[str, ...]:
        """Sorted ids sharing a band bucket (and the similarity floor)."""
        signature = self.hasher.signature(blocking_tokens(description))
        if signature is None:
            return ()
        found = [
            record_id
            for record_id in self._postings.query(
                self.banding.band_keys(signature)
            )
            if record_id != exclude
        ]
        if not found or self.min_similarity == 0.0:
            return tuple(found)
        keep = self._floor_similarities(signature, found)
        keep = keep >= self.min_similarity
        return tuple(
            record_id
            for record_id, kept in zip(found, keep.tolist())
            if kept
        )

    def blocking_keys(self, description: str) -> tuple[int, ...]:
        """LSH band keys of the description's signature.

        Overrides the token-hash default: for this index, candidacy is
        routed through band buckets, not raw tokens — two records can
        only be candidates when a band key collides, so replicating a
        record onto the shards owning its band keys covers every pair
        this index would surface.  Token-less records have no keys.
        """
        signature = self.hasher.signature(blocking_tokens(description))
        if signature is None:
            return ()
        return tuple(sorted({int(k) for k in self.banding.band_keys(signature)}))

    def snapshot_state(self) -> dict:
        """JSON-ready live state (see :mod:`repro.resolve.snapshot`).

        Signatures serialize as plain int lists in row order; postings
        are *not* serialized — they are a pure function of the
        signatures and rebuild in the same per-bucket order on restore.
        """
        ids_by_row = sorted(self._row, key=self._row.__getitem__)
        return {
            "ids": ids_by_row,
            "signatures": self._matrix[: self._count].tolist(),
            "unindexable": self.unindexable,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild matrix, row map, and postings from snapshot state."""
        ids = [str(record_id) for record_id in state["ids"]]
        signatures = state["signatures"]
        if len(ids) != len(signatures):
            raise ValueError(
                f"snapshot row mismatch: {len(ids)} ids, "
                f"{len(signatures)} signatures"
            )
        capacity = max(_INITIAL_CAPACITY, len(ids))
        self._matrix = np.empty(
            (capacity, self.banding.num_perm), dtype=np.uint64
        )
        if ids:
            self._matrix[: len(ids)] = np.asarray(signatures, dtype=np.uint64)
        self._row = {record_id: row for row, record_id in enumerate(ids)}
        self._count = len(ids)
        self.unindexable = int(state.get("unindexable", 0))
        self._postings = ShardedBandIndex(shards=self._postings.shard_count)
        for row, record_id in enumerate(ids):
            self._postings.add(
                record_id, self.banding.band_keys(self._matrix[row])
            )

    def signature_of(self, record_id: str) -> np.ndarray | None:
        """The stored signature of an indexed record (None if token-less)."""
        row = self._row.get(record_id)
        if row is None:
            return None
        return self._matrix[row].copy()

    def top_candidates(
        self, record_id: str, k: int | None = None
    ) -> tuple[RankedCandidate, ...]:
        """Ranked candidates of an already-indexed record.

        Same ordering contract as :func:`repro.index.topk
        .rank_candidates` — similarity descending, record id ascending
        on ties — computed against the contiguous signature matrix.
        Reporting/benchmark path only: the incremental predicate never
        truncates by rank (see the module docstring).
        """
        if k is not None and k <= 0:
            raise ValueError("k must be positive (or None for no cut-off)")
        row = self._row.get(record_id)
        if row is None:
            return ()
        signature = self._matrix[row]
        found = [
            other
            for other in self._postings.query(
                self.banding.band_keys(signature)
            )
            if other != record_id
        ]
        if not found:
            return ()
        similarities = self._floor_similarities(signature, found)
        # lexsort's last key is primary: similarity descending, then
        # record id ascending — found is already sorted, so stable
        # order on -similarities alone would also do, but the explicit
        # key pair keeps the contract independent of that detail.
        order = np.lexsort((np.array(found), -similarities))
        ranked = [
            RankedCandidate(found[i], float(similarities[i]))
            for i in order.tolist()
            if similarities[i] >= self.min_similarity
        ]
        if k is not None:
            ranked = ranked[:k]
        return tuple(ranked)

    def stats(self) -> dict[str, object]:
        """Index composition snapshot (shard layout, bucket fill)."""
        return {
            "records": len(self),
            "indexed": self._count,
            "unindexable": self.unindexable,
            "num_perm": self.banding.num_perm,
            "bands": self.banding.bands,
            "rows": self.banding.rows,
            "min_similarity": self.min_similarity,
            **self._postings.stats(),
        }
