"""Seeded MinHash signatures over record token sets.

A MinHash signature compresses a token set into ``num_perm`` 64-bit
minima such that the probability two signatures agree at any one
position equals the Jaccard similarity of the underlying sets — so the
fraction of agreeing positions is an unbiased Jaccard estimate with
standard error ``sqrt(J(1-J)/num_perm)``.

Permutations are the classic multiply-shift family ``h_i(x) = a_i*x +
b_i (mod 2**64)`` with odd ``a_i``, derived deterministically from an
explicit seed via :func:`repro._util.derive_rng` (the ``unseeded-rng``
lint rule holds over this package); token base hashes come from
:func:`repro._util.stable_hash`, never the salted builtin ``hash``.
Signatures are therefore bit-identical across processes and platforms.

An **empty token set has no signature** (``signature`` returns
``None``): hashing nothing would give every token-less record the same
constant signature and fuse them all into one universal LSH bucket —
exactly the degenerate blocking bucket the tokenization contract
forbids (see :func:`repro.blocking.token.blocking_tokens`).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._util import derive_rng, stable_hash

__all__ = ["MinHasher", "estimated_jaccard", "exact_jaccard"]


class MinHasher:
    """Computes ``num_perm``-wide MinHash signatures for token sets.

    Instances memoize token base hashes (the blake2b call is the per-
    token cost; corpora reuse a bounded vocabulary), so one hasher
    should be shared across a whole ingestion.  Two hashers with the
    same ``(num_perm, seed)`` produce identical signatures.
    """

    def __init__(self, num_perm: int = 128, seed: int = 0) -> None:
        if num_perm <= 0:
            raise ValueError("num_perm must be positive")
        self.num_perm = num_perm
        self.seed = seed
        rng = derive_rng(seed, "index", "minhash", num_perm)
        # Odd multipliers + offsets, shaped (num_perm, 1) so one
        # broadcastable multiply covers every (permutation, token) cell.
        # uint64 arithmetic wraps mod 2**64, which is the hash family.
        self._a = (
            rng.integers(0, 2**62, size=(num_perm, 1), dtype=np.uint64)
            * np.uint64(2)
            + np.uint64(1)
        )
        self._b = rng.integers(0, 2**62, size=(num_perm, 1), dtype=np.uint64)
        self._token_hashes: dict[str, int] = {}

    def _token_hash(self, token: str) -> int:
        cached = self._token_hashes.get(token)
        if cached is None:
            cached = stable_hash("minhash-token", token)
            self._token_hashes[token] = cached
        return cached

    def signature(self, tokens: Iterable[str]) -> np.ndarray | None:
        """MinHash signature of the distinct *tokens*, or None if empty.

        The result is a ``(num_perm,)`` uint64 array; token order (and
        multiplicity) never affects it.
        """
        distinct = set(tokens)
        if not distinct:
            return None
        hashes = np.fromiter(
            (self._token_hash(t) for t in sorted(distinct)),
            dtype=np.uint64,
            count=len(distinct),
        )
        return (self._a * hashes[np.newaxis, :] + self._b).min(axis=1)


def estimated_jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of agreeing signature positions (unbiased Jaccard estimate)."""
    if a.shape != b.shape:
        raise ValueError(
            f"signature widths differ: {a.shape} vs {b.shape}"
        )
    return float((a == b).mean())


def exact_jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Exact Jaccard similarity of two token sets (1.0 for two empties)."""
    set_a, set_b = set(a), set(b)
    union = len(set_a | set_b)
    if union == 0:
        return 1.0
    return len(set_a & set_b) / union
