"""Sharded inverted index over LSH band buckets.

Postings (bucket key → record ids) are partitioned across shards by
bucket-key hash, each shard behind its own lock, so concurrent ingestion
only contends on the shards a record's band keys actually land in.
Merged query results are independent of the shard count: a K-shard
index answers every query exactly like a single-shard one (tested by
``tests/index/test_shard.py``), because partitioning is a pure function
of the bucket key and per-bucket insertion order is preserved within a
shard.

Lock discipline follows the repo convention: every shard's postings map
is declared ``guarded_by("_lock")`` and verified by ``repro-em lint
--deep``; no blocking call happens under a shard lock, and shard locks
never nest (one shard is touched at a time), so the lock-order graph
stays acyclic.
"""

from __future__ import annotations

import threading
from typing import Annotated, Sequence

from repro.concurrency import guarded_by

__all__ = ["ShardedBandIndex"]


class _Shard:
    """One partition of the postings map, guarded by its own lock."""

    _buckets: Annotated["dict[int, list[str]]", guarded_by("_lock")]

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = {}

    def append(self, keys: Sequence[int], record_id: str) -> None:
        """Add *record_id* to every bucket in *keys* (one lock hold)."""
        with self._lock:
            buckets = self._buckets
            for key in keys:
                posting = buckets.get(key)
                if posting is None:
                    buckets[key] = [record_id]
                else:
                    posting.append(record_id)

    def members(self, keys: Sequence[int]) -> list[str]:
        """Postings of every bucket in *keys*, concatenated."""
        out: list[str] = []
        with self._lock:
            for key in keys:
                out.extend(self._buckets.get(key, ()))
        return out

    def stats(self) -> tuple[int, int, int]:
        """(buckets, postings, largest bucket) for this shard."""
        with self._lock:
            if not self._buckets:
                return 0, 0, 0
            sizes = [len(ids) for ids in self._buckets.values()]
            return len(sizes), sum(sizes), max(sizes)


class ShardedBandIndex:
    """Band-bucket postings partitioned over per-shard locks.

    The shard of a bucket is ``key % shards`` — a pure function of the
    (stable) bucket key, so shard routing is deterministic and the
    merged view never depends on how many shards exist.
    """

    def __init__(self, shards: int = 8) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self._shards = tuple(_Shard() for _ in range(shards))

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _route(self, band_keys: Sequence[int]) -> list[list[int]]:
        """Group *band_keys* by owning shard, indexed by shard number."""
        routed: list[list[int]] = [[] for _ in self._shards]
        count = len(self._shards)
        for key in band_keys:
            routed[key % count].append(key)
        return routed

    def add(self, record_id: str, band_keys: Sequence[int]) -> None:
        """Append *record_id* to every band bucket, shard by shard.

        Shards are visited in ascending index order, one lock at a time
        (never nested), so concurrent adders cannot deadlock.
        """
        for shard, keys in enumerate(self._route(band_keys)):
            if keys:
                self._shards[shard].append(keys, record_id)

    def query(self, band_keys: Sequence[int]) -> tuple[str, ...]:
        """Sorted distinct ids appearing in any of the *band_keys* buckets."""
        found: set[str] = set()
        for shard, keys in enumerate(self._route(band_keys)):
            if keys:
                found.update(self._shards[shard].members(keys))
        return tuple(sorted(found))

    def stats(self) -> dict[str, object]:
        """Merged postings statistics (shard layout included)."""
        per_shard = [shard.stats() for shard in self._shards]
        return {
            "shards": len(self._shards),
            "buckets": sum(s[0] for s in per_shard),
            "postings": sum(s[1] for s in per_shard),
            "max_bucket": max((s[2] for s in per_shard), default=0),
            "buckets_per_shard": [s[0] for s in per_shard],
        }
