"""Top-k candidate ranking by estimated Jaccard.

Ranking is fully deterministic: candidates sort by descending estimated
similarity with ties broken by ascending record id, so two runs (or two
shard layouts) produce byte-identical rankings.  Similarity estimates
come from vectorized signature agreement — one numpy comparison over
the stacked candidate signatures, not a Python loop per pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["RankedCandidate", "rank_candidates"]


@dataclass(frozen=True)
class RankedCandidate:
    """One ranked candidate: its record id and estimated Jaccard."""

    record_id: str
    similarity: float


def rank_candidates(
    signature: np.ndarray,
    others: Sequence[tuple[str, np.ndarray]],
    k: int | None = None,
    min_similarity: float = 0.0,
) -> tuple[RankedCandidate, ...]:
    """Rank *others* against *signature*; keep the top *k*.

    ``others`` is (record id, signature) pairs; ``k=None`` keeps every
    candidate at or above ``min_similarity``.  Order: similarity
    descending, then record id ascending (deterministic tie-break).
    """
    if k is not None and k <= 0:
        raise ValueError("k must be positive (or None for no cut-off)")
    if not others:
        return ()
    ids = [record_id for record_id, _ in others]
    matrix = np.stack([sig for _, sig in others])
    similarities = (matrix == signature[np.newaxis, :]).mean(axis=1)
    order = sorted(
        range(len(ids)), key=lambda i: (-similarities[i], ids[i])
    )
    ranked = [
        RankedCandidate(ids[i], float(similarities[i]))
        for i in order
        if similarities[i] >= min_similarity
    ]
    if k is not None:
        ranked = ranked[:k]
    return tuple(ranked)
