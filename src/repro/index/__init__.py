"""Scalable candidate generation: MinHash signatures, LSH banding,
sharded band-bucket postings, and top-k ranking by estimated Jaccard.

The layer between records and the matching engine (DESIGN.md §17):

    tokens ──MinHasher──▶ signature ──LSHBanding──▶ band keys
           ──ShardedBandIndex──▶ colliding candidates
           ──rank_candidates──▶ top-k by estimated Jaccard

Entry points:

* :class:`MinHashCandidateIndex` — the incremental
  :class:`CandidateIndex` :class:`~repro.resolve.incremental
  .ResolutionStore` ingests through (order-invariant pairwise
  predicate, no top-k);
* :class:`MinHashBlocker` — the batch :class:`Blocker` for
  :func:`~repro.resolve.pipeline.resolve_blocking` and the CLI
  (top-k candidate sets, O(k·n) instead of quadratic);
* ``repro-em index`` / ``benchmarks/bench_blocking_scale.py`` — recall
  vs candidate-set size reporting over one shared code path
  (:func:`repro.blocking.base.recall_curve`).
"""

from repro.index.blocker import MinHashBlocker
from repro.index.candidates import MinHashCandidateIndex
from repro.index.lsh import (
    LSHBanding,
    collision_probability,
    solve_banding,
    threshold_at,
)
from repro.index.minhash import MinHasher, estimated_jaccard, exact_jaccard
from repro.index.protocol import Blocker, CandidateIndex
from repro.index.shard import ShardedBandIndex
from repro.index.topk import RankedCandidate, rank_candidates

__all__ = [
    "Blocker",
    "CandidateIndex",
    "LSHBanding",
    "MinHashBlocker",
    "MinHashCandidateIndex",
    "MinHasher",
    "RankedCandidate",
    "ShardedBandIndex",
    "collision_probability",
    "estimated_jaccard",
    "exact_jaccard",
    "rank_candidates",
    "solve_banding",
    "threshold_at",
]
