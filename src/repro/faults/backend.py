"""Fault-injecting backend wrappers.

:class:`FaultyBackend` implements the :class:`~repro.engine.backends.Backend`
protocol around any inner backend and sabotages calls according to a
:class:`~repro.faults.plan.FaultPlan` — transport errors, injected
timeouts (simulated time, via :class:`~repro.faults.clock.ManualClock`),
garbled completions, truncated / over-long / mis-associated response
lists.  The wrapper is transparent at fault rate 0: it returns the inner
backend's answers untouched, which the chaos harness verifies
byte-for-byte.

:class:`CrashingBackend` models a *process death* instead of a transport
fault: after a configured number of batches it raises
:class:`SimulatedCrash`, which deliberately derives from
``BaseException`` so that neither the retry loop (``except Exception``)
nor the engine's typed fallback handlers can absorb it — exactly like a
SIGKILL, the run stops mid-flight and only the write-ahead journal
survives.
"""

from __future__ import annotations

import threading
from typing import Annotated, Callable

from repro.concurrency import guarded_by
from repro.engine.backends import Backend
from repro.engine.retry import BackendError
from repro.faults.plan import FaultPlan

__all__ = ["GARBLED_COMPLETION", "CrashingBackend", "FaultyBackend", "SimulatedCrash"]

#: what a garbled completion looks like: no parseable yes/no marker, so
#: the engine's parser degrades it to "unparseable" (a non-match) — the
#: same convention the evaluator applies to hedged answers.
GARBLED_COMPLETION = "@@ 0xDEADBEEF garbled transport frame @@"


class SimulatedCrash(BaseException):
    """The simulated process death of a chaos kill point.

    Derives from ``BaseException`` on purpose: a real crash is not an
    error the engine can retry or degrade around, so this must sail past
    ``except Exception`` retry boundaries and abort the run.
    """


class FaultyBackend:
    """Backend wrapper that injects scheduled faults (thread-safe)."""

    #: backend calls seen so far (addresses call-keyed plans).
    calls: Annotated[int, guarded_by("_lock")]
    #: fault kind → number of times it was injected.
    injected: Annotated["dict[str, int]", guarded_by("_lock")]
    #: content addressing: prompt → attempts made (transient faults hit
    #: only a prompt's first attempt, so retry provably absorbs them).
    _attempts: Annotated["dict[str, int]", guarded_by("_lock")]

    def __init__(
        self,
        inner: Backend,
        plan: FaultPlan,
        clock: Callable[[], float] | None = None,
        timeout_advance: float = 0.0,
    ) -> None:
        """Wrap *inner* under *plan*.

        ``timeout`` faults fast-forward *clock* by ``timeout_advance``
        simulated seconds — set it above the engine's
        ``RetryPolicy.timeout`` so the attempt blows its budget.  Both
        are required when the plan can draw ``timeout``.
        """
        if plan.script is not None:  # scripted plans bypass kind draws
            may_time_out = "timeout" in plan.script
        else:
            may_time_out = plan.fault_rate > 0.0 and "timeout" in plan.kinds
        if may_time_out and plan.addressing == "call":
            advance = getattr(clock, "advance", None)
            if advance is None or timeout_advance <= 0.0:
                raise ValueError(
                    "timeout faults need an advanceable clock and a "
                    "positive timeout_advance"
                )
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.timeout_advance = timeout_advance
        self.name = f"faulty:{inner.name}"
        self.calls = 0
        self.injected = {}
        self._attempts = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- recording

    def _record(self, kind: str, n: int = 1) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + n

    def injected_counts(self) -> dict[str, int]:
        """Snapshot of fault kind → injections so far (sorted keys)."""
        with self._lock:
            return {kind: self.injected[kind] for kind in sorted(self.injected)}

    # -------------------------------------------------------------- faulting

    def generate(self, prompts: list[str]) -> list[str]:
        if self.plan.addressing == "content":
            return self._generate_content(prompts)
        with self._lock:
            index = self.calls
            self.calls += 1
        kind = self.plan.fault_for_call(index)
        if kind == "error":
            self._record("error")
            raise BackendError(f"{self.name}: injected transport error (call {index})")
        responses = self.inner.generate(prompts)
        if kind is None:
            return responses
        self._record(kind)
        if kind == "timeout":
            # The answers are "produced", but only after the attempt's
            # simulated wall-clock budget is blown — the engine must
            # discard them as a BackendTimeout and retry.
            self.clock.advance(self.timeout_advance)
            return responses
        if kind == "garble":
            return [GARBLED_COMPLETION for _ in responses]
        if kind == "truncate":
            return responses[:-1]
        if kind == "overlong":
            return responses + [GARBLED_COMPLETION]
        if kind == "duplicate":
            # Mis-associated batch: every slot answers for the first
            # prompt.  Same length, so the transport layer cannot detect
            # it — it surfaces only as degraded decision quality.
            return [responses[0]] * len(responses) if responses else responses
        raise BackendError(f"{self.name}: unhandled fault kind {kind!r}")

    def _generate_content(self, prompts: list[str]) -> list[str]:
        """Content-keyed faulting: outcome independent of interleaving."""
        with self._lock:
            self.calls += 1
            transient_error = False
            garbled = []
            for prompt in prompts:
                kind = self.plan.fault_for_prompt(prompt)
                if kind == "error" and self._attempts.get(prompt, 0) == 0:
                    transient_error = True
                garbled.append(kind == "garble")
                self._attempts[prompt] = self._attempts.get(prompt, 0) + 1
        if transient_error:
            self._record("error")
            raise BackendError(f"{self.name}: injected transient transport error")
        responses = self.inner.generate(prompts)
        if any(garbled):
            self._record("garble", sum(garbled))
            responses = [
                GARBLED_COMPLETION if bad else response
                for response, bad in zip(responses, garbled)
            ]
        return responses


class CrashingBackend:
    """Kill switch: dies (raises :class:`SimulatedCrash`) after N batches."""

    #: completed backend calls (the crash happens *instead of* call N+1,
    #: i.e. at a batch boundary — retired work is already journaled).
    calls: Annotated[int, guarded_by("_lock")]

    def __init__(self, inner: Backend, kill_after: int | None = None) -> None:
        if kill_after is not None and kill_after < 0:
            raise ValueError("kill_after must be non-negative")
        self.inner = inner
        self.kill_after = kill_after
        self.name = f"crashing:{inner.name}"
        self.calls = 0
        self._lock = threading.Lock()

    def arm_in(self, batches: int) -> None:
        """Schedule the crash *batches* completed batches from now (min 1).

        Chaos schedules re-arm a live backend mid-run; the arithmetic
        against the running ``calls`` counter has to happen under the
        same lock ``generate`` increments it under.
        """
        with self._lock:
            self.kill_after = self.calls + max(batches, 1) - 1

    def disarm(self) -> None:
        """Cancel any scheduled crash."""
        with self._lock:
            self.kill_after = None

    def tripped(self) -> bool:
        """True once the scheduled crash point has been reached."""
        with self._lock:
            return self.kill_after is not None and self.calls >= self.kill_after

    # The whole point of this double is to violate the Backend boundary
    # contract: a simulated process death must NOT surface as a
    # BackendError the retry/fallback machinery could absorb.
    def generate(self, prompts: list[str]) -> list[str]:  # repro-lint: disable=deep-exception-boundary — SimulatedCrash models SIGKILL; it must escape every typed handler by design.
        with self._lock:
            crash = self.kill_after is not None and self.calls >= self.kill_after
            if not crash:
                self.calls += 1
        if crash:
            raise SimulatedCrash(
                f"{self.name}: simulated crash at batch boundary "
                f"{self.kill_after}"
            )
        return self.inner.generate(prompts)
