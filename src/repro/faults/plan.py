"""Deterministic fault schedules for chaos runs.

A :class:`FaultPlan` decides, ahead of time, which backend calls are
sabotaged and how.  Every draw comes from
:func:`repro._util.derive_rng`, namespaced by the plan seed and the
call's address, so a chaos run is a pure function of ``(seed,
fault_rate, workload)`` — re-running it reproduces the exact same fault
sequence bit-for-bit, which is what lets the harness assert byte-level
invariants instead of "usually works".

Two addressing modes cover the two chaos shapes:

* ``"call"`` — faults keyed on the backend-call index.  The full
  taxonomy is available.  Deterministic for single-threaded runs (the
  call order is the program order).
* ``"content"`` — faults keyed on the *prompt text* (stable-hashed), so
  the outcome for each prompt is independent of how concurrent callers
  interleave their batches.  Restricted to fault kinds whose effect is a
  pure function of the prompt: transient transport errors (absorbed by
  retry before they can change any answer) and garbled completions
  (always garbled for that prompt).  This is the mode the multi-threaded
  chaos test runs under.

Scripted plans (:meth:`FaultPlan.scripted`, :meth:`FaultPlan.flapping`)
pin an explicit per-call schedule for walking specific state-machine
paths — e.g. the circuit breaker's closed → open → half-open → closed
cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import derive_rng, stable_hash

__all__ = ["FAULT_KINDS", "CONTENT_FAULT_KINDS", "FaultPlan"]

#: the full failure taxonomy the engine claims to handle, as injectable
#: fault kinds (see :class:`repro.faults.backend.FaultyBackend` for the
#: mechanics of each):
#:
#: * ``error``     — the whole call raises a transport ``BackendError``;
#: * ``timeout``   — the call succeeds but consumes more simulated time
#:   than the retry policy's per-attempt budget, so the engine discards
#:   it as a ``BackendTimeout``;
#: * ``garble``    — completions come back malformed (unparseable text);
#: * ``truncate``  — the response list is one answer short;
#: * ``overlong``  — the response list has one answer too many;
#: * ``duplicate`` — every slot carries a copy of the first answer
#:   (mis-associated responses: undetectable at the transport layer,
#:   surfaces only as degraded answer quality).
FAULT_KINDS = ("error", "timeout", "garble", "truncate", "overlong", "duplicate")

#: kinds whose per-prompt outcome is interleaving-independent (see
#: module docstring); the only kinds ``addressing="content"`` permits.
CONTENT_FAULT_KINDS = ("error", "garble")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, reproducible schedule of injected backend faults."""

    seed: int = 0
    #: probability that any given address draws a fault, in [0, 1].
    fault_rate: float = 0.0
    #: fault kinds the plan may draw from (uniformly).
    kinds: tuple[str, ...] = FAULT_KINDS
    #: ``"call"`` (index-keyed) or ``"content"`` (prompt-keyed).
    addressing: str = "call"
    #: explicit per-call schedule; when set, rate/kind draws are bypassed
    #: and calls beyond the script are fault-free.
    script: tuple[str | None, ...] | None = field(default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate {self.fault_rate} outside [0, 1]")
        if self.addressing not in ("call", "content"):
            raise ValueError(f"unknown addressing {self.addressing!r}")
        allowed = FAULT_KINDS if self.addressing == "call" else CONTENT_FAULT_KINDS
        for kind in self.kinds:
            if kind not in allowed:
                raise ValueError(
                    f"unknown or disallowed fault kind {kind!r} for "
                    f"{self.addressing!r} addressing (allowed: {allowed})"
                )
        if not self.kinds and (self.fault_rate > 0.0 and self.script is None):
            raise ValueError("fault_rate > 0 with no fault kinds to draw")
        if self.script is not None:
            for kind in self.script:
                if kind is not None and kind not in FAULT_KINDS:
                    raise ValueError(f"unknown scripted fault kind {kind!r}")

    # ------------------------------------------------------------ factories

    @classmethod
    def scripted(cls, schedule: "tuple[str | None, ...] | list[str | None]") -> "FaultPlan":
        """Plan with an explicit per-call fault schedule."""
        return cls(script=tuple(schedule))

    @classmethod
    def flapping(cls, failure_threshold: int, recovery_calls: int = 4) -> "FaultPlan":
        """Script that walks a breaker closed → open → half-open → closed.

        ``failure_threshold`` consecutive transport errors trip the
        breaker open; one ``timeout`` fault burns enough simulated time
        for the cooldown to elapse (the timed-out call itself also fails,
        which is harmless while open); the remaining ``recovery_calls``
        clean calls let the half-open probe succeed and re-close the
        circuit.
        """
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        return cls.scripted(
            ("error",) * failure_threshold
            + ("timeout",)
            + (None,) * max(recovery_calls, 1)
        )

    # ------------------------------------------------------------- drawing

    def fault_for_call(self, call_index: int) -> str | None:
        """Fault kind for backend call number *call_index* (0-based)."""
        if self.script is not None:
            if 0 <= call_index < len(self.script):
                return self.script[call_index]
            return None
        if self.fault_rate <= 0.0:
            return None
        rng = derive_rng(self.seed, "fault-plan", call_index)
        if rng.random() >= self.fault_rate:
            return None
        return self.kinds[int(rng.integers(len(self.kinds)))]

    def fault_for_prompt(self, prompt: str) -> str | None:
        """Fault kind assigned to *prompt* under content addressing."""
        if self.fault_rate <= 0.0:
            return None
        rng = derive_rng(self.seed, "fault-content", stable_hash(prompt))
        if rng.random() >= self.fault_rate:
            return None
        return self.kinds[int(rng.integers(len(self.kinds)))]
