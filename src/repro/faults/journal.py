"""Crash-safe append-only JSONL journal (write-ahead log for long runs).

Every retired unit of work — an engine decision inside a
:class:`~repro.resolve.incremental.ResolutionStore` ingestion, a per-pair
prediction inside :func:`repro.eval.evaluator.evaluate_model` — is
appended as one JSON line and fsync'd before the run moves on.  A run
killed at any point can then be replayed from the journal and continued,
producing output byte-identical to an uninterrupted run (the continuing
engine is deterministic, and already-journaled work is never re-decided).

File format::

    {"type": "header", "version": 1, "kind": "resolve", ...}\n
    {"type": "record", "record_id": "a", ...}\n
    {"type": "decision", "left": "a", "right": "b", "match": true, ...}\n
    {"type": "commit", "record_id": "a"}\n

Torn writes: a crash mid-append leaves a final line without a trailing
newline (or with truncated JSON).  :func:`read_journal` detects exactly
that case and drops the torn line — the unit of work it described was
never acknowledged, so the resumed run simply redoes it.  A malformed
line *before* the final one is not a crash artifact and raises
:class:`JournalError` (the file was corrupted, not torn).

A special case of the torn tail is a **torn header**: the process died
between creating the file and fsyncing the header line, leaving an empty
file or a single truncated line.  No work was ever acknowledged through
such a journal, so recovery callers pass ``allow_blank=True`` and treat
it as an empty journal (start fresh) rather than a corrupt one.

Durability of the *file itself*: creating a journal (and truncating one
in :func:`repair`) also fsyncs the parent directory — without that, a
crash after the header fsync could still lose the directory entry, i.e.
the file's contents would be durable but the file would not exist.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalWriter",
    "fsync_dir",
    "journal_header",
    "read_journal",
    "repair",
]

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """The journal file is corrupt or does not match the resuming run.

    Structured: ``path`` is the offending journal file and ``lineno`` the
    1-based line the problem was detected on (``None`` when the error is
    about the file as a whole), so callers — and the CLI — can point at
    the exact line instead of printing a bare traceback.
    """

    def __init__(
        self,
        message: str,
        path: "str | Path | None" = None,
        lineno: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.path = None if path is None else Path(path)
        self.lineno = lineno


def fsync_dir(directory: str | Path) -> None:
    """Flush a directory entry to disk (file create/rename/truncate).

    File-content fsync does not cover the directory that names the file;
    a crash can durably persist bytes into a file that no longer has a
    directory entry.  No-op on platforms without ``os.O_DIRECTORY``.
    """
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:  # pragma: no cover — non-POSIX
        return
    fd = os.open(str(directory), os.O_RDONLY | flag)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class JournalWriter:
    """Append-only, fsync'd JSONL writer (thread-safe).

    Opening a path that does not exist (or is empty) writes a header
    line first — and fsyncs the parent directory so the freshly created
    file survives a crash; reopening an existing journal appends after
    its current end, which is how a resumed run continues the same file.
    """

    def __init__(self, path: str | Path, header: dict | None = None) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        #: entries acknowledged through *this writer* (header excluded);
        #: incremented under the writer lock, so it is exact even with
        #: concurrent appenders — snapshot sequence numbers build on it.
        self.entries = 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            fsync_dir(self.path.parent)
            self.append(
                {"type": "header", "version": JOURNAL_VERSION, **(header or {})}
            )
            self.entries = 0  # the header is not an entry.

    def append(self, record: dict) -> None:
        """Write one record and force it to disk before returning."""
        line = json.dumps(record, sort_keys=True, ensure_ascii=True)
        if "\n" in line:  # pragma: no cover — json never emits raw newlines
            raise JournalError("journal records must be single-line JSON")
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.entries += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _is_blank(raw: bytes) -> bool:
    """True when *raw* is a torn-header artifact (no acknowledged line).

    Covers both crash windows of journal creation: nothing written yet
    (empty file), and a single header line whose trailing newline never
    landed (torn, regardless of whether the JSON happens to parse).
    """
    if not raw:
        return True
    return b"\n" not in raw


def read_journal(
    path: str | Path,
    expect: dict | None = None,
    allow_blank: bool = False,
) -> tuple[list[dict], bool]:
    """Parse a journal; returns ``(records, torn)``.

    ``records`` excludes the header line.  ``torn`` is True when the
    final line was a torn write (no trailing newline or truncated JSON)
    and was dropped.  ``expect`` entries are checked against the header
    (e.g. ``{"kind": "resolve"}``) so a journal from a different run
    cannot be replayed into the wrong consumer.

    With ``allow_blank=True`` a journal with no acknowledged header —
    empty file, or a single line with no trailing newline (the crash
    windows between ``open()`` and the header fsync) — parses as
    ``([], True)`` instead of raising: it is an *empty* journal, not a
    corrupt one.
    """
    path = Path(path)
    raw = path.read_bytes()
    if _is_blank(raw):
        if allow_blank:
            return [], bool(raw)
        raise JournalError(f"{path}: empty journal (missing header)", path=path)
    lines = raw.decode("utf-8", errors="replace").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    complete = raw.endswith(b"\n")
    torn = False
    parsed: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        final = lineno == len(lines)
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("journal line is not an object")
        except ValueError:
            if final:
                torn = True
                break
            raise JournalError(
                f"{path}:{lineno}: corrupt journal line (not valid JSON)",
                path=path,
                lineno=lineno,
            ) from None
        if final and not complete:
            # Parseable JSON but no trailing newline: the fsync that
            # acknowledged this line never completed — still a torn write.
            torn = True
            break
        parsed.append(record)
    if not parsed or parsed[0].get("type") != "header":
        raise JournalError(
            f"{path}: first journal line is not a header", path=path, lineno=1
        )
    header = parsed[0]
    version = header.get("version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: unsupported journal version {version!r} "
            f"(expected {JOURNAL_VERSION})",
            path=path,
            lineno=1,
        )
    for key, value in (expect or {}).items():
        if header.get(key) != value:
            raise JournalError(
                f"{path}: journal header {key}={header.get(key)!r} does not "
                f"match the resuming run ({key}={value!r})",
                path=path,
                lineno=1,
            )
    return parsed[1:], torn


def journal_header(path: str | Path) -> dict:
    """The parsed header line of a journal (validated for shape only).

    Lets recovery consumers inspect optional header fields —
    ``basis`` (compaction bookkeeping), configuration fingerprints —
    without re-reading the whole file.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        first = handle.readline()
    if not first.endswith(b"\n"):
        raise JournalError(
            f"{path}: first journal line is not a header", path=path, lineno=1
        )
    try:
        header = json.loads(first)
        if not isinstance(header, dict):
            raise ValueError("journal line is not an object")
    except ValueError:
        raise JournalError(
            f"{path}: first journal line is not a header", path=path, lineno=1
        ) from None
    if header.get("type") != "header":
        raise JournalError(
            f"{path}: first journal line is not a header", path=path, lineno=1
        )
    return header


def repair(path: str | Path) -> bool:
    """Truncate a torn final line in place; True when bytes were dropped.

    Appending after a torn tail would concatenate the new record onto the
    crash fragment and corrupt *both* lines, so every resume must repair
    before reopening the journal for writing.  A torn *header* (a file
    whose only line never got its newline) truncates to an empty file,
    which :class:`JournalWriter` then re-initialises.  A journal with no
    torn tail is left untouched.  The truncation is fsync'd (file and
    directory) before returning.
    """
    path = Path(path)
    _, torn = read_journal(path, allow_blank=True)
    if not torn:
        return False
    raw = path.read_bytes()
    if not raw:
        return False
    body = raw[:-1] if raw.endswith(b"\n") else raw
    keep = body.rfind(b"\n") + 1
    with open(path, "r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_dir(path.parent)
    return True
