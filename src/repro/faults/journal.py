"""Crash-safe append-only JSONL journal (write-ahead log for long runs).

Every retired unit of work — an engine decision inside a
:class:`~repro.resolve.incremental.ResolutionStore` ingestion, a per-pair
prediction inside :func:`repro.eval.evaluator.evaluate_model` — is
appended as one JSON line and fsync'd before the run moves on.  A run
killed at any point can then be replayed from the journal and continued,
producing output byte-identical to an uninterrupted run (the continuing
engine is deterministic, and already-journaled work is never re-decided).

File format::

    {"type": "header", "version": 1, "kind": "resolve", ...}\n
    {"type": "record", "record_id": "a", ...}\n
    {"type": "decision", "left": "a", "right": "b", "match": true, ...}\n
    {"type": "commit", "record_id": "a"}\n

Torn writes: a crash mid-append leaves a final line without a trailing
newline (or with truncated JSON).  :func:`read_journal` detects exactly
that case and drops the torn line — the unit of work it described was
never acknowledged, so the resumed run simply redoes it.  A malformed
line *before* the final one is not a crash artifact and raises
:class:`JournalError` (the file was corrupted, not torn).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalWriter",
    "read_journal",
    "repair",
]

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """The journal file is corrupt or does not match the resuming run."""


class JournalWriter:
    """Append-only, fsync'd JSONL writer (thread-safe).

    Opening a path that does not exist (or is empty) writes a header
    line first; reopening an existing journal appends after its current
    end, which is how a resumed run continues the same file.
    """

    def __init__(self, path: str | Path, header: dict | None = None) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self.append(
                {"type": "header", "version": JOURNAL_VERSION, **(header or {})}
            )

    def append(self, record: dict) -> None:
        """Write one record and force it to disk before returning."""
        line = json.dumps(record, sort_keys=True, ensure_ascii=True)
        if "\n" in line:  # pragma: no cover — json never emits raw newlines
            raise JournalError("journal records must be single-line JSON")
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(
    path: str | Path, expect: dict | None = None
) -> tuple[list[dict], bool]:
    """Parse a journal; returns ``(records, torn)``.

    ``records`` excludes the header line.  ``torn`` is True when the
    final line was a torn write (no trailing newline or truncated JSON)
    and was dropped.  ``expect`` entries are checked against the header
    (e.g. ``{"kind": "resolve"}``) so a journal from a different run
    cannot be replayed into the wrong consumer.
    """
    raw = Path(path).read_bytes()
    if not raw:
        raise JournalError(f"{path}: empty journal (missing header)")
    complete = raw.endswith(b"\n")
    lines = raw.decode("utf-8", errors="replace").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    torn = False
    parsed: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        final = lineno == len(lines)
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("journal line is not an object")
        except ValueError:
            if final:
                torn = True
                break
            raise JournalError(
                f"{path}:{lineno}: corrupt journal line (not valid JSON)"
            ) from None
        if final and not complete:
            # Parseable JSON but no trailing newline: the fsync that
            # acknowledged this line never completed — still a torn write.
            torn = True
            break
        parsed.append(record)
    if not parsed or parsed[0].get("type") != "header":
        raise JournalError(f"{path}: first journal line is not a header")
    header = parsed[0]
    version = header.get("version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: unsupported journal version {version!r} "
            f"(expected {JOURNAL_VERSION})"
        )
    for key, value in (expect or {}).items():
        if header.get(key) != value:
            raise JournalError(
                f"{path}: journal header {key}={header.get(key)!r} does not "
                f"match the resuming run ({key}={value!r})"
            )
    return parsed[1:], torn


def repair(path: str | Path) -> bool:
    """Truncate a torn final line in place; True when bytes were dropped.

    Appending after a torn tail would concatenate the new record onto the
    crash fragment and corrupt *both* lines, so every resume must repair
    before reopening the journal for writing.  A journal with no torn
    tail is left untouched.
    """
    path = Path(path)
    _, torn = read_journal(path)
    if not torn:
        return False
    raw = path.read_bytes()
    body = raw[:-1] if raw.endswith(b"\n") else raw
    keep = body.rfind(b"\n") + 1
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return True
