"""repro.faults: deterministic fault injection, chaos harness, WAL recovery.

Three layers (see DESIGN.md §13):

* :mod:`repro.faults.plan` / :mod:`repro.faults.backend` — seeded,
  bit-reproducible fault schedules and the backend wrappers that execute
  them (:class:`FaultyBackend` for transport chaos,
  :class:`CrashingBackend` for simulated process death).
* :mod:`repro.faults.harness` — the chaos invariant harness: swept
  fault-rate runs over the engine and the resolution store, with every
  conservation / fidelity / determinism guarantee checked per run.
* :mod:`repro.faults.journal` — the append-only fsync'd JSONL
  write-ahead log behind ``ResolutionStore.recover`` and journaled
  evaluation, including torn-tail detection and repair.
"""

from repro.faults.backend import (
    GARBLED_COMPLETION,
    CrashingBackend,
    FaultyBackend,
    SimulatedCrash,
)
from repro.faults.clock import ManualClock
from repro.faults.harness import (
    ChaosReport,
    ParityBackend,
    build_chaos_engine,
    chaos_engine_on,
    chaos_match,
    chaos_resolve,
    engine_stats_violations,
    kill_resume_roundtrip,
    resolution_snapshot,
    sharded_conservation_violations,
    sharded_kill_resume_roundtrip,
    sweep,
    synthetic_pairs,
    synthetic_records,
)
from repro.faults.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalWriter,
    fsync_dir,
    journal_header,
    read_journal,
    repair,
)
from repro.faults.plan import CONTENT_FAULT_KINDS, FAULT_KINDS, FaultPlan

__all__ = [
    "CONTENT_FAULT_KINDS",
    "ChaosReport",
    "CrashingBackend",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyBackend",
    "GARBLED_COMPLETION",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalWriter",
    "ManualClock",
    "ParityBackend",
    "SimulatedCrash",
    "build_chaos_engine",
    "chaos_engine_on",
    "chaos_match",
    "chaos_resolve",
    "engine_stats_violations",
    "fsync_dir",
    "journal_header",
    "kill_resume_roundtrip",
    "read_journal",
    "repair",
    "resolution_snapshot",
    "sharded_conservation_violations",
    "sharded_kill_resume_roundtrip",
    "sweep",
    "synthetic_pairs",
    "synthetic_records",
]
