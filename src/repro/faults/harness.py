"""Chaos invariant harness: sweep fault rates, assert engine guarantees.

The harness runs the two online workloads — engine matching
(:meth:`~repro.engine.MatchingEngine.match_pairs`) and incremental
resolution (:meth:`~repro.resolve.incremental.ResolutionStore.ingest_all`)
— against a :class:`~repro.faults.backend.FaultyBackend` over a grid of
seeds and fault rates, and checks the invariants the engine promises no
matter how the backend misbehaves:

* **No request lost or answered twice** — one result per input pair, in
  input order, each with a legal source.
* **Exact counter conservation** — ``backend + fallback + cache`` answers
  equal ``requests``; per-class error counters (timeouts, transport,
  circuit-open, malformed) sum to ``retries + failures``.
* **Fallback fidelity** — every degraded answer equals what a standalone
  :class:`~repro.baselines.threshold.ThresholdMatcher` says for that pair.
* **Transparency at rate 0** — wrapping the backend with a zero-rate
  plan changes nothing, byte for byte (responses, decisions, sources,
  clusterings).
* **Determinism** — the whole chaos run is a pure function of
  ``(seed, fault_rate, workload)``; reports carry a stable fingerprint
  so two runs can be compared bit-for-bit.

Violations are *collected*, not raised: a :class:`ChaosReport` with a
non-empty ``violations`` tuple is a failing run, and the CLI / CI job
turn that into a non-zero exit.  Time is simulated throughout
(:class:`~repro.faults.clock.ManualClock`), so a sweep costs milliseconds
and injected timeouts are exact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro._util import derive_rng, stable_hash
from repro.baselines.threshold import ThresholdMatcher
from repro.datasets.schema import EntityPair, Record, Split
from repro.engine.engine import MatchingEngine, MatchResult
from repro.engine.retry import CircuitBreaker, RetryPolicy
from repro.engine.scheduler import Scheduler
from repro.faults.backend import CrashingBackend, FaultyBackend, SimulatedCrash
from repro.faults.clock import ManualClock
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.resolve.incremental import ResolutionStore

__all__ = [
    "ChaosReport",
    "ParityBackend",
    "build_chaos_engine",
    "chaos_engine_on",
    "chaos_match",
    "chaos_resolve",
    "engine_stats_violations",
    "kill_resume_roundtrip",
    "resolution_snapshot",
    "sharded_conservation_violations",
    "sharded_kill_resume_roundtrip",
    "sweep",
    "synthetic_pairs",
    "synthetic_records",
]

#: simulated-time knobs: an injected timeout advances the clock past the
#: per-attempt budget *and* past the breaker cooldown, so opened circuits
#: can recover within a run instead of pinning everything to fallback.
_TIMEOUT_BUDGET = 1.0
_TIMEOUT_ADVANCE = 2.5
_COOLDOWN = 2.0

_VALID_SOURCES = ("backend", "cache", "fallback")


# ------------------------------------------------------------------ workloads

_VOCAB = (
    "acme", "anvil", "turbo", "widget", "gadget", "ultra", "mini", "max",
    "laptop", "phone", "router", "camera", "mixer", "drill", "kettle",
)


def synthetic_records(count: int, seed: int = 0, duplicates: int = 3) -> list[Record]:
    """Deterministic dedup workload: families of near-duplicate records.

    Records in one family share a three-token base description (so token
    blocking surfaces them as candidates) plus a per-record variant token
    drawn from the seeded stream.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = derive_rng(seed, "chaos-records")
    records = []
    for i in range(count):
        family = i // max(duplicates, 1)
        base = [_VOCAB[(family * 3 + j) % len(_VOCAB)] for j in range(3)]
        variant = _VOCAB[int(rng.integers(len(_VOCAB)))]
        records.append(
            Record(
                record_id=f"r{i:03d}",
                attributes={"family": str(family)},
                description=" ".join(base + [variant, f"rev{i % max(duplicates, 1)}"]),
            )
        )
    return records


def synthetic_pairs(count: int, seed: int = 0) -> list[tuple[str, str]]:
    """Deterministic matching workload with natural repeats.

    Pairs are drawn (with replacement) from a small record pool, so a
    realistic share of them are exact repeats — which is what exercises
    the cache and in-flight dedup paths under chaos.
    """
    records = synthetic_records(max(8, count // 2), seed=seed)
    rng = derive_rng(seed, "chaos-pairs")
    pairs = []
    for _ in range(count):
        a = int(rng.integers(len(records)))
        b = int(rng.integers(len(records)))
        pairs.append((records[a].description, records[b].description))
    return pairs


class ParityBackend:
    """Deterministic inner backend: the answer is a pure function of the
    prompt (stable-hash parity), so any two runs — sequential, threaded,
    resumed — must agree bit-for-bit."""

    name = "parity"

    def generate(self, prompts: list[str]) -> list[str]:
        return [
            "Yes." if stable_hash(prompt) % 2 == 0 else "No."
            for prompt in prompts
        ]


# -------------------------------------------------------------------- engine


def build_chaos_engine(
    plan: FaultPlan,
    inner=None,
    failure_threshold: int = 3,
) -> tuple[MatchingEngine, FaultyBackend, ManualClock]:
    """Engine over a fault-injected backend, fully on simulated time."""
    clock = ManualClock()
    backend = FaultyBackend(
        inner if inner is not None else ParityBackend(),
        plan,
        clock=clock,
        timeout_advance=_TIMEOUT_ADVANCE,
    )
    engine = chaos_engine_on(backend, clock, plan.seed, failure_threshold)
    return engine, backend, clock


def chaos_engine_on(backend, clock: ManualClock, seed: int, failure_threshold: int = 3) -> MatchingEngine:
    """The harness's fixed engine configuration over any backend.

    The rate-0 transparency check compares a wrapped engine against an
    un-wrapped one, so both must share every other knob — scheduler
    granularity changes which repeated prompt is deduped in-flight versus
    answered from the cache, which is a legitimate (and observable)
    source difference.
    """
    engine = MatchingEngine(
        backend=backend,
        # Small micro-batches: more backend calls per run means more
        # fault draws, so a modest workload still exercises every kind.
        scheduler=Scheduler(max_batch_size=8, clock=clock),
        retry=RetryPolicy(timeout=_TIMEOUT_BUDGET, seed=seed),
        breaker=CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown=_COOLDOWN,
            clock=clock,
        ),
        clock=clock,
        sleep=clock.sleep,
    )
    return engine


# -------------------------------------------------------------------- report


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos run (one workload × one seed × one rate)."""

    kind: str
    seed: int
    fault_rate: float
    requests: int
    #: answers by source ("backend" / "cache" / "fallback").
    sources: dict
    #: fault kind → injections performed by the faulty backend.
    injected: dict
    #: engine stats snapshot (latency percentiles stripped: simulated
    #: time is deterministic, but the field is excluded from byte-level
    #: comparisons by the same convention as ``repro-em resolve``).
    stats: dict
    #: cluster count (resolve runs only).
    clusters: int | None
    #: human-readable invariant violations; empty means the run passed.
    violations: tuple
    #: stable hash of every decision the run produced.
    fingerprint: str

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "requests": self.requests,
            "sources": dict(self.sources),
            "injected": dict(self.injected),
            "stats": dict(self.stats),
            "clusters": self.clusters,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
            "ok": self.ok,
        }


# ---------------------------------------------------------------- invariants


def engine_stats_violations(engine: MatchingEngine) -> list[str]:
    """Internal counter conservation every chaos shape must satisfy."""
    violations: list[str] = []
    stats = engine.stats.as_dict()
    if stats["cache_hits"] + stats["cache_misses"] != stats["requests"]:
        violations.append("cache_hits + cache_misses != requests")
    classed = (
        stats["timeouts"]
        + stats["transport_errors"]
        + stats["circuit_open"]
        + stats["malformed"]
    )
    if classed != stats["retries"] + stats["failures"]:
        violations.append(
            f"error classes sum {classed} != retries {stats['retries']} "
            f"+ failures {stats['failures']}"
        )
    return violations


def _match_conservation_violations(
    engine: MatchingEngine, results: Sequence[MatchResult]
) -> list[str]:
    """Source-level conservation for the raw ``match_pairs`` shape."""
    violations = engine_stats_violations(engine)
    stats = engine.stats.as_dict()
    sources = Counter(result.source for result in results)
    answered = sum(sources[s] for s in _VALID_SOURCES)
    if answered != stats["requests"]:
        violations.append(
            f"conservation: backend+cache+fallback answers {answered} "
            f"!= requests {stats['requests']}"
        )
    for source in sources:
        if source not in _VALID_SOURCES:
            violations.append(f"illegal result source {source!r}")
    if sources["cache"] != stats["cache_hits"]:
        violations.append(
            f"cache answers {sources['cache']} != cache_hits "
            f"{stats['cache_hits']}"
        )
    if sources["fallback"] != stats["fallbacks"]:
        violations.append(
            f"fallback answers {sources['fallback']} != fallbacks counter "
            f"{stats['fallbacks']}"
        )
    return violations


def _resolve_conservation_violations(
    engine: MatchingEngine, decisions: Sequence
) -> list[str]:
    """Conservation for the resolution shape (cache-normalized sources)."""
    violations = engine_stats_violations(engine)
    stats = engine.stats.as_dict()
    sources = Counter(decision.source for decision in decisions)
    if len(decisions) != stats["requests"]:
        violations.append(
            f"{len(decisions)} decisions recorded for {stats['requests']} "
            f"engine requests"
        )
    if sources["fallback"] != stats["fallbacks"]:
        violations.append(
            f"fallback decisions {sources['fallback']} != fallbacks counter "
            f"{stats['fallbacks']}"
        )
    # The store folds "cache" into "backend", so the remaining answers
    # must all be backend-sourced and complement the fallbacks exactly.
    if sources["backend"] != stats["requests"] - stats["fallbacks"]:
        violations.append(
            f"backend decisions {sources['backend']} != requests - fallbacks "
            f"({stats['requests']} - {stats['fallbacks']})"
        )
    for source in sources:
        if source not in ("backend", "fallback"):
            violations.append(f"illegal decision source {source!r}")
    return violations


def _fallback_violations(results: Sequence[MatchResult]) -> list[str]:
    """Degraded answers must equal the standalone threshold baseline."""
    degraded = [r for r in results if r.source == "fallback"]
    if not degraded:
        return []
    pairs = [
        EntityPair(
            pair_id=f"check-{i}",
            left=Record(record_id=f"c-{i}-l", attributes={}, description=r.left),
            right=Record(record_id=f"c-{i}-r", attributes={}, description=r.right),
            label=False,
        )
        for i, r in enumerate(degraded)
    ]
    expected = ThresholdMatcher().predict(Split(name="fallback-check", pairs=pairs))
    return [
        f"fallback decision for pair {i} is {result.decision}, "
        f"standalone ThresholdMatcher says {bool(want)}"
        for i, (result, want) in enumerate(zip(degraded, expected))
        if result.decision != bool(want)
    ]


def _results_fingerprint(results: Sequence[MatchResult]) -> str:
    return f"{stable_hash(*((r.decision, r.source, r.response) for r in results)):016x}"


# ------------------------------------------------------------------ chaos runs


def chaos_match(
    seed: int = 0,
    fault_rate: float = 0.0,
    kinds: tuple = FAULT_KINDS,
    pair_count: int = 96,
    pairs: "list[tuple[str, str]] | None" = None,
) -> ChaosReport:
    """One matching chaos run: fault-injected ``match_pairs`` + invariants."""
    if pairs is None:
        pairs = synthetic_pairs(pair_count, seed=seed)
    plan = FaultPlan(seed=seed, fault_rate=fault_rate, kinds=kinds)
    engine, backend, _ = build_chaos_engine(plan)
    results = engine.match_pairs(pairs)

    violations: list[str] = []
    if len(results) != len(pairs):
        violations.append(
            f"{len(pairs)} pairs in, {len(results)} answers out"
        )
    violations += _match_conservation_violations(engine, results)
    violations += _fallback_violations(results)
    if fault_rate == 0.0:
        # Transparency: the wrapper at rate 0 must change nothing.
        plain = chaos_engine_on(ParityBackend(), ManualClock(), seed)
        baseline = plain.match_pairs(pairs)
        if baseline != results:
            violations.append(
                "rate-0 run differs from the un-wrapped engine's answers"
            )

    return ChaosReport(
        kind="match",
        seed=seed,
        fault_rate=fault_rate,
        requests=len(pairs),
        sources=dict(Counter(r.source for r in results)),
        injected=backend.injected_counts(),
        stats=_clean_stats(engine),
        clusters=None,
        violations=tuple(violations),
        fingerprint=_results_fingerprint(results),
    )


def chaos_resolve(
    seed: int = 0,
    fault_rate: float = 0.0,
    kinds: tuple = FAULT_KINDS,
    record_count: int = 30,
    records: "list[Record] | None" = None,
    journal: "str | Path | None" = None,
) -> ChaosReport:
    """One resolution chaos run: fault-injected ``ingest_all`` + invariants."""
    if records is None:
        records = synthetic_records(record_count, seed=seed)
    plan = FaultPlan(seed=seed, fault_rate=fault_rate, kinds=kinds)
    engine, backend, _ = build_chaos_engine(plan)
    with ResolutionStore(engine, journal=journal) as store:
        store.ingest_all(records)
        clustering = store.clustering()
        decisions = store.decisions()

    violations: list[str] = []
    clustered = sorted(m for cluster in clustering.clusters for m in cluster)
    if clustered != sorted(r.record_id for r in records):
        violations.append(
            "clustering is not a partition of the ingested records"
        )
    keys = [d.key for d in decisions]
    if len(keys) != len(set(keys)):
        violations.append("some candidate pair was decided twice")
    violations += _resolve_conservation_violations(engine, decisions)
    if fault_rate == 0.0:
        with ResolutionStore(
            chaos_engine_on(ParityBackend(), ManualClock(), seed)
        ) as plain:
            plain.ingest_all(records)
            plain_clustering = plain.clustering()
            plain_decisions = plain.decisions()
        if plain_clustering != clustering:
            violations.append(
                "rate-0 clustering differs from the un-wrapped engine's"
            )
        if plain_decisions != decisions:
            violations.append(
                "rate-0 decision log differs from the un-wrapped engine's"
            )

    return ChaosReport(
        kind="resolve",
        seed=seed,
        fault_rate=fault_rate,
        requests=len(records),
        sources=dict(Counter(d.source for d in decisions)),
        injected=backend.injected_counts(),
        stats=_clean_stats(engine),
        clusters=len(clustering.clusters),
        violations=tuple(violations),
        fingerprint=f"{stable_hash(clustering.clusters, tuple(decisions)):016x}",
    )


def _clean_stats(engine: MatchingEngine) -> dict:
    stats = engine.stats.as_dict()
    stats.pop("latency", None)
    return stats


# ------------------------------------------------------------------ sweeping


def sweep(
    seeds: Sequence[int] = (0, 1, 2),
    rates: Sequence[float] = (0.0, 0.3),
    kinds: tuple = FAULT_KINDS,
    pair_count: int = 96,
    record_count: int = 30,
) -> list[ChaosReport]:
    """The full chaos grid: both workloads × every seed × every rate."""
    reports = []
    for seed in seeds:
        for rate in rates:
            reports.append(
                chaos_match(
                    seed=seed, fault_rate=rate, kinds=kinds,
                    pair_count=pair_count,
                )
            )
            reports.append(
                chaos_resolve(
                    seed=seed, fault_rate=rate, kinds=kinds,
                    record_count=record_count,
                )
            )
    return reports


# ------------------------------------------------------------- kill / resume


def resolution_snapshot(store: ResolutionStore) -> dict:
    """Canonical JSON-ready view of a store's final state.

    This is the object kill/resume byte-identity is asserted over:
    clustering, decision log, and golden records — everything a consumer
    of the store can observe.
    """
    return {
        "clusters": [list(cluster) for cluster in store.clustering().clusters],
        "decisions": [
            {
                "left": d.left,
                "right": d.right,
                "match": d.match,
                "score": d.score,
                "source": d.source,
            }
            for d in store.decisions()
        ],
        "golden": {
            cluster_id: record.description
            for cluster_id, record in sorted(store.golden_records().items())
        },
    }


def kill_resume_roundtrip(
    journal: "str | Path",
    seed: int = 0,
    record_count: int = 30,
    kill_every: int = 3,
    max_incarnations: int = 1000,
) -> dict:
    """Crash-loop an ingestion and prove the resumed result is identical.

    Runs the reference ingestion uninterrupted, then replays the same
    workload through a :class:`CrashingBackend` that dies every
    *kill_every* backend batches, recovering from the journal after each
    death, until the run completes.  Returns both snapshots plus crash
    accounting; ``identical`` is the byte-identity verdict.
    """
    if kill_every < 1:
        raise ValueError("kill_every must be at least 1 (0 never progresses)")
    records = synthetic_records(record_count, seed=seed)

    with ResolutionStore(
        MatchingEngine(
            backend=ParityBackend(),
            retry=RetryPolicy(timeout=_TIMEOUT_BUDGET, seed=seed),
        )
    ) as reference_store:
        reference_store.ingest_all(records)
        reference = resolution_snapshot(reference_store)

    path = Path(journal)
    crashes = 0
    resumed: dict | None = None
    for _ in range(max_incarnations):
        engine = MatchingEngine(
            backend=CrashingBackend(ParityBackend(), kill_after=kill_every),
            retry=RetryPolicy(timeout=_TIMEOUT_BUDGET, seed=seed),
        )
        store: ResolutionStore | None = None
        try:
            if path.exists() and path.stat().st_size:
                store = ResolutionStore.recover(path, engine)
            else:
                store = ResolutionStore(engine, journal=path)
            for record in records:
                if record.record_id not in store:
                    store.ingest(record)
        except SimulatedCrash:
            crashes += 1
            continue
        finally:
            # Each incarnation's journal handle dies with it, exactly as
            # a real process death would drop the fd — resume must work
            # from the on-disk journal alone.  (A closed store stays
            # readable, so the snapshot below still works.)
            if store is not None:
                store.close()
        resumed = resolution_snapshot(store)
        break
    else:  # pragma: no cover — kill_every >= 1 guarantees progress
        raise RuntimeError("kill/resume loop failed to converge")

    assert resumed is not None
    return {
        "seed": seed,
        "records": record_count,
        "kill_every": kill_every,
        "crashes": crashes,
        "identical": resumed == reference,
        "reference": reference,
        "resumed": resumed,
    }


def _sharded_engine(seed: int) -> MatchingEngine:
    """One shard's engine: a (disarmed) crashing backend over parity."""
    return MatchingEngine(
        backend=CrashingBackend(ParityBackend(), kill_after=None),
        retry=RetryPolicy(timeout=_TIMEOUT_BUDGET, seed=seed),
    )


def _crashed_target(
    armed: "dict[int, int]", backends: "list[CrashingBackend]"
) -> int:
    """Which armed shard's backend just raised its SimulatedCrash."""
    for target in sorted(armed):
        if backends[target].tripped():
            return target
    raise RuntimeError(  # pragma: no cover — only armed backends crash
        "SimulatedCrash from a shard that was never armed"
    )


def sharded_conservation_violations(store: "ShardedResolutionStore") -> list:
    """Cross-shard conservation invariants of a sharded store.

    * per shard, the engine-call counter equals its decision count (the
      journaled/recovered counters never drift from the log);
    * replicated pairs decided by more than one shard agree exactly
      (determinism — disagreement would make the clustering depend on
      which shard's copy dedup keeps);
    * every record lives on every live shard that owns it.
    """
    violations: list[str] = []
    per_pair: dict = {}
    for i, shard in enumerate(store._shards):
        if shard is None:
            violations.append(f"shard {i} still dead at verdict time")
            continue
        decisions = shard.decisions()
        if shard.engine_calls != len(decisions):
            violations.append(
                f"shard {i}: engine_calls {shard.engine_calls} != "
                f"{len(decisions)} recorded decisions"
            )
        for decision in decisions:
            prior = per_pair.setdefault(decision.key, (i, decision))
            if prior[1].match != decision.match:
                violations.append(
                    f"replica disagreement on {decision.key}: shard "
                    f"{prior[0]} says {prior[1].match}, shard {i} says "
                    f"{decision.match}"
                )
    for record in store._known_records().values():
        for owner in store.owners_of(record):
            shard = store._shards[owner]
            if shard is not None and record.record_id not in shard:
                violations.append(
                    f"record {record.record_id!r} missing from owner "
                    f"shard {owner}"
                )
    return violations


def sharded_kill_resume_roundtrip(
    directory: "str | Path",
    seed: int = 0,
    record_count: int = 40,
    shards: int = 4,
    kill_every: int = 3,
    kill_shards: Sequence[int] = (),
    dead_for: int = 6,
) -> dict:
    """Kill and resume individual shards mid-ingest; prove nothing changed.

    The reference is an *unsharded*, uninterrupted ingestion of the same
    seeded workload.  The chaos run partitions it over *shards*
    journal-backed shards and, per scheduled target, arms that shard's
    crashing backend so it dies ``kill_every`` batches later **mid-
    ingest** — torn journal state and all — while every other shard
    keeps ingesting (records owned by the dead shard wait in its
    backlog).  ``dead_for`` records later the shard recovers from its
    journal and catches up.  A target that gets no engine traffic while
    armed is killed at the next record boundary instead (the crash
    window needs a backend batch to fire).

    Returns reference/resumed snapshots plus crash accounting;
    ``identical`` asserts byte-identical clustering *and* golden records
    (decision logs may legitimately differ — short-circuiting happens at
    different moments — which is why the verdict is over the clustering,
    the thing the paper's pipeline actually consumes).
    """
    from repro.resolve.sharded import ShardedResolutionStore

    if shards <= 0:
        raise ValueError("shards must be positive")
    if kill_every < 1:
        raise ValueError("kill_every must be at least 1")
    targets = list(kill_shards)
    if not targets:
        targets = sorted({0, 1 % shards, 2 % shards})[:2]
    if any(not 0 <= t < shards for t in targets):
        raise ValueError(f"kill shard out of range 0..{shards - 1}")
    records = synthetic_records(record_count, seed=seed)

    with ResolutionStore(
        MatchingEngine(
            backend=ParityBackend(),
            retry=RetryPolicy(timeout=_TIMEOUT_BUDGET, seed=seed),
        )
    ) as reference_store:
        reference_store.ingest_all(records)
        reference = resolution_snapshot(reference_store)

    engines = [_sharded_engine(seed) for _ in range(shards)]
    backends: "list[CrashingBackend]" = [
        engine.backend for engine in engines  # type: ignore[misc]
    ]
    #: kill schedule: arm target k when record k's slice of the run starts.
    arm_at = {
        (k + 1) * record_count // (len(targets) + 1): target
        for k, target in enumerate(targets)
    }
    grace = max(2, kill_every + 1)
    armed: dict[int, int] = {}
    resume_at: dict[int, int] = {}
    crashes = 0
    clean_kills = 0
    kills: list[dict] = []

    store = ShardedResolutionStore(engines, directory, shards=shards)
    try:
        for i, record in enumerate(records):
            target = arm_at.get(i)
            if target is not None and store._shards[target] is not None:
                backends[target].arm_in(kill_every)
                armed[target] = i
            for shard, due in sorted(resume_at.items()):
                if i >= due:
                    engines[shard] = _sharded_engine(seed)
                    backends[shard] = engines[shard].backend  # type: ignore[assignment]
                    store.resume_shard(shard, engines[shard])
                    del resume_at[shard]
            for shard, since in sorted(armed.items()):
                if i - since >= grace:
                    # No backend traffic reached the armed shard: kill it
                    # at the record boundary instead.
                    backends[shard].disarm()
                    store.kill_shard(shard)
                    clean_kills += 1
                    kills.append(
                        {"shard": shard, "record": i, "mid_ingest": False}
                    )
                    resume_at[shard] = i + dead_for
                    del armed[shard]
            while True:
                try:
                    store.ingest(record)
                    break
                except SimulatedCrash:
                    crashes += 1
                    shard = _crashed_target(armed, backends)
                    backends[shard].disarm()
                    store.kill_shard(shard)
                    kills.append(
                        {"shard": shard, "record": i, "mid_ingest": True}
                    )
                    resume_at[shard] = i + dead_for
                    del armed[shard]
        for shard in sorted(set(resume_at) | set(armed)):
            if store._shards[shard] is None:
                engines[shard] = _sharded_engine(seed)
                store.resume_shard(shard, engines[shard])
            else:
                backends[shard].disarm()
        violations = sharded_conservation_violations(store)
        resumed = resolution_snapshot(store)
    finally:
        store.close()

    identical = (
        resumed["clusters"] == reference["clusters"]
        and resumed["golden"] == reference["golden"]
    )
    return {
        "seed": seed,
        "records": record_count,
        "shards": shards,
        "kill_every": kill_every,
        "targets": targets,
        "kills": kills,
        "crashes": crashes,
        "clean_kills": clean_kills,
        "violations": violations,
        "identical": identical and not violations,
        "reference": reference,
        "resumed": resumed,
    }
