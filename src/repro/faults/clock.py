"""Injectable manual clock: the time seam every chaos run is driven by.

The engine, scheduler, cache, retry policy, and circuit breaker all take
``clock``/``sleep`` callables instead of touching :mod:`time` directly
(enforced by the ``injectable-sleep`` lint rule).  :class:`ManualClock`
is the library-level implementation of that seam: a monotonic counter
that only moves when something *tells* it to — a backoff sleep, an
injected timeout fault, a test.  Chaos runs built on it are therefore
bit-reproducible: wall-clock speed of the host never leaks into flush
deadlines, timeout accounting, or breaker cooldowns.
"""

from __future__ import annotations

import threading

__all__ = ["ManualClock"]


class ManualClock:
    """Thread-safe manually-advanced monotonic clock (also a sleep seam).

    Calling the instance returns the current time; :meth:`advance` moves
    it forward; :meth:`sleep` is an injectable stand-in for
    ``time.sleep`` that advances the clock instead of waiting, so retry
    backoff consumes simulated — never real — time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward (negative advances are rejected)."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Consume *seconds* of simulated time (drop-in for ``time.sleep``)."""
        self.advance(max(seconds, 0.0))
