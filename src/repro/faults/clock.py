"""Injectable manual clock: the time seam every chaos run is driven by.

The engine, scheduler, cache, retry policy, and circuit breaker all take
``clock``/``sleep`` callables instead of touching :mod:`time` directly
(enforced by the ``injectable-sleep`` lint rule).  :class:`ManualClock`
is the library-level implementation of that seam: a monotonic counter
that only moves when something *tells* it to — a backoff sleep, an
injected timeout fault, a test.  Chaos runs built on it are therefore
bit-reproducible: wall-clock speed of the host never leaks into flush
deadlines, timeout accounting, or breaker cooldowns.

The same instance also drives *asyncio* code (the ``repro.serve``
gateway): :meth:`ManualClock.sleep_async` suspends a coroutine until the
simulated clock reaches its wake-up time, :meth:`ManualClock.wait_for`
is an ``asyncio.wait_for`` on simulated time, and the :meth:`tick` pump
advances the clock straight to the next pending wake-up.  ``advance``
may be called from any thread (e.g. an engine worker burning simulated
backoff); due async waiters are released through their own event loop
via ``call_soon_threadsafe``, so the sync and async halves of a chaos
run share one timeline.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Annotated

from repro.concurrency import guarded_by

__all__ = ["ManualClock"]


class ManualClock:
    """Thread-safe manually-advanced monotonic clock (also a sleep seam).

    Calling the instance returns the current time; :meth:`advance` moves
    it forward; :meth:`sleep` is an injectable stand-in for
    ``time.sleep`` that advances the clock instead of waiting, so retry
    backoff consumes simulated — never real — time.  The async seam
    (:meth:`sleep_async`, :meth:`wait_for`, :meth:`tick`) parks
    coroutines against the same timeline instead of the event loop's
    wall clock.
    """

    #: the timeline and its parked sleepers — advanced from arbitrary
    #: threads, read by the async seam on the loop; always under ``_lock``.
    _now: Annotated[float, guarded_by("_lock")]
    #: parked async sleepers: (wake-up time, owning loop, future).
    _waiters: Annotated[
        "list[tuple[float, asyncio.AbstractEventLoop, asyncio.Future]]",
        guarded_by("_lock"),
    ]

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._lock = threading.Lock()
        self._waiters = []

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward (negative advances are rejected).

        Any async sleeper whose wake-up time is reached is released, via
        its own event loop — safe to call from worker threads.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}")
        with self._lock:
            self._now += seconds
            due = [w for w in self._waiters if w[0] <= self._now]
            self._waiters = [w for w in self._waiters if w[0] > self._now]
        for _, loop, future in due:
            try:
                loop.call_soon_threadsafe(self._release, future)
            except RuntimeError:
                # The waiter's loop already shut down; nobody can await
                # that future any more, so dropping it is correct.
                pass

    def sleep(self, seconds: float) -> None:
        """Consume *seconds* of simulated time (drop-in for ``time.sleep``)."""
        self.advance(max(seconds, 0.0))

    # ------------------------------------------------------------ async seam

    @staticmethod
    def _release(future: asyncio.Future) -> None:
        if not future.done():
            future.set_result(None)

    async def sleep_async(self, seconds: float) -> None:
        """Suspend until the clock has advanced *seconds* (asyncio drop-in).

        A non-positive delay returns immediately without suspending.  The
        coroutine resumes only once :meth:`advance` (from any thread) or
        :meth:`tick` moves the clock past its wake-up time — never from
        real time passing.
        """
        if seconds <= 0:
            return
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        with self._lock:
            deadline = self._now + seconds
            self._waiters.append((deadline, loop, future))
        await future

    async def wait_for(self, awaitable, timeout: float):
        """``asyncio.wait_for`` on simulated time.

        Returns the awaitable's result, or raises ``TimeoutError`` (and
        cancels it) if the clock passes *timeout* seconds first.
        """
        task = asyncio.ensure_future(awaitable)
        sleeper = asyncio.ensure_future(self.sleep_async(timeout))
        try:
            done, _ = await asyncio.wait(
                {task, sleeper}, return_when=asyncio.FIRST_COMPLETED
            )
        except BaseException:
            task.cancel()
            sleeper.cancel()
            raise
        if task in done:
            sleeper.cancel()
            return task.result()
        task.cancel()
        raise TimeoutError(f"simulated deadline of {timeout}s expired")

    # ------------------------------------------------------------- tick pump

    def pending_wakeups(self) -> int:
        """Number of coroutines currently parked in :meth:`sleep_async`."""
        with self._lock:
            return len(self._waiters)

    def next_wakeup(self) -> float | None:
        """Earliest parked wake-up time, or None when nothing is parked."""
        with self._lock:
            live = [w for w in self._waiters if not w[2].done()]
            self._waiters = live
            return min((w[0] for w in live), default=None)

    def tick(self) -> float | None:
        """Advance straight to the next pending wake-up (the tick pump).

        Returns the new time, or None when no sleeper is parked.  Driving
        a gateway test is ``while clock.tick() is not None: ...`` — every
        queued timeout and arrival fires in deterministic order with no
        real waiting.
        """
        target = self.next_wakeup()
        if target is None:
            return None
        self.advance(max(0.0, target - self()))
        return self()
