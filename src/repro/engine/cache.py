"""Bounded LRU + TTL cache for match results (thread-safe).

Keys are normalized prompt strings; values are whatever the engine stores
(response text plus parsed decision).  Capacity is bounded: inserting into
a full cache evicts the least-recently-used entry.  An optional TTL bounds
staleness: entries older than ``ttl`` seconds (measured by the injected
clock) are treated as absent and dropped on access.

The clock is injectable so tests control time explicitly; the default is
``time.monotonic`` (wall-clock jumps must not expire entries).

Every access to the entry map happens under one re-entrant lock, so the
cache may be shared by any number of engine threads.  The guarded fields
are declared with :func:`repro.concurrency.guarded_by`, which the deep
linter checks against the actual lock regions.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Annotated, Callable, Generic, Hashable, TypeVar

from repro.concurrency import guarded_by

__all__ = ["ResultCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class ResultCache(Generic[K, V]):
    """LRU cache with optional per-entry time-to-live."""

    #: key → (value, stored_at); insertion order tracks recency (last = MRU).
    _entries: Annotated["OrderedDict[K, tuple[V, float]]", guarded_by("_lock")]
    evictions: Annotated[int, guarded_by("_lock")]
    expirations: Annotated[int, guarded_by("_lock")]

    def __init__(
        self,
        max_size: int = 4096,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.max_size = max_size
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._entries = OrderedDict()
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return self.get(key, default=_MISSING, touch=False) is not _MISSING

    def get(self, key: K, default: V | None = None, touch: bool = True):
        """Return the live value for *key* (refreshing recency) or *default*."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return default
            value, stored_at = entry
            if self.ttl is not None and self._clock() - stored_at >= self.ttl:
                del self._entries[key]
                self.expirations += 1
                return default
            if touch:
                self._entries.move_to_end(key)
            return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh *key*, evicting the LRU entry when over capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
