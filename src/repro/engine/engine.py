"""The online matching engine.

Request lifecycle::

    match request (pair of descriptions)
      → normalize + render prompt
      → in-flight dedup (identical prompts share one backend slot)
      → ResultCache lookup  ──hit──→ answer
      → Scheduler (micro-batch: flush on size / deadline / drain)
      → Backend.generate under RetryPolicy + CircuitBreaker
          ──exhausted / circuit open──→ threshold-baseline fallback
      → parse answer, fill cache, update EngineStats

The engine accepts ad-hoc description pairs, labelled
:class:`~repro.datasets.schema.EntityPair` objects, whole splits, and
candidate streams from :mod:`repro.blocking`.  Descriptions taken from
``EntityPair`` objects are used verbatim (so the engine path is
bit-identical to the evaluator's sequential path); raw string input is
whitespace-normalized first, since online callers send unsanitized text.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.baselines.threshold import ThresholdMatcher
from repro.blocking.base import BlockingResult
from repro.datasets.schema import EntityPair, Record, Split
from repro.engine.backends import Backend, make_backend
from repro.engine.cache import ResultCache
from repro.engine.retry import (
    BackendError,
    BackendTimeout,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    run_with_retry,
)
from repro.engine.scheduler import Batch, Scheduler
from repro.engine.stats import EngineStats
from repro.llm.model import ChatModel
from repro.llm.parsing import parse_yes_no
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate

__all__ = ["MatchResult", "MatchingEngine"]


@dataclass(frozen=True)
class MatchResult:
    """The engine's answer for one candidate pair."""

    left: str
    right: str
    #: raw model completion (None when the answer came from the fallback).
    response: str | None
    #: parsed matching decision (unparseable answers count as non-matches).
    decision: bool
    #: where the answer came from: "backend", "cache", or "fallback".
    source: str


@dataclass(frozen=True)
class _Pending:
    """One unique prompt waiting for a backend slot."""

    key: str
    prompt: str
    left: str
    right: str


class MatchingEngine:
    """Cache-, batch-, and failure-aware front end over a model backend."""

    def __init__(
        self,
        backend: Backend,
        template: PromptTemplate = DEFAULT_PROMPT,
        cache: ResultCache | None = None,
        scheduler: Scheduler | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fallback: ThresholdMatcher | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.backend = backend
        self.template = template
        self.cache = cache if cache is not None else ResultCache(clock=clock)
        self.scheduler = (
            scheduler if scheduler is not None else Scheduler(clock=clock)
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        #: degraded matcher used while the backend is unhealthy.  The
        #: default threshold is the uncalibrated 0.5 similarity cut — call
        #: ``fallback.fit(train_split)`` for a calibrated one.
        self.fallback = fallback if fallback is not None else ThresholdMatcher()
        self.stats = EngineStats()
        self._clock = clock
        self._sleep = sleep

    # ------------------------------------------------------------ factories

    @classmethod
    def for_model(
        cls,
        model: ChatModel | str,
        template: PromptTemplate = DEFAULT_PROMPT,
        batch_size: int = 32,
        **kwargs,
    ) -> "MatchingEngine":
        """Engine over the paper-faithful backend for *model*.

        Open-source personas run through the local batched runner; hosted
        personas through the batch API (see :func:`make_backend`).
        """
        engine = cls(
            backend=make_backend(model, batch_size=batch_size),
            template=template,
            **kwargs,
        )
        engine.scheduler.max_batch_size = batch_size
        return engine

    # ------------------------------------------------------------- matching

    def match_pair(self, left: str, right: str) -> MatchResult:
        """Match one ad-hoc pair of entity descriptions."""
        return self.match_pairs([(left, right)])[0]

    def match_pairs(
        self,
        pairs: Sequence[EntityPair | tuple[str, str]] | Iterable,
    ) -> list[MatchResult]:
        """Match every candidate pair, preserving input order.

        Duplicate pairs (after normalization) are answered by a single
        backend request; repeats across calls are served from the cache.
        """
        descriptions = [self._descriptions(p) for p in pairs]
        results: list[MatchResult | None] = [None] * len(descriptions)
        #: prompt key → indices of requests waiting on that key.
        waiting: dict[str, list[int]] = {}
        in_flight: dict[str, _Pending] = {}

        for i, (left, right) in enumerate(descriptions):
            self.stats.requests += 1
            prompt = self.template.render(left, right)
            key = prompt
            cached = self.cache.get(key)
            if cached is not None:
                response, decision = cached
                self.stats.cache_hits += 1
                results[i] = MatchResult(left, right, response, decision, "cache")
                continue
            self.stats.cache_misses += 1
            if key in in_flight:
                self.stats.deduped += 1
                waiting[key].append(i)
                continue
            pending = _Pending(key=key, prompt=prompt, left=left, right=right)
            in_flight[key] = pending
            waiting[key] = [i]
            flushed = self.scheduler.submit(pending)
            if flushed is None:
                flushed = self.scheduler.poll()
            if flushed is not None:
                self._dispatch(flushed, waiting, results)
                for item in flushed.items:
                    del in_flight[item.key]

        flushed = self.scheduler.drain()
        if flushed is not None:
            self._dispatch(flushed, waiting, results)

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def match_split(self, split: Split) -> list[MatchResult]:
        """Match every pair of a dataset split."""
        return self.match_pairs(split.pairs)

    def match_blocking(self, blocking: BlockingResult) -> list[MatchResult]:
        """Match the candidate stream produced by a blocker.

        Candidates are visited in sorted (left_index, right_index) order so
        runs are reproducible regardless of set iteration order.
        """
        pairs = [
            (blocking.left[i].description, blocking.right[j].description)
            for i, j in sorted(blocking.candidates)
        ]
        return self.match_pairs(pairs)

    def predict_split(self, split: Split) -> np.ndarray:
        """Boolean predictions for a split (the evaluator's engine path)."""
        return np.array(
            [r.decision for r in self.match_split(split)], dtype=bool
        )

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    # ------------------------------------------------------------- internals

    @staticmethod
    def _descriptions(pair: EntityPair | tuple[str, str]) -> tuple[str, str]:
        """Left/right descriptions; raw strings are whitespace-normalized."""
        if isinstance(pair, EntityPair):
            return pair.left.description, pair.right.description
        left, right = pair
        return " ".join(left.split()), " ".join(right.split())

    def _dispatch(
        self,
        batch: Batch[_Pending],
        waiting: dict[str, list[int]],
        results: list[MatchResult | None],
    ) -> None:
        """Run one micro-batch through retry/breaker; fall back on failure."""
        self.stats.record_batch(batch.reason, len(batch))
        prompts = [item.prompt for item in batch.items]

        def on_retry(attempt: int, exc: Exception) -> None:
            self.stats.retries += 1
            if isinstance(exc, BackendTimeout):
                self.stats.timeouts += 1

        opened_before = self.breaker.times_opened
        started = self._clock()
        try:
            responses = run_with_retry(
                lambda: self.backend.generate(prompts),
                self.retry,
                breaker=self.breaker,
                clock=self._clock,
                sleep=self._sleep,
                on_retry=on_retry,
            )
        except (BackendError, CircuitOpenError) as exc:
            self.stats.failures += 1
            if isinstance(exc, BackendTimeout):
                self.stats.timeouts += 1
            self.stats.circuit_opens += self.breaker.times_opened - opened_before
            self._fallback_batch(batch, waiting, results)
            return
        self.stats.circuit_opens += self.breaker.times_opened - opened_before
        elapsed = self._clock() - started
        if len(responses) != len(prompts):
            # A misbehaving backend that drops answers is a failure too.
            self.stats.failures += 1
            self._fallback_batch(batch, waiting, results)
            return
        self.stats.record_latency(elapsed, requests=len(prompts))
        for item, response in zip(batch.items, responses):
            decision = bool(parse_yes_no(response))
            self.cache.put(item.key, (response, decision))
            for index in waiting.pop(item.key):
                results[index] = MatchResult(
                    item.left, item.right, response, decision, "backend"
                )

    def _fallback_batch(
        self,
        batch: Batch[_Pending],
        waiting: dict[str, list[int]],
        results: list[MatchResult | None],
    ) -> None:
        """Answer a failed batch with the degraded threshold matcher.

        Fallback answers are *not* cached: once the backend recovers, the
        same pair should get a real model answer again.
        """
        pairs = [
            EntityPair(
                pair_id=f"fallback-{i}",
                left=Record(record_id=f"fb-{i}-l", attributes={},
                            description=item.left),
                right=Record(record_id=f"fb-{i}-r", attributes={},
                             description=item.right),
                label=False,
            )
            for i, item in enumerate(batch.items)
        ]
        decisions = self.fallback.predict(Split(name="fallback", pairs=pairs))
        for item, decision in zip(batch.items, decisions):
            self.stats.fallbacks += len(waiting[item.key])
            for index in waiting.pop(item.key):
                results[index] = MatchResult(
                    item.left, item.right, None, bool(decision), "fallback"
                )
